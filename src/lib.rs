//! Umbrella crate of the MetaCache-GPU reproduction workspace.
//!
//! Hosts the cross-crate integration tests (`tests/`) and the runnable
//! examples (`examples/`), and re-exports the member crates for convenient
//! one-import use:
//!
//! ```
//! use metacache_repro::metacache::MetaCacheConfig;
//!
//! assert_eq!(MetaCacheConfig::default().sketch_size, 16);
//! ```

pub use mc_bench;
pub use mc_datagen;
pub use mc_gpu_sim;
pub use mc_kmer;
pub use mc_kraken2;
pub use mc_seqio;
pub use mc_taxonomy;
pub use mc_warpcore;
pub use metacache;
