//! Integration tests of the `mc-net` TCP front-end: network round-trips are
//! bit-identical (including order) to in-process sessions, concurrent
//! connections map to concurrent sessions without interference, a client
//! disconnect mid-stream is isolated, malformed input is answered with an
//! error frame, and the server's graceful drain composes with
//! `ServingEngine::shutdown`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use mc_net::protocol::{self, Frame, MAGIC, PROTOCOL_VERSION};
use mc_net::{ClientConfig, ErrorCode, NetClient, NetError, NetServer, ServerConfig};
use mc_seqio::SequenceRecord;
use mc_taxonomy::{Rank, Taxonomy};
use metacache::build::CpuBuilder;
use metacache::classify::Classification;
use metacache::query::Classifier;
use metacache::serving::{EngineConfig, ServingEngine};
use metacache::{Database, MetaCacheConfig};

fn make_seq(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b"ACGT"[(state >> 33) as usize % 4]
        })
        .collect()
}

/// One shared two-species database plus its genomes.
fn shared_database() -> (Arc<Database>, &'static [Vec<u8>]) {
    use std::sync::OnceLock;
    static DB: OnceLock<(Arc<Database>, Vec<Vec<u8>>)> = OnceLock::new();
    let (db, genomes) = DB.get_or_init(|| {
        let mut taxonomy = Taxonomy::with_root();
        taxonomy.add_node(10, 1, Rank::Genus, "G").unwrap();
        taxonomy.add_node(100, 10, Rank::Species, "G a").unwrap();
        taxonomy.add_node(101, 10, Rank::Species, "G b").unwrap();
        let genomes = vec![make_seq(18_000, 61), make_seq(18_000, 62)];
        let mut builder = CpuBuilder::new(MetaCacheConfig::for_tests(), taxonomy);
        builder
            .add_target(SequenceRecord::new("refA", genomes[0].clone()), 100)
            .unwrap();
        builder
            .add_target(SequenceRecord::new("refB", genomes[1].clone()), 101)
            .unwrap();
        (Arc::new(builder.finish()), genomes)
    });
    (Arc::clone(db), genomes)
}

/// A mixed read set (genome reads, foreign reads, short reads, empty
/// records, a paired read) deterministically derived from `seed`.
fn mixed_reads(n: usize, seed: u64) -> Vec<SequenceRecord> {
    let (_, genomes) = shared_database();
    let mut state = seed | 1;
    (0..n)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match (state >> 33) % 10 {
                0 => SequenceRecord::new(format!("empty{i}"), Vec::new()),
                1 => SequenceRecord::new(format!("tiny{i}"), genomes[0][..6].to_vec()),
                2 => SequenceRecord::new(format!("alien{i}"), make_seq(130, state)),
                4 => {
                    // N-laden read: genome bases with an ambiguity run in
                    // the middle (exercises the packed encoding's
                    // exception list end to end).
                    let mut seq = genomes[i % 2][200..350].to_vec();
                    let n_start = 20 + (state as usize >> 9) % 100;
                    let n_len = 1 + (state as usize >> 17) % 25;
                    seq[n_start..n_start + n_len].fill(b'N');
                    SequenceRecord::new(format!("nrun{i}"), seq)
                }
                5 => SequenceRecord::new(format!("alln{i}"), vec![b'N'; 80]),
                3 => {
                    let genome = &genomes[i % 2];
                    let offset = (state as usize >> 7) % (genome.len() - 300);
                    SequenceRecord::new(format!("pair{i}"), genome[offset..offset + 140].to_vec())
                        .with_mate(SequenceRecord::new(
                            format!("pair{i}/2"),
                            genome[offset + 150..offset + 290].to_vec(),
                        ))
                }
                _ => {
                    let genome = &genomes[i % 2];
                    let offset = (state as usize >> 7) % (genome.len() - 150);
                    SequenceRecord::new(
                        format!("s{seed}_r{i}"),
                        genome[offset..offset + 150].to_vec(),
                    )
                }
            }
        })
        .collect()
}

/// Shuts the server down when dropped, so a panicking assertion inside a
/// `thread::scope` fails the test instead of deadlocking the scope's
/// implicit join on the acceptor thread. `shutdown()` is idempotent.
struct ShutdownOnDrop(mc_net::ServerHandle);

impl Drop for ShutdownOnDrop {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

fn test_engine(db: Arc<Database>) -> ServingEngine {
    ServingEngine::host_with_config(
        db,
        EngineConfig {
            workers: 3,
            queue_capacity: 4,
            batch_records: 8,
            session_max_in_flight: 0,
            ..EngineConfig::default()
        },
    )
}

/// The acceptance criterion: `NetClient::classify_batch` over TCP is
/// bit-identical (including order) to an in-process
/// `Session::classify_batch`, while another client disconnects mid-stream.
#[test]
fn loopback_roundtrip_is_bit_identical_and_survives_disconnects() {
    let (db, _) = shared_database();
    let reads = mixed_reads(120, 2024);
    let expected_direct = Classifier::new(Arc::clone(&db)).classify_batch(&reads);

    let engine = test_engine(Arc::clone(&db));
    // The in-process reference: a session on the same engine.
    let in_process = {
        let mut session = engine.session();
        session.classify_batch(&reads)
    };
    assert_eq!(in_process, expected_direct);

    let server = NetServer::bind(&engine, "127.0.0.1:0").unwrap();
    let handle = server.handle();
    let addr = handle.local_addr();

    std::thread::scope(|scope| {
        scope.spawn(|| server.run().unwrap());
        let _guard = ShutdownOnDrop(handle.clone());

        // A rude client that connects, handshakes, sends half a request and
        // vanishes — concurrently with the well-behaved client.
        let rude = scope.spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let hello = Frame::Hello {
                magic: MAGIC,
                version: PROTOCOL_VERSION,
                batch_records: 0,
                max_in_flight: 0,
                auth_token: None,
            }
            .encode()
            .unwrap();
            stream.write_all(&hello).unwrap();
            let classify = Frame::Classify {
                request_id: 0,
                reads: mixed_reads(40, 1),
            }
            .encode()
            .unwrap();
            // Send a truncated frame, then drop the connection entirely.
            stream.write_all(&classify[..classify.len() / 2]).unwrap();
            drop(stream);
        });

        let mut client = NetClient::connect(addr).unwrap();
        // Network round-trip ≡ in-process session, bit for bit and in order.
        let over_network = client.classify_batch(&reads).unwrap();
        assert_eq!(over_network, in_process);
        // Streaming form too, pipelined across the credit window.
        let (streamed, summary) = client.classify_iter(reads.iter().cloned()).unwrap();
        assert_eq!(streamed, in_process);
        assert!(summary.peak_in_flight <= u64::from(client.credits()));
        assert_eq!(summary.reads, reads.len() as u64);

        rude.join().unwrap();
        // The rude client's death did not poison this connection.
        let again = client.classify_batch(&reads[..17]).unwrap();
        assert_eq!(again, in_process[..17]);

        drop(client);
        handle.shutdown();
    });
    let stats = engine.shutdown();
    assert_eq!(stats.worker_panics, 0);
}

/// The satellite criterion: N concurrent clients over N connections get
/// exactly what N in-process sessions get — bit-identical, ordered, no
/// cross-talk.
#[test]
fn n_clients_match_n_in_process_sessions() {
    let (db, _) = shared_database();
    let engine = test_engine(Arc::clone(&db));
    let clients = 5;
    let per_client: Vec<(Vec<SequenceRecord>, Vec<Classification>)> = (0..clients)
        .map(|c| {
            let reads = mixed_reads(50 + c * 11, 3_000 + c as u64);
            // The in-process reference for this client's stream.
            let mut session = engine.session();
            let want = session.classify_batch(&reads);
            (reads, want)
        })
        .collect();

    let server = NetServer::bind(&engine, "127.0.0.1:0").unwrap();
    let handle = server.handle();
    let addr = handle.local_addr();

    std::thread::scope(|scope| {
        scope.spawn(|| server.run().unwrap());
        let _guard = ShutdownOnDrop(handle.clone());
        let workers: Vec<_> = per_client
            .iter()
            .enumerate()
            .map(|(c, (reads, want))| {
                scope.spawn(move || {
                    let mut client = NetClient::connect_with(
                        addr,
                        ClientConfig {
                            batch_records: 4 + c as u32,
                            max_in_flight: 2,
                            ..ClientConfig::default()
                        },
                    )
                    .unwrap();
                    // Interleave small requests and one streamed pass.
                    for (i, chunk) in reads.chunks(13).enumerate() {
                        let got = client.classify_batch(chunk).unwrap();
                        let start = i * 13;
                        assert_eq!(got, want[start..start + chunk.len()], "client {c} chunk");
                    }
                    let (got, _) = client.classify_iter(reads.iter().cloned()).unwrap();
                    assert_eq!(&got, want, "client {c} stream diverged");
                })
            })
            .collect();
        for worker in workers {
            worker.join().unwrap();
        }
        handle.shutdown();
    });
    let stats = engine.shutdown();
    assert_eq!(stats.worker_panics, 0);
}

/// Malformed input is answered with a typed error frame, and the failure is
/// confined to the offending connection.
#[test]
fn malformed_input_gets_an_error_frame() {
    let (db, _) = shared_database();
    let engine = test_engine(Arc::clone(&db));
    let server = NetServer::bind(&engine, "127.0.0.1:0").unwrap();
    let handle = server.handle();
    let addr = handle.local_addr();

    std::thread::scope(|scope| {
        scope.spawn(|| server.run().unwrap());
        let _guard = ShutdownOnDrop(handle.clone());

        // Bad magic in the handshake.
        let mut stream = TcpStream::connect(addr).unwrap();
        let bad_hello = Frame::Hello {
            magic: 0xDEAD_BEEF,
            version: PROTOCOL_VERSION,
            batch_records: 0,
            max_in_flight: 0,
            auth_token: None,
        }
        .encode()
        .unwrap();
        stream.write_all(&bad_hello).unwrap();
        match protocol::read_frame(&mut stream).unwrap().unwrap() {
            Frame::Error { code, .. } => assert_eq!(code, ErrorCode::BadMagic),
            other => panic!("expected error frame, got {other:?}"),
        }

        // A protocol version below the floor is rejected …
        let mut stream = TcpStream::connect(addr).unwrap();
        let bad_version = Frame::Hello {
            magic: MAGIC,
            version: 0,
            batch_records: 0,
            max_in_flight: 0,
            auth_token: None,
        }
        .encode()
        .unwrap();
        stream.write_all(&bad_version).unwrap();
        match protocol::read_frame(&mut stream).unwrap().unwrap() {
            Frame::Error { code, .. } => assert_eq!(code, ErrorCode::UnsupportedVersion),
            other => panic!("expected error frame, got {other:?}"),
        }

        // … while a *future* client version is downgraded to ours, not
        // rejected (min(client, server) negotiation).
        let mut stream = TcpStream::connect(addr).unwrap();
        let future_version = Frame::Hello {
            magic: MAGIC,
            version: PROTOCOL_VERSION + 7,
            batch_records: 0,
            max_in_flight: 0,
            auth_token: None,
        }
        .encode()
        .unwrap();
        stream.write_all(&future_version).unwrap();
        match protocol::read_frame(&mut stream).unwrap().unwrap() {
            Frame::HelloAck { version, .. } => assert_eq!(version, PROTOCOL_VERSION),
            other => panic!("expected downgraded HelloAck, got {other:?}"),
        }
        drop(stream);

        // Garbage after a valid handshake: unknown frame type.
        let mut stream = TcpStream::connect(addr).unwrap();
        let hello = Frame::Hello {
            magic: MAGIC,
            version: PROTOCOL_VERSION,
            batch_records: 0,
            max_in_flight: 0,
            auth_token: None,
        }
        .encode()
        .unwrap();
        stream.write_all(&hello).unwrap();
        match protocol::read_frame(&mut stream).unwrap().unwrap() {
            Frame::HelloAck { .. } => {}
            other => panic!("expected hello ack, got {other:?}"),
        }
        stream.write_all(&[5, 0, 0, 0, 99, 1, 2, 3, 4]).unwrap();
        match protocol::read_frame(&mut stream).unwrap().unwrap() {
            Frame::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownFrameType),
            other => panic!("expected error frame, got {other:?}"),
        }
        // The connection is closed after the error frame.
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());

        // Non-monotonic request ids are rejected.
        let mut client = NetClient::connect(addr).unwrap();
        let reads = mixed_reads(4, 9);
        client.classify_batch(&reads).unwrap();
        // Cheat below the public API: replay request id 0 on the raw socket.
        // (NetClient always increments, so craft the frame by hand.)
        drop(client);
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&hello).unwrap();
        protocol::read_frame(&mut stream).unwrap().unwrap();
        let req = |id: u64| {
            Frame::Classify {
                request_id: id,
                reads: reads.clone(),
            }
            .encode()
            .unwrap()
        };
        stream.write_all(&req(5)).unwrap();
        protocol::read_frame(&mut stream).unwrap().unwrap();
        stream.write_all(&req(5)).unwrap();
        match protocol::read_frame(&mut stream).unwrap().unwrap() {
            Frame::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
            other => panic!("expected error frame, got {other:?}"),
        }

        // A healthy client still works after all that abuse.
        let mut client = NetClient::connect(addr).unwrap();
        let got = client.classify_batch(&reads).unwrap();
        assert_eq!(got, Classifier::new(Arc::clone(&db)).classify_batch(&reads));

        drop(client);
        handle.shutdown();
    });
    let stats = engine.shutdown();
    assert_eq!(stats.worker_panics, 0);
}

/// Graceful drain: shutdown lets in-flight requests finish and compose with
/// the engine's own drain; the engine's stats account for every read served.
#[test]
fn shutdown_drains_and_composes_with_engine_shutdown() {
    let (db, _) = shared_database();
    let engine = test_engine(Arc::clone(&db));
    let reads = mixed_reads(60, 4242);
    let expected = Classifier::new(Arc::clone(&db)).classify_batch(&reads);

    let server = NetServer::bind(&engine, "127.0.0.1:0").unwrap();
    let handle = server.handle();
    let addr = handle.local_addr();

    let server_stats = std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run());
        let _guard = ShutdownOnDrop(handle.clone());
        let mut client = NetClient::connect(addr).unwrap();
        let got = client.classify_batch(&reads).unwrap();
        assert_eq!(got, expected);
        drop(client);
        handle.shutdown();
        // Connecting after shutdown is refused with an error frame or a
        // closed connection — never a hang.
        match NetClient::connect(addr) {
            Ok(_) => panic!("connected to a draining server"),
            Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::ShuttingDown),
            Err(_) => {} // refused / reset: equally fine
        }
        runner.join().unwrap().unwrap()
    });
    assert_eq!(server_stats.reads, reads.len() as u64);
    assert_eq!(server_stats.requests, 1);
    assert!(server_stats.connections >= 1);

    // The engine drain composes: all sessions are gone, stats are complete.
    let stats = engine.shutdown();
    assert_eq!(stats.records_classified, reads.len() as u64);
    assert_eq!(stats.worker_panics, 0);
}

/// A purely local encode failure mid-pipeline (an unencodable read) must
/// not desync or kill the connection: outstanding responses are drained and
/// the next request works.
#[test]
fn local_encode_failure_leaves_connection_usable() {
    let (db, _) = shared_database();
    let engine = test_engine(Arc::clone(&db));
    let reads = mixed_reads(30, 77);
    let expected = Classifier::new(Arc::clone(&db)).classify_batch(&reads);

    let server = NetServer::bind(&engine, "127.0.0.1:0").unwrap();
    let handle = server.handle();
    let addr = handle.local_addr();

    std::thread::scope(|scope| {
        scope.spawn(|| server.run().unwrap());
        let _guard = ShutdownOnDrop(handle.clone());
        let mut client = NetClient::connect(addr).unwrap();

        // A read whose mate itself has a mate is not representable on the
        // wire; placed late in the stream, it fails encoding after earlier
        // requests are already pipelined.
        let mut nested = SequenceRecord::new("bad", b"ACGT".to_vec());
        nested.mate = Some(Box::new(
            SequenceRecord::new("m1", b"ACGT".to_vec())
                .with_mate(SequenceRecord::new("m2", b"GT".to_vec())),
        ));
        let mut stream_reads = reads.clone();
        stream_reads.push(nested);
        let err = client.classify_iter(stream_reads).unwrap_err();
        assert!(
            matches!(err, NetError::Protocol(_)),
            "expected a local protocol error, got {err:?}"
        );

        // The connection stayed in sync: a well-formed request still gets
        // bit-identical results.
        let got = client.classify_batch(&reads).unwrap();
        assert_eq!(got, expected);

        drop(client);
        handle.shutdown();
    });
    engine.shutdown();
}

/// Client-side handshake knobs shrink the server's defaults but cannot grow
/// past them.
#[test]
fn handshake_negotiates_credits_and_batch_size() {
    let (db, _) = shared_database();
    let engine = test_engine(Arc::clone(&db));
    let server = NetServer::bind_with(&engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let handle = server.handle();
    let addr = handle.local_addr();
    let server_credit = engine.config().effective_session_in_flight() as u32;

    std::thread::scope(|scope| {
        scope.spawn(|| server.run().unwrap());
        let _guard = ShutdownOnDrop(handle.clone());

        let defaults = NetClient::connect(addr).unwrap();
        assert_eq!(defaults.credits(), server_credit);
        assert_eq!(defaults.batch_records(), 8);
        assert_eq!(defaults.backend(), "host");

        let small = NetClient::connect_with(
            addr,
            ClientConfig {
                batch_records: 2,
                max_in_flight: 1,
                ..ClientConfig::default()
            },
        )
        .unwrap();
        assert_eq!(small.credits(), 1);
        assert_eq!(small.batch_records(), 2);

        let greedy = NetClient::connect_with(
            addr,
            ClientConfig {
                batch_records: 1_000_000,
                max_in_flight: 1_000_000,
                ..ClientConfig::default()
            },
        )
        .unwrap();
        assert_eq!(greedy.credits(), server_credit, "credits must not grow");
        assert_eq!(greedy.batch_records(), 8, "batch size must not grow");

        drop((defaults, small, greedy));
        handle.shutdown();
    });
    engine.shutdown();
}

/// The tentpole acceptance check: a v1 (verbatim) client against a v2
/// server classifies bit-identically to a v2 (packed) client and to an
/// in-process session — the packed encoding changes bandwidth, never
/// results — and the packed request frames are measurably smaller.
#[test]
fn v1_and_v2_clients_are_bit_identical_to_in_process() {
    let (db, _) = shared_database();
    let engine = test_engine(Arc::clone(&db));
    // Mixed reads: genome/foreign/short/empty, paired, N runs, all-N.
    let reads = mixed_reads(90, 555);
    let in_process = {
        let mut session = engine.session();
        session.classify_batch(&reads)
    };
    assert_eq!(
        in_process,
        Classifier::new(Arc::clone(&db)).classify_batch(&reads)
    );

    let server = NetServer::bind(&engine, "127.0.0.1:0").unwrap();
    let handle = server.handle();
    let addr = handle.local_addr();

    std::thread::scope(|scope| {
        scope.spawn(|| server.run().unwrap());
        let _guard = ShutdownOnDrop(handle.clone());

        let mut v2 = NetClient::connect(addr).unwrap();
        assert_eq!(v2.protocol_version(), protocol::PROTOCOL_VERSION);
        let mut v1 = NetClient::connect_with(
            addr,
            ClientConfig {
                version: 1,
                ..ClientConfig::default()
            },
        )
        .unwrap();
        assert_eq!(v1.protocol_version(), 1);

        assert_eq!(v2.classify_batch(&reads).unwrap(), in_process);
        assert_eq!(v1.classify_batch(&reads).unwrap(), in_process);
        let (v2_stream, _) = v2.classify_iter(reads.iter().cloned()).unwrap();
        let (v1_stream, _) = v1.classify_iter(reads.iter().cloned()).unwrap();
        assert_eq!(v2_stream, in_process);
        assert_eq!(v1_stream, in_process);

        // The wire encodings decode to the same reads, and the packed one
        // is smaller even on this mixed (partly hostile) read set.
        let verbatim = protocol::encode_classify(0, &reads).unwrap();
        let packed = protocol::encode_classify_packed(0, &reads).unwrap();
        assert!(packed.len() < verbatim.len());

        drop((v1, v2));
        handle.shutdown();
    });
    let stats = engine.shutdown();
    assert_eq!(stats.worker_panics, 0);
}

/// A v1 connection must not accept v2 packed frames: the server answers
/// with an UnknownFrameType error, exactly what a genuine v1 server would
/// say.
#[test]
fn packed_frames_on_a_v1_connection_are_rejected() {
    let (db, _) = shared_database();
    let engine = test_engine(Arc::clone(&db));
    let server = NetServer::bind(&engine, "127.0.0.1:0").unwrap();
    let handle = server.handle();
    let addr = handle.local_addr();

    std::thread::scope(|scope| {
        scope.spawn(|| server.run().unwrap());
        let _guard = ShutdownOnDrop(handle.clone());
        let mut stream = TcpStream::connect(addr).unwrap();
        let hello = Frame::Hello {
            magic: MAGIC,
            version: 1,
            batch_records: 0,
            max_in_flight: 0,
            auth_token: None,
        }
        .encode()
        .unwrap();
        stream.write_all(&hello).unwrap();
        match protocol::read_frame(&mut stream).unwrap().unwrap() {
            Frame::HelloAck { version, .. } => assert_eq!(version, 1),
            other => panic!("expected HelloAck, got {other:?}"),
        }
        let packed = protocol::encode_classify_packed(0, &mixed_reads(3, 8)).unwrap();
        stream.write_all(&packed).unwrap();
        match protocol::read_frame(&mut stream).unwrap().unwrap() {
            Frame::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownFrameType),
            other => panic!("expected error frame, got {other:?}"),
        }
        handle.shutdown();
    });
    engine.shutdown();
}

/// Satellite regression: a peer dropping after part of the 4-byte length
/// prefix is a torn connection (`Disconnected`), not a clean EOF — and a
/// server connection fed such a tail tears down without affecting others.
#[test]
fn partial_length_prefix_reads_as_disconnect() {
    let frame = Frame::Goodbye.encode().unwrap();
    for cut in 1..4 {
        let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
        assert!(
            matches!(
                protocol::read_frame(&mut cursor),
                Err(NetError::Disconnected)
            ),
            "{cut} prefix bytes must read as a disconnect, not Ok(None)"
        );
    }
    let mut empty = std::io::Cursor::new(Vec::new());
    assert!(matches!(protocol::read_frame(&mut empty), Ok(None)));

    // Over a real connection: a client vanishing mid-prefix is survived,
    // and a healthy client on the same server is unaffected.
    let (db, _) = shared_database();
    let engine = test_engine(Arc::clone(&db));
    let server = NetServer::bind(&engine, "127.0.0.1:0").unwrap();
    let handle = server.handle();
    let addr = handle.local_addr();
    std::thread::scope(|scope| {
        scope.spawn(|| server.run().unwrap());
        let _guard = ShutdownOnDrop(handle.clone());
        let mut rude = TcpStream::connect(addr).unwrap();
        let hello = Frame::Hello {
            magic: MAGIC,
            version: PROTOCOL_VERSION,
            batch_records: 0,
            max_in_flight: 0,
            auth_token: None,
        }
        .encode()
        .unwrap();
        rude.write_all(&hello).unwrap();
        protocol::read_frame(&mut rude).unwrap().unwrap();
        rude.write_all(&[0x10, 0x00]).unwrap(); // half a length prefix
        drop(rude);

        let mut client = NetClient::connect(addr).unwrap();
        let reads = mixed_reads(12, 99);
        let got = client.classify_batch(&reads).unwrap();
        assert_eq!(got, Classifier::new(Arc::clone(&db)).classify_batch(&reads));
        drop(client);
        handle.shutdown();
    });
    engine.shutdown();
}

/// Satellite regression: server-side limits beyond u32 range must saturate
/// in the handshake, not silently wrap to a tiny credit/batch size.
#[cfg(target_pointer_width = "64")]
#[test]
fn oversized_server_limits_saturate_in_handshake() {
    let (db, _) = shared_database();
    let engine = test_engine(Arc::clone(&db));
    let server = NetServer::bind_with(
        &engine,
        "127.0.0.1:0",
        ServerConfig {
            session: metacache::serving::SessionConfig {
                // Would wrap to 2 and 5 under `as u32`.
                batch_records: (u32::MAX as usize) + 3,
                max_in_flight: (u32::MAX as usize) + 6,
                ..metacache::serving::SessionConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    let addr = handle.local_addr();

    std::thread::scope(|scope| {
        scope.spawn(|| server.run().unwrap());
        let _guard = ShutdownOnDrop(handle.clone());
        let client = NetClient::connect(addr).unwrap();
        // Credits are clamped by the engine's in-flight ceiling (the result
        // channel is pre-sized to them); batch size saturates at u32::MAX.
        // Before the fix both wrapped (`as u32`) to 5 and 2 respectively.
        assert_eq!(
            client.credits(),
            metacache::serving::MAX_SESSION_IN_FLIGHT as u32,
            "credits wrapped"
        );
        assert_eq!(client.batch_records(), u32::MAX, "batch size wrapped");
        drop(client);
        handle.shutdown();
    });
    engine.shutdown();
}

/// The v4 candidates exchange is bit-identical to in-process candidate
/// queries: every list, entry and ordering matches `candidates_with`, and a
/// pre-v4 connection cannot use the frame.
#[test]
fn candidates_over_the_wire_match_in_process() {
    let (db, _) = shared_database();
    let engine = test_engine(Arc::clone(&db));
    let server = NetServer::bind(&engine, "127.0.0.1:0").unwrap();
    let handle = server.handle();
    let addr = handle.local_addr();

    std::thread::scope(|scope| {
        scope.spawn(|| server.run().unwrap());
        let _guard = ShutdownOnDrop(handle.clone());
        let reads = mixed_reads(40, 1234);
        let classifier = Classifier::new(Arc::clone(&db));
        let mut scratch = metacache::QueryScratch::new();
        let expected: Vec<Vec<metacache::Candidate>> = reads
            .iter()
            .map(|r| {
                classifier
                    .candidates_with(r, &mut scratch)
                    .as_slice()
                    .to_vec()
            })
            .collect();

        let mut client = NetClient::connect(addr).unwrap();
        let got = client.candidates_batch(&reads).unwrap();
        assert_eq!(got, expected);
        // Interleaving with classification on the same connection works
        // (request ids keep increasing across both frame kinds).
        let classifications = client.classify_batch(&reads).unwrap();
        assert_eq!(classifications, classifier.classify_batch(&reads));
        assert_eq!(client.candidates_batch(&reads[..5]).unwrap(), expected[..5]);
        drop(client);

        // A v3 connection refuses to send candidates locally.
        let mut v3 = NetClient::connect_with(
            addr,
            ClientConfig {
                version: 3,
                ..ClientConfig::default()
            },
        )
        .unwrap();
        assert!(matches!(
            v3.candidates_batch(&reads[..2]),
            Err(NetError::Protocol(_))
        ));
        drop(v3);
        handle.shutdown();
    });
    engine.shutdown();
}

/// Rebuild the shared fixture database as an owned value (the build is
/// deterministic, so it is bit-identical to [`shared_database`]'s) — shard
/// splitting consumes a `Database` by value.
fn owned_database() -> Database {
    let mut taxonomy = Taxonomy::with_root();
    taxonomy.add_node(10, 1, Rank::Genus, "G").unwrap();
    taxonomy.add_node(100, 10, Rank::Species, "G a").unwrap();
    taxonomy.add_node(101, 10, Rank::Species, "G b").unwrap();
    let (_, genomes) = shared_database();
    let mut builder = CpuBuilder::new(MetaCacheConfig::for_tests(), taxonomy);
    builder
        .add_target(SequenceRecord::new("refA", genomes[0].clone()), 100)
        .unwrap();
    builder
        .add_target(SequenceRecord::new("refB", genomes[1].clone()), 101)
        .unwrap();
    builder.finish()
}

/// A routed topology — router process fronting two shard servers — is
/// bit-identical to the unsharded in-process classifier, end to end over
/// the ordinary protocol.
#[test]
fn routed_scatter_gather_matches_unsharded() {
    let (db, _) = shared_database();
    let split = Arc::new(metacache::ShardedDatabase::round_robin(owned_database(), 2).unwrap());

    // Two shard servers, each holding one slice of the table.
    let shard_engines: Vec<ServingEngine> = split
        .shards()
        .iter()
        .map(|shard| test_engine(Arc::clone(shard)))
        .collect();
    let shard_servers: Vec<NetServer> = shard_engines
        .iter()
        .map(|engine| NetServer::bind(engine, "127.0.0.1:0").unwrap())
        .collect();
    let shard_handles: Vec<mc_net::ServerHandle> =
        shard_servers.iter().map(|s| s.handle()).collect();
    let shard_addrs: Vec<std::net::SocketAddr> =
        shard_handles.iter().map(|h| h.local_addr()).collect();

    // The router: a metadata-only database plus the shard addresses.
    let meta = Arc::new(db.metadata_view());
    let backend = mc_net::RouterBackend::new(
        Arc::clone(&meta),
        &shard_addrs,
        mc_net::RouterConfig::default(),
    )
    .unwrap();
    assert_eq!(backend.shard_count(), 2);
    let router_engine = ServingEngine::new(
        backend,
        EngineConfig {
            workers: 2,
            queue_capacity: 4,
            batch_records: 8,
            session_max_in_flight: 4,
            ..EngineConfig::default()
        },
    );
    let router_server = NetServer::bind(&router_engine, "127.0.0.1:0").unwrap();
    let router_handle = router_server.handle();
    let router_addr = router_handle.local_addr();

    std::thread::scope(|scope| {
        let _guards: Vec<ShutdownOnDrop> = shard_handles
            .iter()
            .cloned()
            .map(ShutdownOnDrop)
            .chain(std::iter::once(ShutdownOnDrop(router_handle.clone())))
            .collect();
        for server in shard_servers {
            scope.spawn(move || server.run().unwrap());
        }
        scope.spawn(move || router_server.run().unwrap());

        let reads = mixed_reads(60, 777);
        let expected = Classifier::new(Arc::clone(&db)).classify_batch(&reads);
        let mut client = NetClient::connect(router_addr).unwrap();
        assert_eq!(client.backend(), "router");
        let got = client.classify_batch(&reads).unwrap();
        assert_eq!(got, expected, "routed results diverged from unsharded");
        let (streamed, _) = client.classify_iter(reads.iter().cloned()).unwrap();
        assert_eq!(streamed, expected);
        drop(client);

        // A router's database has no table: candidates against the router
        // itself are refused (no silent empty lists for nested routing).
        let mut direct = NetClient::connect(router_addr).unwrap();
        assert!(direct.candidates_batch(&reads[..2]).is_err());
        drop(direct);
    });
    router_engine.shutdown();
    for engine in shard_engines {
        engine.shutdown();
    }
}
