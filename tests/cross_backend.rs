//! Cross-backend consistency tests: the same workload run through different
//! table variants, device counts and builders must produce consistent
//! classifications, and the experiment harness must run end to end at tiny
//! scale.

use mc_bench::experiments::{breakdown, build_perf, datasets, ttq};
use mc_bench::ExperimentScale;
use mc_datagen::community::{RefSeqLikeSpec, ReferenceCollection};
use mc_datagen::profiles::DatasetProfile;
use mc_datagen::reads::ReadSimulator;
use mc_datagen::taxonomy_gen::TaxonomySpec;
use mc_gpu_sim::MultiGpuSystem;
use mc_kraken2::{Kraken2Builder, Kraken2Classifier, Kraken2Config};
use mc_taxonomy::TaxonId;
use metacache::build::{estimate_locations, CpuBuilder, GpuBuilder};
use metacache::gpu::GpuClassifier;
use metacache::query::Classifier;
use metacache::MetaCacheConfig;

fn collection() -> ReferenceCollection {
    ReferenceCollection::refseq_like(RefSeqLikeSpec {
        taxonomy: TaxonomySpec {
            genera: 3,
            species_per_genus: 2,
            families: 2,
        },
        genome_length: 20_000,
        strains_per_species: 1,
        seed: 99,
    })
}

#[test]
fn partition_count_does_not_change_classifications_without_capping() {
    let collection = collection();
    let reads = ReadSimulator::new(DatasetProfile::hiseq(), 150)
        .with_seed(10)
        .simulate(&collection);
    let config = MetaCacheConfig::default();
    let records = collection.to_records();

    let mut calls_per_devices = Vec::new();
    for devices in [1usize, 2, 4] {
        let system = MultiGpuSystem::dgx1(devices);
        let expected = estimate_locations(&config, &records) / devices + 4096;
        let mut builder =
            GpuBuilder::new(config, collection.taxonomy.clone(), &system, expected).unwrap();
        for t in &collection.targets {
            builder.add_target(t.to_record(), t.taxon).unwrap();
        }
        let db = builder.finish();
        assert_eq!(db.partition_count(), devices);
        let (calls, _) = GpuClassifier::new(&db, &system).classify_all(&reads.reads);
        calls_per_devices.push(calls);
    }
    // The reference set is small enough that no bucket cap is hit, so the
    // partition count must not affect any classification.
    assert_eq!(calls_per_devices[0], calls_per_devices[1]);
    assert_eq!(calls_per_devices[1], calls_per_devices[2]);
}

#[test]
fn cpu_and_gpu_builders_lead_to_agreeing_classifiers() {
    let collection = collection();
    let reads = ReadSimulator::new(DatasetProfile::hiseq(), 150)
        .with_seed(11)
        .simulate(&collection);
    let truth: Vec<TaxonId> = reads.truth.iter().map(|t| t.taxon).collect();
    let config = MetaCacheConfig::default();

    let mut cpu_builder = CpuBuilder::new(config, collection.taxonomy.clone());
    for t in &collection.targets {
        cpu_builder.add_target(t.to_record(), t.taxon).unwrap();
    }
    let cpu_db = cpu_builder.finish();
    let cpu_calls = Classifier::new(&cpu_db).classify_batch(&reads.reads);

    let system = MultiGpuSystem::dgx1(2);
    let records = collection.to_records();
    let expected = estimate_locations(&config, &records) / 2 + 4096;
    let mut gpu_builder =
        GpuBuilder::new(config, collection.taxonomy.clone(), &system, expected).unwrap();
    for t in &collection.targets {
        gpu_builder.add_target(t.to_record(), t.taxon).unwrap();
    }
    let gpu_db = gpu_builder.finish();
    let gpu_calls = Classifier::new(&gpu_db).classify_batch(&reads.reads);

    // Taxon assignments agree read by read (hit counts may differ only if a
    // cap were reached, which this workload does not trigger).
    let agreements = cpu_calls
        .iter()
        .zip(&gpu_calls)
        .filter(|(a, b)| a.taxon == b.taxon)
        .count();
    assert_eq!(agreements, reads.len());

    // Both are accurate against the ground truth.
    let correct = cpu_calls
        .iter()
        .zip(&truth)
        .filter(|(c, t)| c.taxon == **t)
        .count();
    assert!(
        correct * 2 > reads.len(),
        "only {correct}/{} correct",
        reads.len()
    );
}

#[test]
fn kraken2_and_metacache_agree_on_easy_reads() {
    let collection = collection();
    let reads = ReadSimulator::new(DatasetProfile::miseq(), 100)
        .with_seed(12)
        .simulate(&collection);
    let truth: Vec<TaxonId> = reads.truth.iter().map(|t| t.taxon).collect();

    let mut mc_builder = CpuBuilder::new(MetaCacheConfig::default(), collection.taxonomy.clone());
    let mut kr_builder =
        Kraken2Builder::new(Kraken2Config::default(), collection.taxonomy.clone()).unwrap();
    for t in &collection.targets {
        mc_builder.add_target(t.to_record(), t.taxon).unwrap();
        kr_builder.add_target(&t.to_record(), t.taxon).unwrap();
    }
    let mc_db = mc_builder.finish();
    let kr_db = kr_builder.finish();
    let mc_calls = Classifier::new(&mc_db).classify_batch(&reads.reads);
    let kr_calls = Kraken2Classifier::new(&kr_db).classify_batch(&reads.reads);

    // Both tools should be right on the vast majority of these clean reads.
    let mc_correct = mc_calls
        .iter()
        .zip(&truth)
        .filter(|(c, t)| c.taxon == **t)
        .count();
    let kr_correct = kr_calls
        .iter()
        .zip(&truth)
        .filter(|(c, t)| c.taxon == **t)
        .count();
    assert!(
        mc_correct * 10 >= reads.len() * 7,
        "MetaCache correct: {mc_correct}"
    );
    assert!(
        kr_correct * 10 >= reads.len() * 7,
        "Kraken2 correct: {kr_correct}"
    );
}

#[test]
fn experiment_harness_runs_at_tiny_scale() {
    let scale = ExperimentScale::tiny();
    let ds = datasets::run(&scale);
    assert_eq!(ds.references.len(), 2);
    let bp = build_perf::run(&scale);
    assert!(bp.gpu_speedup_over("RefSeq-like", "MC CPU").unwrap() > 1.0);
    let bd = breakdown::run(&scale);
    assert_eq!(bd.rows.len(), 3);
    let t5 = ttq::run(&scale);
    assert_eq!(t5.bars.len(), 4);
}
