//! Fault-injection tests of the serving stack: every chaos-proxy fault
//! class (delay, dribble, truncate, stall, reset, half-close, handshake
//! stall) must leave the server serviceable — sessions reclaimed in
//! bounded time, other connections unaffected, stats accounted — and the
//! backoff-retry client must converge to results bit-identical to the
//! in-process engine. Also covers the satellite features riding on
//! protocol v3: pre-shared-token auth, Ping/Pong keepalive vs idle
//! reaping, and `Busy` load shedding.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mc_net::protocol::{self, frame_type, Frame, MAGIC};
use mc_net::{
    ChaosProxy, ClientConfig, ConnPlan, ErrorCode, Fault, NetClient, NetError, NetServer,
    RetryClient, RetryPolicy, ServerConfig, ServerHandle, PASSTHROUGH,
};
use mc_seqio::SequenceRecord;
use mc_taxonomy::{Rank, Taxonomy};
use metacache::build::CpuBuilder;
use metacache::query::Classifier;
use metacache::serving::{EngineConfig, ServingEngine};
use metacache::{Database, HostBackend, MetaCacheConfig};

fn make_seq(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b"ACGT"[(state >> 33) as usize % 4]
        })
        .collect()
}

/// One shared two-species database plus its genomes.
fn shared_database() -> (Arc<Database>, &'static [Vec<u8>]) {
    use std::sync::OnceLock;
    static DB: OnceLock<(Arc<Database>, Vec<Vec<u8>>)> = OnceLock::new();
    let (db, genomes) = DB.get_or_init(|| {
        let mut taxonomy = Taxonomy::with_root();
        taxonomy.add_node(10, 1, Rank::Genus, "G").unwrap();
        taxonomy.add_node(100, 10, Rank::Species, "G a").unwrap();
        taxonomy.add_node(101, 10, Rank::Species, "G b").unwrap();
        let genomes = vec![make_seq(18_000, 61), make_seq(18_000, 62)];
        let mut builder = CpuBuilder::new(MetaCacheConfig::for_tests(), taxonomy);
        builder
            .add_target(SequenceRecord::new("refA", genomes[0].clone()), 100)
            .unwrap();
        builder
            .add_target(SequenceRecord::new("refB", genomes[1].clone()), 101)
            .unwrap();
        (Arc::new(builder.finish()), genomes)
    });
    (Arc::clone(db), genomes)
}

fn genome_reads(n: usize, seed: u64) -> Vec<SequenceRecord> {
    let (_, genomes) = shared_database();
    let mut state = seed | 1;
    (0..n)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let genome = &genomes[i % 2];
            let offset = (state as usize >> 7) % (genome.len() - 150);
            SequenceRecord::new(
                format!("c{seed}_r{i}"),
                genome[offset..offset + 150].to_vec(),
            )
        })
        .collect()
}

fn test_engine(db: Arc<Database>) -> ServingEngine {
    ServingEngine::host_with_config(
        db,
        EngineConfig {
            workers: 3,
            queue_capacity: 4,
            batch_records: 8,
            session_max_in_flight: 0,
            ..EngineConfig::default()
        },
    )
}

/// Tight deadlines so faults are reaped inside test time.
fn fast_config() -> ServerConfig {
    ServerConfig {
        read_timeout: Some(Duration::from_millis(400)),
        idle_timeout: Some(Duration::from_secs(5)),
        handshake_timeout: Some(Duration::from_millis(400)),
        write_timeout: Some(Duration::from_secs(5)),
        ..ServerConfig::default()
    }
}

/// Shuts the server down when dropped, so a failed assertion inside a
/// `thread::scope` unwinds cleanly instead of deadlocking on the join of
/// the still-running acceptor (shutdown is idempotent).
struct ShutdownOnDrop(ServerHandle);

impl Drop for ShutdownOnDrop {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

fn wait_until(mut cond: impl FnMut() -> bool, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return cond();
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn hello_bytes() -> Vec<u8> {
    Frame::Hello {
        magic: MAGIC,
        version: protocol::PROTOCOL_VERSION,
        batch_records: 0,
        max_in_flight: 0,
        auth_token: None,
    }
    .encode()
    .unwrap()
}

/// The tentpole acceptance test: a seeded sweep over every fault class,
/// driven by the retry client, must end bit-identical to the in-process
/// classifier with every session reclaimed.
#[test]
fn retry_client_converges_bit_identical_through_seeded_fault_sweep() {
    let (db, _) = shared_database();
    let reads = genome_reads(60, 31);
    let expected = Classifier::new(Arc::clone(&db)).classify_batch(&reads);

    let engine = test_engine(Arc::clone(&db));
    let server = NetServer::bind_with(&engine, "127.0.0.1:0", fast_config()).unwrap();
    let handle = server.handle();
    let addr = handle.local_addr();

    std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run().unwrap());
        let _guard = ShutdownOnDrop(handle.clone());
        // Ten scripted connections drawn from the seeded generator (every
        // class appears across these seeds), then verbatim forwarding.
        let plans: Vec<ConnPlan> = (0..10).map(ConnPlan::seeded).collect();
        assert!(
            plans
                .iter()
                .any(|p| p.upstream.is_lossy() || p.downstream.is_lossy()),
            "sweep must contain lossy faults"
        );
        let proxy = ChaosProxy::start(addr, plans).unwrap();
        let mut client = RetryClient::connect_with(
            proxy.local_addr(),
            ClientConfig {
                connect_timeout: Some(Duration::from_secs(1)),
                request_timeout: Some(Duration::from_millis(500)),
                ..ClientConfig::default()
            },
            RetryPolicy {
                max_retries: 30,
                base_delay: Duration::from_millis(2),
                max_delay: Duration::from_millis(20),
                seed: 41,
            },
        )
        .unwrap();
        let (got, summary) = client.classify_iter(reads.iter().cloned()).unwrap();
        assert_eq!(got, expected, "chaos results diverged from in-process");
        assert!(summary.requests >= 8, "60 reads over 8-record chunks");
        drop(client);
        proxy.shutdown();

        // The server must still be serviceable on a clean connection …
        let mut direct = NetClient::connect(addr).unwrap();
        assert_eq!(direct.classify_batch(&reads).unwrap(), expected);
        drop(direct);
        // … and every chaos-era session must be reclaimed in bounded time.
        assert!(
            wait_until(|| engine.live_sessions() == 0, Duration::from_secs(5)),
            "sessions leaked after the fault sweep: {}",
            engine.live_sessions()
        );
        handle.shutdown();
        runner.join().unwrap();
    });
    engine.shutdown();
}

/// Satellite: a connection that vanishes mid-stream (chaos reset) must
/// purge its session promptly — not at process exit — while a concurrent
/// session streams on unaffected.
#[test]
fn reset_mid_stream_purges_session_while_others_stream_on() {
    let (db, _) = shared_database();
    let reads = genome_reads(48, 77);
    let expected = Classifier::new(Arc::clone(&db)).classify_batch(&reads);

    let engine = test_engine(Arc::clone(&db));
    let server = NetServer::bind_with(&engine, "127.0.0.1:0", fast_config()).unwrap();
    let handle = server.handle();
    let addr = handle.local_addr();

    std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run().unwrap());
        let _guard = ShutdownOnDrop(handle.clone());
        // Victim: its upstream direction is cut 40 bytes in — right after
        // the handshake, inside the first classify frame.
        let proxy =
            ChaosProxy::start(addr, vec![ConnPlan::upstream(Fault::Reset { after: 40 })]).unwrap();
        let mut victim = NetClient::connect_with(
            proxy.local_addr(),
            ClientConfig {
                request_timeout: Some(Duration::from_secs(2)),
                ..ClientConfig::default()
            },
        )
        .unwrap();
        assert_eq!(engine.live_sessions(), 1, "victim session registered");
        let victim_result = victim.classify_batch(&reads);
        assert!(
            victim_result.is_err(),
            "reset connection must surface an error"
        );

        // The victim's session must be gone well before process exit.
        assert!(
            wait_until(|| engine.live_sessions() == 0, Duration::from_secs(3)),
            "rude disconnect leaked its session"
        );

        // A well-behaved concurrent client is unaffected.
        let mut good = NetClient::connect(addr).unwrap();
        assert_eq!(good.classify_batch(&reads).unwrap(), expected);
        drop(good);
        drop(victim);
        proxy.shutdown();
        handle.shutdown();
        runner.join().unwrap();
    });
    let stats = engine.shutdown();
    assert!(
        stats.records_classified >= 48,
        "good client's reads classified"
    );
}

/// Satellite: slow-loris and partial-frame stalls are disconnected in
/// bounded time by the per-frame read deadline — a dribbled handshake, a
/// 3-byte length prefix, and a stall inside a ClassifyPacked payload.
#[test]
fn slow_loris_and_partial_frame_stalls_are_reaped_in_bounded_time() {
    let (db, _) = shared_database();
    let engine = test_engine(Arc::clone(&db));
    let server = NetServer::bind_with(&engine, "127.0.0.1:0", fast_config()).unwrap();
    let handle = server.handle();
    let addr = handle.local_addr();

    std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run());
        let _guard = ShutdownOnDrop(handle.clone());

        // (a) Handshake dribbled one byte per 50 ms: the 400 ms handshake
        // deadline fires long before the Hello completes.
        let started = Instant::now();
        let mut dribbler = TcpStream::connect(addr).unwrap();
        dribbler
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let hello = hello_bytes();
        for byte in &hello {
            std::thread::sleep(Duration::from_millis(50));
            if dribbler.write_all(std::slice::from_ref(byte)).is_err() {
                break; // server already gave up on us — that's the point
            }
        }
        // ~19 bytes × 50 ms ≫ the 400 ms handshake deadline: by now the
        // server has killed the handshake. Read its parting TimedOut error
        // (or the bare close, if the error frame was lost to the reset).
        match protocol::read_frame(&mut dribbler) {
            Ok(Some(Frame::Error { code, .. })) => assert_eq!(code, ErrorCode::TimedOut),
            Ok(Some(other)) => panic!("expected TimedOut error, got {other:?}"),
            Ok(None) | Err(_) => {}
        }
        assert!(
            started.elapsed() < Duration::from_secs(4),
            "dribbled handshake was not reaped in bounded time"
        );
        drop(dribbler);

        // (b) Three bytes of a length prefix, then silence: the frame has
        // started, so the read deadline (not the idle one) must fire.
        let mut stall = TcpStream::connect(addr).unwrap();
        stall
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stall.write_all(&hello).unwrap();
        let ack = protocol::read_frame(&mut stall).unwrap().unwrap();
        assert!(matches!(ack, Frame::HelloAck { .. }));
        assert_eq!(engine.live_sessions(), 1);
        stall.write_all(&[0x40, 0x00, 0x00]).unwrap();
        let started = Instant::now();
        match protocol::read_frame(&mut stall) {
            Ok(Some(Frame::Error { code, .. })) => assert_eq!(code, ErrorCode::TimedOut),
            Ok(Some(other)) => panic!("expected TimedOut error, got {other:?}"),
            Ok(None) | Err(_) => {} // already torn down: fine
        }
        assert!(
            started.elapsed() < Duration::from_secs(4),
            "stalled length prefix was not reaped in bounded time"
        );
        assert!(
            wait_until(|| engine.live_sessions() == 0, Duration::from_secs(3)),
            "stalled connection leaked its session"
        );
        drop(stall);

        // (c) A stall *inside* a ClassifyPacked payload: full handshake,
        // then a frame that announces 600 payload bytes and delivers 10.
        let mut midframe = TcpStream::connect(addr).unwrap();
        midframe
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        midframe.write_all(&hello).unwrap();
        protocol::read_frame(&mut midframe).unwrap().unwrap();
        assert_eq!(engine.live_sessions(), 1);
        let mut partial = 600u32.to_le_bytes().to_vec();
        partial.push(frame_type::CLASSIFY_PACKED);
        partial.extend_from_slice(&[0u8; 10]);
        midframe.write_all(&partial).unwrap();
        let started = Instant::now();
        match protocol::read_frame(&mut midframe) {
            Ok(Some(Frame::Error { code, .. })) => assert_eq!(code, ErrorCode::TimedOut),
            Ok(Some(other)) => panic!("expected TimedOut error, got {other:?}"),
            Ok(None) | Err(_) => {}
        }
        assert!(
            started.elapsed() < Duration::from_secs(4),
            "mid-payload stall was not reaped in bounded time"
        );
        assert!(
            wait_until(|| engine.live_sessions() == 0, Duration::from_secs(3)),
            "mid-payload stall leaked its session"
        );
        drop(midframe);

        handle.shutdown();
        let stats = runner.join().unwrap().unwrap();
        assert!(
            stats.timeouts >= 3,
            "every stalled connection must count a timeout, got {}",
            stats.timeouts
        );
    });
    engine.shutdown();
}

/// v3 liveness: pings reset the idle reaper, so an idle-but-alive client
/// outlives several idle windows; a silent one is reaped.
#[test]
fn pings_keep_idle_connection_alive_until_they_stop() {
    let (db, _) = shared_database();
    let reads = genome_reads(8, 5);
    let expected = Classifier::new(Arc::clone(&db)).classify_batch(&reads);

    let engine = test_engine(Arc::clone(&db));
    let config = ServerConfig {
        idle_timeout: Some(Duration::from_millis(500)),
        read_timeout: Some(Duration::from_secs(2)),
        ..ServerConfig::default()
    };
    let server = NetServer::bind_with(&engine, "127.0.0.1:0", config).unwrap();
    let handle = server.handle();
    let addr = handle.local_addr();

    std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run());
        let _guard = ShutdownOnDrop(handle.clone());
        let mut client = NetClient::connect(addr).unwrap();
        // 6 × 150 ms of pinging spans ~900 ms — nearly two idle windows.
        for _ in 0..6 {
            std::thread::sleep(Duration::from_millis(150));
            client.ping().expect("ping must keep the connection alive");
        }
        assert_eq!(client.classify_batch(&reads).unwrap(), expected);
        // Now go silent: the idle reaper must claim the connection.
        assert!(
            wait_until(|| engine.live_sessions() == 0, Duration::from_secs(4)),
            "idle connection was never reaped"
        );
        assert!(
            client.classify_batch(&reads).is_err(),
            "reaped connection must error"
        );
        drop(client);
        handle.shutdown();
        let stats = runner.join().unwrap().unwrap();
        assert!(stats.timeouts >= 1, "idle reap must count a timeout");
    });
    engine.shutdown();
}

/// Satellite: pre-shared-token auth — right token in, wrong token out (as
/// a typed Unauthorized frame), tokens refused locally below v3.
#[test]
fn auth_token_gates_the_handshake() {
    let (db, _) = shared_database();
    let reads = genome_reads(8, 9);
    let expected = Classifier::new(Arc::clone(&db)).classify_batch(&reads);

    let engine = test_engine(Arc::clone(&db));
    let config = ServerConfig {
        auth_token: Some("open sesame".into()),
        ..ServerConfig::default()
    };
    let server = NetServer::bind_with(&engine, "127.0.0.1:0", config).unwrap();
    let handle = server.handle();
    let addr = handle.local_addr();

    std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run());
        let _guard = ShutdownOnDrop(handle.clone());

        let mut authed = NetClient::connect_with(
            addr,
            ClientConfig {
                auth_token: Some("open sesame".into()),
                ..ClientConfig::default()
            },
        )
        .unwrap();
        assert_eq!(authed.classify_batch(&reads).unwrap(), expected);
        drop(authed);

        for bad in [Some("wrong token".to_string()), None] {
            let err = match NetClient::connect_with(
                addr,
                ClientConfig {
                    auth_token: bad,
                    ..ClientConfig::default()
                },
            ) {
                Err(e) => e,
                Ok(_) => panic!("handshake must be rejected without the right token"),
            };
            match &err {
                NetError::Remote { code, .. } => assert_eq!(*code, ErrorCode::Unauthorized),
                other => panic!("expected Unauthorized, got {other}"),
            }
            assert!(!err.is_retryable(), "auth rejection must not be retried");
        }

        // A token on a v1/v2 announcement is refused before any bytes move.
        let local = NetClient::connect_with(
            addr,
            ClientConfig {
                version: 2,
                auth_token: Some("open sesame".into()),
                ..ClientConfig::default()
            },
        );
        assert!(matches!(local, Err(NetError::Protocol(_))));

        handle.shutdown();
        let stats = runner.join().unwrap().unwrap();
        assert_eq!(stats.auth_failures, 2);
    });
    engine.shutdown();
}

/// Load shedding: past `max_inflight_records`, a v3 request is answered
/// with a request-level Busy (the connection survives); a v1 peer is never
/// shed; past `max_connections`, the whole connection is refused.
#[test]
fn overload_is_shed_with_busy_frames() {
    let (db, _) = shared_database();
    let small = genome_reads(3, 13);
    let expected_small = Classifier::new(Arc::clone(&db)).classify_batch(&small);
    // Exactly one negotiated request (the engine's batch is 8 records), so
    // it always lands over the 4-record cap in a single Busy answer.
    let big = genome_reads(8, 14);
    let expected_big = Classifier::new(Arc::clone(&db)).classify_batch(&big);

    let engine = test_engine(Arc::clone(&db));
    let config = ServerConfig {
        max_inflight_records: 4,
        retry_after_ms: 25,
        ..ServerConfig::default()
    };
    let server = NetServer::bind_with(&engine, "127.0.0.1:0", config).unwrap();
    let handle = server.handle();
    let addr = handle.local_addr();

    std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run());
        let _guard = ShutdownOnDrop(handle.clone());

        // An 8-read request can never fit under the 4-record cap: shed.
        let mut v3 = NetClient::connect(addr).unwrap();
        match v3.classify_batch(&big) {
            Err(NetError::Busy { retry_after_ms }) => assert_eq!(retry_after_ms, 25),
            other => panic!("expected Busy, got {other:?}"),
        }
        // The same connection keeps working for requests under the cap.
        assert_eq!(v3.classify_batch(&small).unwrap(), expected_small);
        drop(v3);

        // A v1 peer has no Busy vocabulary: the same oversized request is
        // served with the legacy blocking backpressure instead.
        let mut v1 = NetClient::connect_with(
            addr,
            ClientConfig {
                version: 1,
                ..ClientConfig::default()
            },
        )
        .unwrap();
        assert_eq!(v1.classify_batch(&big).unwrap(), expected_big);
        drop(v1);

        // The retry client gives up on a permanently-shed request only
        // after its policy is exhausted.
        let mut retry = RetryClient::connect_with(
            addr,
            ClientConfig::default(),
            RetryPolicy {
                max_retries: 2,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(5),
                seed: 3,
            },
        )
        .unwrap();
        assert!(matches!(
            retry.classify_batch(&big),
            Err(NetError::Busy { .. })
        ));
        assert_eq!(retry.stats().busy_sheds, 3, "initial try + 2 retries");

        handle.shutdown();
        let stats = runner.join().unwrap().unwrap();
        assert!(stats.shed_requests >= 4, "got {}", stats.shed_requests);
    });
    engine.shutdown();
}

/// Connection-level shedding: past `max_connections` the server answers a
/// connection-level Busy at the door; once capacity frees, the same peer
/// gets in.
#[test]
fn connection_cap_refuses_at_the_door_until_capacity_frees() {
    let (db, _) = shared_database();
    let reads = genome_reads(6, 21);
    let expected = Classifier::new(Arc::clone(&db)).classify_batch(&reads);

    let engine = test_engine(Arc::clone(&db));
    let config = ServerConfig {
        max_connections: 1,
        retry_after_ms: 10,
        ..ServerConfig::default()
    };
    let server = NetServer::bind_with(&engine, "127.0.0.1:0", config).unwrap();
    let handle = server.handle();
    let addr = handle.local_addr();

    std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run());
        let _guard = ShutdownOnDrop(handle.clone());
        let first = NetClient::connect(addr).unwrap();
        let refused = NetClient::connect(addr);
        assert!(
            matches!(refused, Err(NetError::Busy { retry_after_ms: 10 })),
            "second connection must be refused at the door"
        );
        drop(first);
        // Capacity frees once the first connection is torn down; the retry
        // client rides the Busy hint until it gets in.
        let mut retry = RetryClient::connect_with(
            addr,
            ClientConfig::default(),
            RetryPolicy {
                max_retries: 20,
                base_delay: Duration::from_millis(5),
                max_delay: Duration::from_millis(50),
                seed: 9,
            },
        )
        .unwrap();
        assert_eq!(retry.classify_batch(&reads).unwrap(), expected);
        handle.shutdown();
        let stats = runner.join().unwrap().unwrap();
        assert!(stats.shed_connections >= 1);
    });
    engine.shutdown();
}

/// Truncated and half-closed connections (the remaining fault classes,
/// pointed at the handshake) are absorbed by the retry client and leave
/// no session behind.
#[test]
fn truncate_and_half_close_faults_are_absorbed_by_retry() {
    let (db, _) = shared_database();
    let reads = genome_reads(24, 55);
    let expected = Classifier::new(Arc::clone(&db)).classify_batch(&reads);

    let engine = test_engine(Arc::clone(&db));
    let server = NetServer::bind_with(&engine, "127.0.0.1:0", fast_config()).unwrap();
    let handle = server.handle();
    let addr = handle.local_addr();

    std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run().unwrap());
        let _guard = ShutdownOnDrop(handle.clone());
        let plans = vec![
            ConnPlan::upstream(Fault::Truncate { after: 7 }),
            ConnPlan::downstream(Fault::Truncate { after: 12 }),
            ConnPlan::upstream(Fault::HalfClose { after: 25 }),
            ConnPlan::downstream(Fault::Delay(Duration::from_millis(30))),
            PASSTHROUGH,
        ];
        let proxy = ChaosProxy::start(addr, plans).unwrap();
        let mut retry = RetryClient::connect_with(
            proxy.local_addr(),
            ClientConfig {
                connect_timeout: Some(Duration::from_secs(1)),
                request_timeout: Some(Duration::from_millis(500)),
                ..ClientConfig::default()
            },
            RetryPolicy {
                max_retries: 15,
                base_delay: Duration::from_millis(2),
                max_delay: Duration::from_millis(20),
                seed: 77,
            },
        )
        .unwrap();
        assert_eq!(retry.classify_batch(&reads).unwrap(), expected);
        assert!(retry.stats().retries >= 1, "the faults must have bitten");
        drop(retry);
        proxy.shutdown();
        assert!(
            wait_until(|| engine.live_sessions() == 0, Duration::from_secs(5)),
            "faulted connections leaked sessions"
        );
        handle.shutdown();
        runner.join().unwrap();
    });
    engine.shutdown();
}

/// `ServerHandle::shutdown` must complete even while a peer is stalled
/// mid-frame — the drain is bounded by deadlines, not by peer behavior.
#[test]
fn shutdown_is_bounded_with_a_stuck_peer() {
    let (db, _) = shared_database();
    let engine = test_engine(Arc::clone(&db));
    let server = NetServer::bind_with(&engine, "127.0.0.1:0", fast_config()).unwrap();
    let handle = server.handle();
    let addr = handle.local_addr();

    std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run());
        let _guard = ShutdownOnDrop(handle.clone());
        // A peer that handshakes, then leaves half a frame on the wire and
        // goes silent (but keeps the socket open).
        let mut stuck = TcpStream::connect(addr).unwrap();
        stuck.write_all(&hello_bytes()).unwrap();
        protocol::read_frame(&mut stuck).unwrap().unwrap();
        stuck.write_all(&[0x99, 0x00]).unwrap();

        std::thread::sleep(Duration::from_millis(50));
        let started = Instant::now();
        handle.shutdown();
        let stats = runner.join().unwrap().unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "shutdown blocked on a stuck peer"
        );
        assert_eq!(stats.connections, 1);
        drop(stuck);
    });
    engine.shutdown();
}

/// Rebuild the shared fixture database as an owned value (deterministic, so
/// bit-identical to [`shared_database`]'s) — the shard split consumes it.
fn owned_database() -> Database {
    let mut taxonomy = Taxonomy::with_root();
    taxonomy.add_node(10, 1, Rank::Genus, "G").unwrap();
    taxonomy.add_node(100, 10, Rank::Species, "G a").unwrap();
    taxonomy.add_node(101, 10, Rank::Species, "G b").unwrap();
    let (_, genomes) = shared_database();
    let mut builder = CpuBuilder::new(MetaCacheConfig::for_tests(), taxonomy);
    builder
        .add_target(SequenceRecord::new("refA", genomes[0].clone()), 100)
        .unwrap();
    builder
        .add_target(SequenceRecord::new("refB", genomes[1].clone()), 101)
        .unwrap();
    builder.finish()
}

/// Routed topology under chaos: a [`ChaosProxy`] sits between the router
/// and one of its two shard servers, feeding the first leg connections
/// truncations and resets. The router's per-leg [`RetryClient`] must absorb
/// the faults and converge to results bit-identical to the unsharded
/// in-process classifier — a flaky shard leg must never corrupt a merge
/// with partial (healthy-shards-only) answers — and every session on every
/// leg must drain to zero afterwards.
#[test]
fn routed_chaos_leg_retries_to_bit_identical_convergence() {
    let (db, _) = shared_database();
    let reads = genome_reads(40, 83);
    let expected = Classifier::new(Arc::clone(&db)).classify_batch(&reads);
    let split = Arc::new(metacache::ShardedDatabase::round_robin(owned_database(), 2).unwrap());

    let shard_engines: Vec<ServingEngine> = split
        .shards()
        .iter()
        .map(|shard| test_engine(Arc::clone(shard)))
        .collect();
    let shard_servers: Vec<NetServer> = shard_engines
        .iter()
        .map(|engine| NetServer::bind_with(engine, "127.0.0.1:0", fast_config()).unwrap())
        .collect();
    let shard_handles: Vec<ServerHandle> = shard_servers.iter().map(|s| s.handle()).collect();

    // Chaos between the router and shard 1 only: the first three leg
    // connections are cut in various ways, then verbatim forwarding.
    let proxy = ChaosProxy::start(
        shard_handles[1].local_addr(),
        vec![
            ConnPlan::upstream(Fault::Truncate { after: 40 }),
            ConnPlan::downstream(Fault::Reset { after: 60 }),
            ConnPlan::downstream(Fault::Truncate { after: 21 }),
        ],
    )
    .unwrap();
    let leg_addrs = vec![shard_handles[0].local_addr(), proxy.local_addr()];
    let backend = mc_net::RouterBackend::new(
        Arc::new(db.metadata_view()),
        &leg_addrs,
        mc_net::RouterConfig {
            client: ClientConfig {
                connect_timeout: Some(Duration::from_secs(1)),
                request_timeout: Some(Duration::from_millis(500)),
                ..ClientConfig::default()
            },
            policy: RetryPolicy {
                max_retries: 15,
                base_delay: Duration::from_millis(2),
                max_delay: Duration::from_millis(20),
                seed: 19,
            },
        },
    )
    .unwrap();
    let router_engine = ServingEngine::new(
        backend,
        EngineConfig {
            workers: 2,
            queue_capacity: 4,
            batch_records: 8,
            session_max_in_flight: 0,
            ..EngineConfig::default()
        },
    );
    let router_server = NetServer::bind_with(&router_engine, "127.0.0.1:0", fast_config()).unwrap();
    let router_handle = router_server.handle();
    let router_addr = router_handle.local_addr();

    std::thread::scope(|scope| {
        let _guards: Vec<ShutdownOnDrop> =
            shard_handles.iter().cloned().map(ShutdownOnDrop).collect();
        let _router_guard = ShutdownOnDrop(router_handle.clone());
        for server in shard_servers {
            scope.spawn(move || server.run().unwrap());
        }
        let router_runner = scope.spawn(|| router_server.run().unwrap());

        let mut client = NetClient::connect_with(
            router_addr,
            ClientConfig {
                request_timeout: Some(Duration::from_secs(10)),
                ..ClientConfig::default()
            },
        )
        .unwrap();
        let got = client.classify_batch(&reads).unwrap();
        assert_eq!(got, expected, "chaos on one shard leg corrupted results");
        drop(client);
        proxy.shutdown();

        // Every leg drains: the router's own sessions and both shard
        // servers' sessions (the router workers' leg connections close with
        // the engine shutdown below; chaos-era leg sessions must already be
        // reclaimed by the shard servers' deadlines).
        assert!(
            wait_until(
                || router_engine.live_sessions() == 0,
                Duration::from_secs(5)
            ),
            "router sessions leaked"
        );
        router_handle.shutdown();
        router_runner.join().unwrap();
        for handle in &shard_handles {
            handle.shutdown();
        }
    });
    // The router workers' own leg connections close with the engine
    // shutdown; only then must the shard servers' sessions all be gone.
    router_engine.shutdown();
    for (i, engine) in shard_engines.iter().enumerate() {
        assert!(
            wait_until(|| engine.live_sessions() == 0, Duration::from_secs(5)),
            "shard {i} leaked sessions: {}",
            engine.live_sessions()
        );
    }
    for engine in shard_engines {
        engine.shutdown();
    }
}

/// A shard leg that is down past its retry policy must surface as a *typed*
/// Internal error on the routed session — never as a silently partial
/// merge — while the healthy shard server keeps serving untouched and all
/// sessions drain.
#[test]
fn dead_shard_leg_surfaces_typed_error_without_corrupting_healthy_leg() {
    let (db, _) = shared_database();
    let reads = genome_reads(16, 29);
    let split = Arc::new(metacache::ShardedDatabase::round_robin(owned_database(), 2).unwrap());

    let shard_engines: Vec<ServingEngine> = split
        .shards()
        .iter()
        .map(|shard| test_engine(Arc::clone(shard)))
        .collect();
    let shard_servers: Vec<NetServer> = shard_engines
        .iter()
        .map(|engine| NetServer::bind_with(engine, "127.0.0.1:0", fast_config()).unwrap())
        .collect();
    let shard_handles: Vec<ServerHandle> = shard_servers.iter().map(|s| s.handle()).collect();
    let shard_addrs: Vec<std::net::SocketAddr> =
        shard_handles.iter().map(|h| h.local_addr()).collect();

    let backend = mc_net::RouterBackend::new(
        Arc::new(db.metadata_view()),
        &shard_addrs,
        mc_net::RouterConfig {
            client: ClientConfig {
                connect_timeout: Some(Duration::from_millis(300)),
                request_timeout: Some(Duration::from_millis(400)),
                ..ClientConfig::default()
            },
            policy: RetryPolicy {
                max_retries: 2,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(5),
                seed: 5,
            },
        },
    )
    .unwrap();
    let router_engine = ServingEngine::new(
        backend,
        EngineConfig {
            workers: 2,
            queue_capacity: 4,
            batch_records: 8,
            session_max_in_flight: 0,
            ..EngineConfig::default()
        },
    );
    let router_server = NetServer::bind_with(&router_engine, "127.0.0.1:0", fast_config()).unwrap();
    let router_handle = router_server.handle();
    let router_addr = router_handle.local_addr();

    std::thread::scope(|scope| {
        let _guards: Vec<ShutdownOnDrop> =
            shard_handles.iter().cloned().map(ShutdownOnDrop).collect();
        let _router_guard = ShutdownOnDrop(router_handle.clone());
        let mut runners = Vec::new();
        for server in shard_servers {
            runners.push(scope.spawn(move || server.run().unwrap()));
        }
        let router_runner = scope.spawn(|| router_server.run().unwrap());

        // Kill shard 1 before any routed traffic: its leg can never connect.
        shard_handles[1].shutdown();
        runners.pop().unwrap().join().unwrap();

        let mut victim = NetClient::connect_with(
            router_addr,
            ClientConfig {
                request_timeout: Some(Duration::from_secs(10)),
                ..ClientConfig::default()
            },
        )
        .unwrap();
        match victim.classify_batch(&reads) {
            Err(NetError::Remote { code, .. }) => assert_eq!(
                code,
                ErrorCode::Internal,
                "an exhausted shard leg must surface as Internal"
            ),
            other => panic!("expected a typed Internal error, got {other:?}"),
        }
        drop(victim);

        // The healthy shard server is untouched: its candidate answers still
        // match its own in-process classifier exactly.
        let mut direct = NetClient::connect(shard_addrs[0]).unwrap();
        let classifier = Classifier::new(Arc::clone(&split.shards()[0]));
        let mut scratch = metacache::QueryScratch::new();
        let expected_cands: Vec<Vec<metacache::Candidate>> = reads
            .iter()
            .map(|r| {
                classifier
                    .candidates_with(r, &mut scratch)
                    .as_slice()
                    .to_vec()
            })
            .collect();
        assert_eq!(direct.candidates_batch(&reads).unwrap(), expected_cands);
        drop(direct);

        // Sessions drain on the router and the surviving shard.
        assert!(
            wait_until(
                || router_engine.live_sessions() == 0,
                Duration::from_secs(5)
            ),
            "router sessions leaked after the dead-leg error"
        );
        router_handle.shutdown();
        router_runner.join().unwrap();
        assert!(
            wait_until(
                || shard_engines[0].live_sessions() == 0,
                Duration::from_secs(5)
            ),
            "healthy shard leaked sessions"
        );
        shard_handles[0].shutdown();
        runners.pop().unwrap().join().unwrap();
    });
    router_engine.shutdown();
    for engine in shard_engines {
        engine.shutdown();
    }
}

/// Satellite: slow-reader backpressure. A peer that pipelines requests but
/// never reads its results must be bounded on every axis: the server's
/// outbound buffer stops growing at the high-water mark (the loop stops
/// reading — and admitting — more of its requests, withholding the
/// session's engine credits), the write-stall deadline tears the peer down
/// in bounded time, and a healthy concurrent client classifies untouched
/// throughout.
#[test]
fn stalled_reader_is_bounded_and_torn_down_without_collateral() {
    let (db, _) = shared_database();
    let engine = test_engine(Arc::clone(&db));
    let healthy_reads = genome_reads(30, 91);
    let expected = Classifier::new(Arc::clone(&db)).classify_batch(&healthy_reads);

    let config = ServerConfig {
        // Small pinned kernel buffers + a low high-water mark so the
        // backlog builds (and the gate engages) within test time.
        send_buffer: 8 * 1024,
        outbound_high_water: 16 * 1024,
        write_timeout: Some(Duration::from_millis(700)),
        ..ServerConfig::default()
    };
    let server = NetServer::bind_with(&engine, "127.0.0.1:0", config).unwrap();
    let handle = server.handle();
    let addr = handle.local_addr();

    // 40 pipelined requests x 500 reads: ~280 KiB of encoded results, far
    // past what the high-water mark plus both kernel buffers can absorb —
    // the gate must engage long before the tail of the burst is parsed.
    let victim_reads = genome_reads(500, 17);
    let total_reads = 40 * victim_reads.len() as u64;

    let server_stats = std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run());
        let _guard = ShutdownOnDrop(handle.clone());

        let victim = TcpStream::connect(addr).unwrap();
        // Shrink the victim's receive window too, so unread results pile
        // up server-side instead of in a roomy client-side kernel buffer.
        let _ = mc_net::poll::set_recv_buffer(&victim, 8 * 1024);
        let victim_reads = &victim_reads;
        let writer = scope.spawn(move || {
            let mut victim = victim;
            victim.write_all(&hello_bytes()).unwrap();
            protocol::read_frame(&mut victim).unwrap().unwrap();
            for id in 1..=40u64 {
                let frame = Frame::Classify {
                    request_id: id,
                    reads: victim_reads.clone(),
                }
                .encode()
                .unwrap();
                // The server stops reading once gated; later writes may
                // block until the write-stall teardown resets them.
                if victim.write_all(&frame).is_err() {
                    break;
                }
            }
            // Never read a byte; park until the server tears us down.
            victim
        });

        // While the victim is stalled, a healthy client is unaffected.
        let mut healthy = NetClient::connect(addr).unwrap();
        assert_eq!(healthy.classify_batch(&healthy_reads).unwrap(), expected);
        drop(healthy);

        // The stall deadline must reclaim the victim's session without any
        // help from the peer.
        assert!(
            wait_until(|| engine.live_sessions() == 0, Duration::from_secs(10)),
            "stalled reader's session was not reclaimed"
        );
        drop(writer.join().unwrap());
        handle.shutdown();
        runner.join().unwrap().unwrap()
    });
    assert!(
        server_stats.write_stalls >= 1,
        "the stalled reader must be counted as a write stall: {server_stats:?}"
    );
    assert!(
        server_stats.reads < total_reads,
        "backpressure never engaged: all {total_reads} stalled reads were served"
    );
    engine.shutdown();
}

/// Satellite: cross-request pipelining is bit-identical and correctly
/// delimited. N classify requests (of varying sizes, an empty one and an
/// interleaved Ping among them) written back-to-back in a single burst on
/// one connection come back as exactly one in-order response per request,
/// each carrying precisely its own reads' classifications — equal to the
/// in-process classifier's.
#[test]
fn pipelined_requests_return_bit_identical_per_request_results() {
    let (db, _) = shared_database();
    let engine = test_engine(Arc::clone(&db));
    let server = NetServer::bind(&engine, "127.0.0.1:0").unwrap();
    let handle = server.handle();
    let addr = handle.local_addr();

    let all_reads = genome_reads(120, 7);
    let classifier = Classifier::new(Arc::clone(&db));
    // Uneven request sizes (including one empty request) so any
    // misdelimited boundary shifts every later response.
    let sizes = [5usize, 17, 1, 40, 0, 33, 2, 22];
    assert_eq!(sizes.iter().sum::<usize>(), all_reads.len());

    std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run());
        let _guard = ShutdownOnDrop(handle.clone());

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&hello_bytes()).unwrap();
        protocol::read_frame(&mut stream).unwrap().unwrap();

        // One burst: all eight requests plus a Ping wedged mid-pipeline.
        let mut burst = Vec::new();
        let mut offset = 0;
        for (i, &n) in sizes.iter().enumerate() {
            let frame = Frame::Classify {
                request_id: (i + 1) as u64,
                reads: all_reads[offset..offset + n].to_vec(),
            };
            burst.extend_from_slice(&frame.encode().unwrap());
            offset += n;
            if i == 3 {
                burst.extend_from_slice(&Frame::Ping { nonce: 0xF00D }.encode().unwrap());
            }
        }
        stream.write_all(&burst).unwrap();

        let mut offset = 0;
        for (i, &n) in sizes.iter().enumerate() {
            let expected: Vec<protocol::ResultEntry> = classifier
                .classify_batch(&all_reads[offset..offset + n])
                .iter()
                .map(protocol::ResultEntry::from_classification)
                .collect();
            offset += n;
            match protocol::read_frame(&mut stream).unwrap().unwrap() {
                Frame::Results {
                    request_id,
                    entries,
                    ..
                } => {
                    assert_eq!(request_id, (i + 1) as u64, "responses out of order");
                    assert_eq!(
                        entries,
                        expected,
                        "request {} results differ from in-process",
                        i + 1
                    );
                }
                other => panic!("expected Results for request {}, got {other:?}", i + 1),
            }
            if i == 3 {
                match protocol::read_frame(&mut stream).unwrap().unwrap() {
                    Frame::Pong { nonce } => assert_eq!(nonce, 0xF00D),
                    other => panic!("expected the interleaved Pong, got {other:?}"),
                }
            }
        }
        drop(stream);
        assert!(
            wait_until(|| engine.live_sessions() == 0, Duration::from_secs(5)),
            "pipelined connection leaked its session"
        );
        handle.shutdown();
        runner.join().unwrap().unwrap();
    });
    engine.shutdown();
}

/// The shared two-species database grown by a third and fourth species —
/// the "next epoch" reference set of the reload tests. Target ids 0 and 1
/// and their taxa are identical to [`shared_database`], so both epochs can
/// classify the same reads (with possibly different answers, which is what
/// the per-generation oracles account for).
fn grown_database() -> Database {
    let mut taxonomy = Taxonomy::with_root();
    taxonomy.add_node(10, 1, Rank::Genus, "G").unwrap();
    taxonomy.add_node(100, 10, Rank::Species, "G a").unwrap();
    taxonomy.add_node(101, 10, Rank::Species, "G b").unwrap();
    taxonomy.add_node(102, 10, Rank::Species, "G c").unwrap();
    taxonomy.add_node(103, 10, Rank::Species, "G d").unwrap();
    let (_, genomes) = shared_database();
    let mut builder = CpuBuilder::new(MetaCacheConfig::for_tests(), taxonomy);
    builder
        .add_target(SequenceRecord::new("refA", genomes[0].clone()), 100)
        .unwrap();
    builder
        .add_target(SequenceRecord::new("refB", genomes[1].clone()), 101)
        .unwrap();
    builder
        .add_target(SequenceRecord::new("refC", make_seq(18_000, 63)), 102)
        .unwrap();
    builder
        .add_target(SequenceRecord::new("refD", make_seq(18_000, 64)), 103)
        .unwrap();
    builder.finish()
}

/// Satellite: reloads racing rude disconnects. Several peers fire `Reload`
/// and vanish without reading the ack — dropped cold, half-closed, or
/// mid-frame — while a healthy client streams classification requests.
/// The orphaned reload jobs still run (their acks land on dead
/// connections and are discarded), the healthy client stays bit-identical
/// to the single-epoch oracle of every generation it observes, the rude
/// sessions are reclaimed, and an orderly reload afterwards still works.
#[test]
fn reload_racing_rude_disconnects_leaves_server_serviceable() {
    let (db_a, _) = shared_database();
    let db_b = Arc::new(grown_database());
    let engine = test_engine(Arc::clone(&db_a));
    let flips = Arc::new(AtomicUsize::new(0));
    let hook: mc_net::ReloadHook = {
        let db_a = Arc::clone(&db_a);
        let db_b = Arc::clone(&db_b);
        let flips = Arc::clone(&flips);
        Arc::new(move |engine: &ServingEngine| {
            // Alternate the two reference sets: generation g >= 1 serves
            // the grown set when g is odd, the original when even.
            let db = if flips.fetch_add(1, Ordering::Relaxed).is_multiple_of(2) {
                Arc::clone(&db_b)
            } else {
                Arc::clone(&db_a)
            };
            Ok(engine.reload_backend(HostBackend::new(db)))
        })
    };
    let server = NetServer::bind_with(&engine, "127.0.0.1:0", fast_config())
        .unwrap()
        .with_reload(hook);
    let handle = server.handle();
    let addr = handle.local_addr();

    std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run());
        let _guard = ShutdownOnDrop(handle.clone());

        let rude = scope.spawn(move || {
            for k in 0..3 {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream.write_all(&hello_bytes()).unwrap();
                protocol::read_frame(&mut stream).unwrap().unwrap();
                stream.write_all(&Frame::Reload.encode().unwrap()).unwrap();
                match k {
                    0 => {} // dropped cold, the ack never read
                    1 => {
                        // half-close, then vanish
                        let _ = stream.shutdown(std::net::Shutdown::Write);
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    _ => {
                        // a torn frame prefix chases the reload out the door
                        let _ = stream.write_all(&[0x4d, 0x43, 0x01]);
                    }
                }
                drop(stream);
            }
        });

        let reads = genome_reads(32, 91);
        let (db_a, db_b) = (Arc::clone(&db_a), Arc::clone(&db_b));
        let healthy = scope.spawn(move || {
            let mut client = NetClient::connect_with(
                addr,
                ClientConfig {
                    request_timeout: Some(Duration::from_secs(10)),
                    ..ClientConfig::default()
                },
            )
            .unwrap();
            for round in 0..6 {
                let got = client.classify_batch(&reads).unwrap();
                let generation = client
                    .database_generation()
                    .expect("a v5 server must tag its results");
                let oracle = if generation % 2 == 1 { &db_b } else { &db_a };
                let want = Classifier::new(Arc::clone(oracle)).classify_batch(&reads);
                assert_eq!(
                    got, want,
                    "round {round} diverged from the generation-{generation} oracle"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        rude.join().unwrap();
        healthy.join().unwrap();

        // The storm is over: an orderly reload still round-trips, and its
        // ack reports the engine's real generation.
        let mut client = NetClient::connect(addr).unwrap();
        let generation = client.reload().unwrap();
        assert_eq!(generation, engine.generation());
        drop(client);
        assert!(
            wait_until(|| engine.live_sessions() == 0, Duration::from_secs(5)),
            "rude reload connections leaked sessions"
        );
        handle.shutdown();
        runner.join().unwrap().unwrap();
    });
    engine.shutdown();
}

/// Satellite: a `Reload` wedged into the middle of a pipelined burst.
/// Responses keep strict submission order, the generation tag flips
/// somewhere around the ack — but **never inside one request**: a request
/// whose engine batches straddle the swap is replayed entirely on the new
/// epoch, so every response is bit-identical to a single-generation
/// oracle.
#[test]
fn reload_mid_pipelined_burst_never_splits_a_request_across_generations() {
    let (db_a, _) = shared_database();
    let db_b = Arc::new(grown_database());
    let engine = test_engine(Arc::clone(&db_a));
    let hook: mc_net::ReloadHook = {
        let db_b = Arc::clone(&db_b);
        Arc::new(move |engine: &ServingEngine| {
            Ok(engine.reload_backend(HostBackend::new(Arc::clone(&db_b))))
        })
    };
    let server = NetServer::bind_with(&engine, "127.0.0.1:0", fast_config())
        .unwrap()
        .with_reload(hook);
    let handle = server.handle();
    let addr = handle.local_addr();

    let all_reads = genome_reads(120, 47);
    // Six requests of 20 reads each: three engine batches per request
    // (batch_records is 8), so a request caught mid-swap *must* replay to
    // come back single-generation.
    let sizes = [20usize; 6];

    std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run());
        let _guard = ShutdownOnDrop(handle.clone());

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&hello_bytes()).unwrap();
        protocol::read_frame(&mut stream).unwrap().unwrap();

        // One burst: requests 1-3, the reload, requests 4-6.
        let mut burst = Vec::new();
        let mut offset = 0;
        for (i, &n) in sizes.iter().enumerate() {
            let frame = Frame::Classify {
                request_id: (i + 1) as u64,
                reads: all_reads[offset..offset + n].to_vec(),
            };
            burst.extend_from_slice(&frame.encode().unwrap());
            offset += n;
            if i == 2 {
                burst.extend_from_slice(&Frame::Reload.encode().unwrap());
            }
        }
        stream.write_all(&burst).unwrap();

        let mut offset = 0;
        for (i, &n) in sizes.iter().enumerate() {
            let slice = &all_reads[offset..offset + n];
            offset += n;
            match protocol::read_frame(&mut stream).unwrap().unwrap() {
                Frame::Results {
                    request_id,
                    entries,
                    generation,
                } => {
                    assert_eq!(request_id, (i + 1) as u64, "responses out of order");
                    let generation = generation.expect("a v5 response must carry a generation tag");
                    let oracle = match generation {
                        0 => &db_a,
                        1 => &db_b,
                        g => panic!("request {} reported unknown generation {g}", i + 1),
                    };
                    let expected: Vec<protocol::ResultEntry> = Classifier::new(Arc::clone(oracle))
                        .classify_batch(slice)
                        .iter()
                        .map(protocol::ResultEntry::from_classification)
                        .collect();
                    assert_eq!(
                        entries,
                        expected,
                        "request {} is not bit-identical to its generation-{generation} \
                         oracle — torn across the swap?",
                        i + 1
                    );
                }
                other => panic!("expected Results for request {}, got {other:?}", i + 1),
            }
            if i == 2 {
                match protocol::read_frame(&mut stream).unwrap().unwrap() {
                    Frame::ReloadAck { generation } => assert_eq!(generation, 1),
                    other => panic!("expected the pipelined ReloadAck, got {other:?}"),
                }
            }
        }
        drop(stream);
        assert!(
            wait_until(|| engine.live_sessions() == 0, Duration::from_secs(5)),
            "pipelined reload connection leaked its session"
        );
        handle.shutdown();
        runner.join().unwrap().unwrap();
    });
    assert_eq!(engine.generation(), 1);
    engine.shutdown();
}

/// Satellite: a live reference upgrade sweeping a routed topology while
/// one shard leg is wrecked mid-swap. The sweep follows the router-first
/// order (`mc-serve route` reload semantics): router metadata swaps, then
/// each shard server. The wrecked leg's reconnects are cut exactly in the
/// swap window; the router's per-leg retries plus its generation-agreement
/// re-query must converge — and **no read may ever classify as a torn
/// mixed-epoch merge**: every answer is bit-identical to one of the two
/// epoch oracles, and after the sweep the router answers exactly as the
/// new epoch.
#[test]
fn routed_reload_with_wrecked_leg_converges_without_torn_merge() {
    let (db, _) = shared_database();
    let grown = grown_database();
    let meta1 = Arc::new(grown.metadata_view());
    let oracle1_db = Arc::new(grown_database());
    let split0 = Arc::new(metacache::ShardedDatabase::round_robin(owned_database(), 2).unwrap());
    let split1 = Arc::new(metacache::ShardedDatabase::round_robin(grown, 2).unwrap());

    let shard_engines: Vec<ServingEngine> = split0
        .shards()
        .iter()
        .map(|shard| test_engine(Arc::clone(shard)))
        .collect();
    let shard_servers: Vec<NetServer> = shard_engines
        .iter()
        .enumerate()
        .map(|(i, engine)| {
            let next = Arc::clone(&split1.shards()[i]);
            let hook: mc_net::ReloadHook = Arc::new(move |engine: &ServingEngine| {
                Ok(engine.reload_backend(HostBackend::new(Arc::clone(&next))))
            });
            NetServer::bind_with(engine, "127.0.0.1:0", fast_config())
                .unwrap()
                .with_reload(hook)
        })
        .collect();
    let shard_handles: Vec<ServerHandle> = shard_servers.iter().map(|s| s.handle()).collect();

    // Chaos between the router and shard 1: the two initial leg
    // connections (one per router worker) pass through untouched; the
    // *reconnects* — which happen exactly when the router's reload mints
    // new workers mid-swap — are cut, then verbatim forwarding.
    let proxy = ChaosProxy::start(
        shard_handles[1].local_addr(),
        vec![
            PASSTHROUGH,
            PASSTHROUGH,
            ConnPlan::downstream(Fault::Reset { after: 48 }),
            ConnPlan::downstream(Fault::Truncate { after: 25 }),
        ],
    )
    .unwrap();
    let leg_addrs = vec![shard_handles[0].local_addr(), proxy.local_addr()];
    let router_config = mc_net::RouterConfig {
        client: ClientConfig {
            connect_timeout: Some(Duration::from_secs(1)),
            request_timeout: Some(Duration::from_millis(500)),
            ..ClientConfig::default()
        },
        policy: RetryPolicy {
            max_retries: 15,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(20),
            seed: 23,
        },
    };
    let backend = mc_net::RouterBackend::new(
        Arc::new(db.metadata_view()),
        &leg_addrs,
        router_config.clone(),
    )
    .unwrap();
    let router_engine = ServingEngine::new(
        backend,
        EngineConfig {
            workers: 2,
            queue_capacity: 4,
            batch_records: 8,
            session_max_in_flight: 0,
            ..EngineConfig::default()
        },
    );
    let router_server = NetServer::bind_with(&router_engine, "127.0.0.1:0", fast_config()).unwrap();
    let router_handle = router_server.handle();
    let router_addr = router_handle.local_addr();

    let reads = genome_reads(24, 53);
    let want0 = Classifier::new(Arc::clone(&db)).classify_batch(&reads);
    let want1 = Classifier::new(Arc::clone(&oracle1_db)).classify_batch(&reads);

    std::thread::scope(|scope| {
        let _guards: Vec<ShutdownOnDrop> =
            shard_handles.iter().cloned().map(ShutdownOnDrop).collect();
        let _router_guard = ShutdownOnDrop(router_handle.clone());
        for server in shard_servers {
            scope.spawn(move || server.run().unwrap());
        }
        let router_runner = scope.spawn(|| router_server.run().unwrap());

        let streamer = {
            let (reads, want0, want1) = (reads.clone(), want0.clone(), want1.clone());
            scope.spawn(move || {
                let connect = || {
                    NetClient::connect_with(
                        router_addr,
                        ClientConfig {
                            request_timeout: Some(Duration::from_secs(10)),
                            ..ClientConfig::default()
                        },
                    )
                    .unwrap()
                };
                let mut client = connect();
                for round in 0..10 {
                    // A routed worker torn down past its retries surfaces a
                    // typed Internal error (PR 6 semantics); tolerate it and
                    // reconnect — but a *wrong answer* is never tolerated.
                    let got = match client.classify_batch(&reads) {
                        Ok(got) => got,
                        Err(_) => {
                            client = connect();
                            continue;
                        }
                    };
                    for (r, got) in got.iter().enumerate() {
                        assert!(
                            *got == want0[r] || *got == want1[r],
                            "round {round} read {r}: torn mixed-epoch merge \
                             (matches neither epoch oracle)"
                        );
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            })
        };

        // Let pre-swap traffic flow, then sweep the reload through the
        // topology in router-first order while the proxy wrecks shard 1's
        // leg reconnects.
        std::thread::sleep(Duration::from_millis(30));
        let new_backend =
            mc_net::RouterBackend::new(Arc::clone(&meta1), &leg_addrs, router_config).unwrap();
        assert_eq!(router_engine.reload_backend(new_backend), 1);
        let mut s0 = NetClient::connect(shard_handles[0].local_addr()).unwrap();
        assert_eq!(s0.reload().unwrap(), 1);
        drop(s0);
        let mut s1 = NetClient::connect(shard_handles[1].local_addr()).unwrap();
        assert_eq!(s1.reload().unwrap(), 1);
        drop(s1);

        streamer.join().unwrap();

        // After the sweep: the routed answer is exactly the new epoch's.
        let mut client = NetClient::connect_with(
            router_addr,
            ClientConfig {
                request_timeout: Some(Duration::from_secs(10)),
                ..ClientConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            client.classify_batch(&reads).unwrap(),
            want1,
            "router did not converge to the new epoch"
        );
        assert_eq!(client.database_generation(), Some(1));
        drop(client);
        proxy.shutdown();

        assert!(
            wait_until(
                || router_engine.live_sessions() == 0,
                Duration::from_secs(5)
            ),
            "router sessions leaked across the reload sweep"
        );
        router_handle.shutdown();
        router_runner.join().unwrap();
        for handle in &shard_handles {
            handle.shutdown();
        }
    });
    router_engine.shutdown();
    for (i, engine) in shard_engines.iter().enumerate() {
        assert!(
            wait_until(|| engine.live_sessions() == 0, Duration::from_secs(5)),
            "shard {i} leaked sessions: {}",
            engine.live_sessions()
        );
    }
    for engine in shard_engines {
        engine.shutdown();
    }
}
