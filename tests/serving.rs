//! Integration tests of the persistent serving engine: many concurrent
//! sessions over one shared `Arc<Database>` and one long-lived worker pool,
//! each bit-identical (including order) to `Classifier::classify_batch`;
//! panic isolation (a panicking sink or a panicking backend worker never
//! deadlocks other sessions); graceful shutdown with idle drain.

use std::sync::Arc;

use mc_gpu_sim::MultiGpuSystem;
use mc_seqio::SequenceRecord;
use mc_taxonomy::{Rank, Taxonomy};
use metacache::backend::{Backend, BackendWorker, HostBackend};
use metacache::build::{CpuBuilder, GpuBuilder};
use metacache::classify::Classification;
use metacache::query::Classifier;
use metacache::serving::{EngineConfig, ServingEngine, SessionConfig};
use metacache::{Database, MetaCacheConfig};

fn make_seq(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b"ACGT"[(state >> 33) as usize % 4]
        })
        .collect()
}

/// One shared two-species database plus its genomes.
fn shared_database() -> (Arc<Database>, &'static [Vec<u8>]) {
    use std::sync::OnceLock;
    static DB: OnceLock<(Arc<Database>, Vec<Vec<u8>>)> = OnceLock::new();
    let (db, genomes) = DB.get_or_init(|| {
        let mut taxonomy = Taxonomy::with_root();
        taxonomy.add_node(10, 1, Rank::Genus, "G").unwrap();
        taxonomy.add_node(100, 10, Rank::Species, "G a").unwrap();
        taxonomy.add_node(101, 10, Rank::Species, "G b").unwrap();
        let genomes = vec![make_seq(18_000, 31), make_seq(18_000, 32)];
        let mut builder = CpuBuilder::new(MetaCacheConfig::for_tests(), taxonomy);
        builder
            .add_target(SequenceRecord::new("refA", genomes[0].clone()), 100)
            .unwrap();
        builder
            .add_target(SequenceRecord::new("refB", genomes[1].clone()), 101)
            .unwrap();
        (Arc::new(builder.finish()), genomes)
    });
    (Arc::clone(db), genomes)
}

/// A mixed per-session read set (genome reads, foreign reads, short reads,
/// empty records), deterministically derived from `seed`.
fn mixed_reads(n: usize, seed: u64) -> Vec<SequenceRecord> {
    let (_, genomes) = shared_database();
    let mut state = seed | 1;
    (0..n)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match (state >> 33) % 10 {
                0 => SequenceRecord::new(format!("empty{i}"), Vec::new()),
                1 => SequenceRecord::new(format!("tiny{i}"), genomes[0][..6].to_vec()),
                2 => SequenceRecord::new(format!("alien{i}"), make_seq(130, state)),
                _ => {
                    let genome = &genomes[i % 2];
                    let offset = (state as usize >> 7) % (genome.len() - 150);
                    SequenceRecord::new(
                        format!("s{seed}_r{i}"),
                        genome[offset..offset + 150].to_vec(),
                    )
                }
            }
        })
        .collect()
}

/// The acceptance criterion: one engine, ≥ 4 concurrent sessions with
/// interleaving batches, every session's results bit-identical (including
/// order) to `classify_batch` on its own reads.
#[test]
fn concurrent_sessions_are_bit_identical_to_classify_batch() {
    let (db, _) = shared_database();
    let engine = ServingEngine::host_with_config(
        Arc::clone(&db),
        EngineConfig {
            workers: 4,
            queue_capacity: 2,
            batch_records: 5, // small batches force interleaving across sessions
            session_max_in_flight: 0,
            ..EngineConfig::default()
        },
    );
    let sessions = 6;
    let classifier = Classifier::new(Arc::clone(&db));
    let expected: Vec<(Vec<SequenceRecord>, Vec<Classification>)> = (0..sessions)
        .map(|s| {
            let reads = mixed_reads(60 + s * 7, 1000 + s as u64);
            let want = classifier.classify_batch(&reads);
            (reads, want)
        })
        .collect();

    std::thread::scope(|scope| {
        for (s, (reads, want)) in expected.iter().enumerate() {
            let engine = &engine;
            scope.spawn(move || {
                let mut session = engine.session();
                // Stream twice through the same warm session: results must be
                // identical both times and in exact input order.
                for round in 0..2 {
                    let (got, summary) = session.classify_iter(reads.iter().cloned());
                    assert_eq!(&got, want, "session {s} round {round} diverged");
                    assert_eq!(summary.records, reads.len() as u64);
                    assert!(
                        summary.peak_resident_batches
                            <= engine.config().effective_session_in_flight() as u64,
                        "session {s} exceeded its resident-batch bound"
                    );
                }
            });
        }
    });

    let stats = engine.shutdown();
    assert_eq!(stats.sessions_opened, sessions as u64);
    let total: u64 = expected.iter().map(|(r, _)| 2 * r.len() as u64).sum();
    assert_eq!(stats.records_classified, total);
    assert_eq!(stats.worker_panics, 0);
}

/// A sink that panics kills only its own session: concurrent sessions finish
/// with correct results, and the engine accepts new sessions afterwards.
#[test]
fn panicking_sink_does_not_deadlock_other_sessions() {
    let (db, _) = shared_database();
    let engine = ServingEngine::host_with_config(
        Arc::clone(&db),
        EngineConfig {
            workers: 2,
            queue_capacity: 1,
            batch_records: 1, // more batches than credits: the panicking
            // session holds in-flight work when it dies
            session_max_in_flight: 2,
            ..EngineConfig::default()
        },
    );
    let reads = mixed_reads(40, 77);
    let expected = Classifier::new(Arc::clone(&db)).classify_batch(&reads);

    std::thread::scope(|scope| {
        // The victim: panics in its sink mid-stream.
        let engine_ref = &engine;
        let reads_ref = &reads;
        let expected_ref = &expected;
        let victim = scope.spawn(move || {
            let mut session = engine_ref.session();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                session.classify_stream(
                    reads_ref
                        .iter()
                        .cloned()
                        .map(Ok::<_, std::convert::Infallible>),
                    |index, _, _| {
                        if index == 5 {
                            panic!("sink failure");
                        }
                    },
                )
            }));
            assert!(result.is_err(), "sink panic must propagate to its caller");
            // Reusing the SAME session after the caught panic must discard
            // the abandoned stream's in-flight batches — the new stream's
            // results may not be prepended with stale ones.
            let (got, summary) = session.classify_iter(reads_ref.iter().cloned());
            assert_eq!(
                &got, expected_ref,
                "stale batches leaked into reused session"
            );
            assert_eq!(summary.records, reads_ref.len() as u64);
        });
        // Healthy concurrent sessions complete with correct results.
        for _ in 0..3 {
            let expected = &expected;
            scope.spawn(move || {
                let mut session = engine_ref.session();
                let (got, _) = session.classify_iter(reads_ref.iter().cloned());
                assert_eq!(&got, expected);
            });
        }
        victim.join().unwrap();
    });

    // The engine is still healthy for new sessions.
    let mut session = engine.session();
    let (got, _) = session.classify_iter(reads.iter().cloned());
    assert_eq!(got, Classifier::new(Arc::clone(&db)).classify_batch(&reads));
    drop(session);
    engine.shutdown();
}

/// A backend whose workers panic on a marked record — exercises worker
/// replacement and per-session failure reporting through the public trait,
/// over any inner backend (host, sharded, …).
struct FaultInjectingBackend<B> {
    inner: B,
}

struct FaultInjectingWorker<'b> {
    inner: Box<dyn BackendWorker + 'b>,
}

impl<B: Backend> Backend for FaultInjectingBackend<B> {
    fn database(&self) -> &Database {
        self.inner.database()
    }

    fn name(&self) -> &'static str {
        "fault-injecting"
    }

    fn worker(&self) -> Box<dyn BackendWorker + '_> {
        Box::new(FaultInjectingWorker {
            inner: self.inner.worker(),
        })
    }
}

impl BackendWorker for FaultInjectingWorker<'_> {
    fn classify_batch_into(&mut self, records: &[SequenceRecord], out: &mut Vec<Classification>) {
        if records.iter().any(|r| r.header.starts_with("poison")) {
            panic!("injected backend fault");
        }
        self.inner.classify_batch_into(records, out);
    }
}

/// A panicking backend worker is replaced, the failure surfaces in the
/// owning session (as a panic on its thread), other sessions keep working,
/// and the engine records the replacement.
#[test]
fn worker_panic_is_isolated_and_reported() {
    let (db, _) = shared_database();
    let engine = ServingEngine::new(
        FaultInjectingBackend {
            inner: HostBackend::new(Arc::clone(&db)),
        },
        EngineConfig {
            workers: 2,
            queue_capacity: 2,
            batch_records: 4,
            session_max_in_flight: 0,
            ..EngineConfig::default()
        },
    );
    let clean = mixed_reads(30, 5);
    let expected = Classifier::new(Arc::clone(&db)).classify_batch(&clean);

    // Suppress the injected panic's default backtrace spam.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    std::thread::scope(|scope| {
        let engine_ref = &engine;
        let clean_ref = &clean;
        let expected_for_victim = &expected;
        scope.spawn(move || {
            let mut session = engine_ref.session();
            let mut poisoned = clean_ref.clone();
            poisoned[12] = SequenceRecord::new("poison", clean_ref[12].sequence.clone());
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                session.classify_batch(&poisoned)
            }));
            assert!(result.is_err(), "worker fault must surface in its session");
            // The same session recovers: the failed request's leftovers are
            // discarded and a clean request classifies correctly.
            let got = session.classify_batch(clean_ref);
            assert_eq!(
                &got, expected_for_victim,
                "reused session after worker fault returned stale results"
            );
        });
        let expected_ref = &expected;
        scope.spawn(move || {
            let mut session = engine_ref.session();
            let (got, _) = session.classify_iter(clean_ref.iter().cloned());
            assert_eq!(
                &got, expected_ref,
                "healthy session affected by worker fault"
            );
        });
    });
    std::panic::set_hook(prev_hook);

    // The pool replaced the worker and keeps serving.
    let mut session = engine.session();
    let (got, _) = session.classify_iter(clean.iter().cloned());
    assert_eq!(got, expected);
    drop(session);
    let stats = engine.shutdown();
    assert!(stats.worker_panics >= 1, "worker replacement not recorded");
}

/// `shutdown()` drains everything already submitted (idle drain): the
/// returned stats account for every record of every completed session.
#[test]
fn shutdown_drains_in_flight_work() {
    let (db, _) = shared_database();
    let engine = ServingEngine::host_with_config(
        Arc::clone(&db),
        EngineConfig {
            workers: 3,
            queue_capacity: 2,
            batch_records: 2,
            session_max_in_flight: 0,
            ..EngineConfig::default()
        },
    );
    let reads = mixed_reads(50, 9);
    let expected = Classifier::new(Arc::clone(&db)).classify_batch(&reads);
    let mut session = engine.session();
    let (got, summary) = session.classify_iter(reads.iter().cloned());
    assert_eq!(got, expected);
    drop(session);
    let stats = engine.shutdown();
    assert_eq!(stats.records_classified, reads.len() as u64);
    assert_eq!(stats.batches_classified, summary.batches);
    assert_eq!(stats.workers, 3);
}

/// The GPU backend behind the engine produces the same classifications as
/// the host path, with batches issued round-robin across devices.
#[test]
fn gpu_engine_matches_host_engine_and_classify_batch() {
    let (_, genomes) = shared_database();
    // A GPU-built (partitioned, multi-bucket) database on 2 devices.
    let mut taxonomy = Taxonomy::with_root();
    taxonomy.add_node(10, 1, Rank::Genus, "G").unwrap();
    taxonomy.add_node(100, 10, Rank::Species, "G a").unwrap();
    taxonomy.add_node(101, 10, Rank::Species, "G b").unwrap();
    let system = Arc::new(MultiGpuSystem::dgx1(2));
    let mut builder = GpuBuilder::new(MetaCacheConfig::for_tests(), taxonomy, &system, 200_000)
        .expect("tables fit");
    builder
        .add_target(SequenceRecord::new("refA", genomes[0].clone()), 100)
        .unwrap();
    builder
        .add_target(SequenceRecord::new("refB", genomes[1].clone()), 101)
        .unwrap();
    let db = Arc::new(builder.finish());
    let reads = mixed_reads(45, 123);
    let expected = Classifier::new(Arc::clone(&db)).classify_batch(&reads);

    let engine = ServingEngine::gpu(
        Arc::clone(&db),
        Arc::clone(&system),
        EngineConfig {
            workers: 2,
            queue_capacity: 2,
            batch_records: 6,
            session_max_in_flight: 0,
            ..EngineConfig::default()
        },
    );
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let engine = &engine;
            let reads = &reads;
            let expected = &expected;
            scope.spawn(move || {
                let mut session = engine.session();
                let (got, _) = session.classify_iter(reads.iter().cloned());
                assert_eq!(&got, expected);
            });
        }
    });
    assert_eq!(engine.backend_name(), "gpu-sim");
    engine.shutdown();
}

/// Sessions opened with explicit per-session overrides keep their own
/// bounds; many short requests through one session reuse the warm pool.
#[test]
fn per_session_overrides_and_request_reuse() {
    let (db, _) = shared_database();
    let engine = ServingEngine::host(Arc::clone(&db));
    let mut session = engine.session_with(SessionConfig {
        batch_records: 2,
        max_in_flight: 1,
        ..SessionConfig::default()
    });
    let reads = mixed_reads(20, 40);
    let classifier = Classifier::new(Arc::clone(&db));
    for chunk in reads.chunks(6) {
        let got = session.classify_batch(chunk);
        assert_eq!(got, classifier.classify_batch(chunk));
    }
    // max_in_flight 1 serialises batches: peak must be exactly 1.
    let (_, summary) = session.classify_iter(reads.iter().cloned());
    assert_eq!(summary.peak_resident_batches, 1);
}

/// Rebuild the shared fixture database as an owned value (deterministic, so
/// bit-identical to [`shared_database`]'s) — the shard split consumes it.
fn owned_database() -> Database {
    let mut taxonomy = Taxonomy::with_root();
    taxonomy.add_node(10, 1, Rank::Genus, "G").unwrap();
    taxonomy.add_node(100, 10, Rank::Species, "G a").unwrap();
    taxonomy.add_node(101, 10, Rank::Species, "G b").unwrap();
    let (_, genomes) = shared_database();
    let mut builder = CpuBuilder::new(MetaCacheConfig::for_tests(), taxonomy);
    builder
        .add_target(SequenceRecord::new("refA", genomes[0].clone()), 100)
        .unwrap();
    builder
        .add_target(SequenceRecord::new("refB", genomes[1].clone()), 101)
        .unwrap();
    builder.finish()
}

/// The sharded backend behind the engine mirrors the GPU-parity test: N
/// concurrent sessions over a scatter-gather backend are bit-identical to
/// the unsharded in-process classifier.
#[test]
fn sharded_engine_matches_unsharded_sessions() {
    let (db, _) = shared_database();
    let reads = mixed_reads(45, 321);
    let expected = Classifier::new(Arc::clone(&db)).classify_batch(&reads);
    let split = Arc::new(metacache::ShardedDatabase::round_robin(owned_database(), 2).unwrap());

    let engine = ServingEngine::sharded(
        Arc::clone(&split),
        EngineConfig {
            workers: 2,
            queue_capacity: 2,
            batch_records: 6,
            session_max_in_flight: 0,
            ..EngineConfig::default()
        },
    );
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let engine = &engine;
            let reads = &reads;
            let expected = &expected;
            scope.spawn(move || {
                let mut session = engine.session();
                let (got, _) = session.classify_iter(reads.iter().cloned());
                assert_eq!(&got, expected);
            });
        }
    });
    assert_eq!(engine.backend_name(), "sharded-host");
    // The engine's serving metadata is the table-free view: full targets,
    // no partitions.
    let epoch = engine.pin_epoch();
    assert_eq!(epoch.database().target_count(), 2);
    assert_eq!(epoch.database().partition_count(), 0);
    let stats = engine.shutdown();
    assert_eq!(stats.worker_panics, 0);
}

/// A panicking shard worker is isolated exactly like a panicking host
/// worker: the failure surfaces in the owning session, the worker is
/// replaced, concurrent sessions and later requests are unaffected.
#[test]
fn sharded_worker_panic_is_isolated() {
    let (db, _) = shared_database();
    let clean = mixed_reads(30, 15);
    let expected = Classifier::new(Arc::clone(&db)).classify_batch(&clean);
    let split = Arc::new(metacache::ShardedDatabase::round_robin(owned_database(), 3).unwrap());

    let engine = ServingEngine::new(
        FaultInjectingBackend {
            inner: metacache::ShardedBackend::new(split),
        },
        EngineConfig {
            workers: 2,
            queue_capacity: 2,
            batch_records: 4,
            session_max_in_flight: 0,
            ..EngineConfig::default()
        },
    );

    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    std::thread::scope(|scope| {
        let engine_ref = &engine;
        let clean_ref = &clean;
        let expected_for_victim = &expected;
        scope.spawn(move || {
            let mut session = engine_ref.session();
            let mut poisoned = clean_ref.clone();
            poisoned[7] = SequenceRecord::new("poison", clean_ref[7].sequence.clone());
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                session.classify_batch(&poisoned)
            }));
            assert!(result.is_err(), "shard worker fault must surface");
            let got = session.classify_batch(clean_ref);
            assert_eq!(&got, expected_for_victim, "stale results after fault");
        });
        let expected_ref = &expected;
        scope.spawn(move || {
            let mut session = engine_ref.session();
            let (got, _) = session.classify_iter(clean_ref.iter().cloned());
            assert_eq!(&got, expected_ref, "healthy session affected");
        });
    });
    std::panic::set_hook(prev_hook);

    let mut session = engine.session();
    let (got, _) = session.classify_iter(clean.iter().cloned());
    assert_eq!(got, expected);
    drop(session);
    let stats = engine.shutdown();
    assert!(stats.worker_panics >= 1, "replacement not recorded");
}
