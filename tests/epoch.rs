//! Live-update battery: incremental reference insertion and epoch-swapped
//! serving.
//!
//! Two property suites prove the **data** half of live updates — inserting
//! targets into an already-built (or loaded/condensed) database is
//! bit-identical to rebuilding from the extended reference set — and a set
//! of concurrency tests proves the **serving** half: `reload_backend`
//! swaps epochs with zero downtime, every completed batch is bit-identical
//! to a single-epoch oracle for its reported generation, and the old
//! `Arc<Database>` is actually freed once its last in-flight batch drains.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use mc_seqio::SequenceRecord;
use mc_taxonomy::{Rank, TaxonId, Taxonomy};
use metacache::build::CpuBuilder;
use metacache::query::Classifier;
use metacache::serialize;
use metacache::serving::{CompletedBatch, EngineConfig, ServingEngine, SessionConfig};
use metacache::{
    Database, DatabaseDelta, HostBackend, MetaCacheConfig, ShardedBackend, ShardedDatabase,
};

fn make_seq(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b"ACGT"[(state >> 33) as usize % 4]
        })
        .collect()
}

/// One reference target: name, genome, species taxon.
#[derive(Clone)]
struct RefSpec {
    name: String,
    genome: Vec<u8>,
    taxon: TaxonId,
}

/// Deterministic reference set: `n` genomes derived from `seed`, one
/// species each (ids `100 + base_species`, `100 + base_species + 1`, …).
fn ref_set(n: usize, base_species: usize, seed: u64) -> Vec<RefSpec> {
    (0..n)
        .map(|i| {
            let g_seed = seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(i as u64 + 1);
            let len = 2_500 + (g_seed % 2_000) as usize;
            RefSpec {
                name: format!("ref{}", base_species + i),
                genome: make_seq(len, g_seed),
                taxon: 100 + (base_species + i) as TaxonId,
            }
        })
        .collect()
}

/// Taxonomy with one genus and the given species ids under it.
fn taxonomy_for(species: &[TaxonId]) -> Taxonomy {
    let mut taxonomy = Taxonomy::with_root();
    taxonomy.add_node(10, 1, Rank::Genus, "G").unwrap();
    for &s in species {
        taxonomy
            .add_node(s, 10, Rank::Species, format!("G sp{s}"))
            .unwrap();
    }
    taxonomy
}

/// Fresh single-pass build over `targets` in order, with `species`
/// pre-registered.
fn build_db(species: &[TaxonId], targets: &[RefSpec]) -> Database {
    let mut builder = CpuBuilder::new(MetaCacheConfig::for_tests(), taxonomy_for(species));
    for t in targets {
        builder
            .add_target(
                SequenceRecord::new(t.name.clone(), t.genome.clone()),
                t.taxon,
            )
            .unwrap();
    }
    builder.finish()
}

/// Messy read set over `genomes`: genome substrings plus empty, tiny and
/// alien reads, deterministically derived from `seed`.
fn messy_reads(genomes: &[&[u8]], n: usize, seed: u64) -> Vec<SequenceRecord> {
    let mut state = seed | 1;
    (0..n)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match (state >> 33) % 10 {
                0 => SequenceRecord::new(format!("empty{i}"), Vec::new()),
                1 => SequenceRecord::new(format!("tiny{i}"), genomes[0][..6].to_vec()),
                2 => SequenceRecord::new(format!("alien{i}"), make_seq(130, state)),
                _ => {
                    let genome = genomes[i % genomes.len()];
                    let offset = (state as usize >> 7) % (genome.len() - 150);
                    SequenceRecord::new(
                        format!("s{seed}_r{i}"),
                        genome[offset..offset + 150].to_vec(),
                    )
                }
            }
        })
        .collect()
}

/// In-place Fisher–Yates driven by an LCG — a deterministic "random
/// insertion order" for the second wave of targets.
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut state = seed | 1;
    for i in (1..items.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        items.swap(i, (state >> 33) as usize % (i + 1));
    }
}

fn species_of(targets: &[RefSpec]) -> Vec<TaxonId> {
    targets.iter().map(|t| t.taxon).collect()
}

/// Messy reads over both reference waves.
fn equivalence_reads(t1: &[RefSpec], t2: &[RefSpec], n: usize, seed: u64) -> Vec<SequenceRecord> {
    let genomes: Vec<&[u8]> = t1
        .iter()
        .chain(t2.iter())
        .map(|t| t.genome.as_slice())
        .collect();
    messy_reads(&genomes, n, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole data property: inserting a second reference wave into a
    /// database built from the first is bit-identical to a single fresh
    /// build over both waves — for random reference sets, random insertion
    /// orders and both the `insert_target` and `apply_delta` paths (the
    /// delta path also adds the second wave's *taxa* post-build).
    #[test]
    fn incremental_insert_matches_fresh_build(
        n1 in 1usize..4,
        n2 in 1usize..4,
        seed in any::<u64>(),
        order_seed in any::<u64>(),
        reads_seed in any::<u64>(),
        use_delta in any::<bool>(),
    ) {
        let t1 = ref_set(n1, 0, seed);
        let mut t2 = ref_set(n2, n1, seed.wrapping_add(0xdead));
        shuffle(&mut t2, order_seed);

        let all: Vec<RefSpec> = t1.iter().chain(t2.iter()).cloned().collect();
        let fresh = build_db(&species_of(&all), &all);

        let incremental = if use_delta {
            // Second-wave taxa are *not* pre-registered: the delta carries
            // them, so taxonomy extension and target insertion land as one
            // new database state.
            let mut db = build_db(&species_of(&t1), &t1);
            let mut delta = DatabaseDelta::new();
            for t in &t2 {
                delta.add_taxon(t.taxon, 10, Rank::Species, format!("G sp{}", t.taxon));
            }
            for t in &t2 {
                delta.add_target(
                    SequenceRecord::new(t.name.clone(), t.genome.clone()),
                    t.taxon,
                );
            }
            let stats = db.apply_delta(delta).unwrap();
            prop_assert_eq!(stats.targets_added, t2.len());
            db
        } else {
            let mut db = build_db(&species_of(&all), &t1);
            for t in &t2 {
                db.insert_target(
                    SequenceRecord::new(t.name.clone(), t.genome.clone()),
                    t.taxon,
                )
                .unwrap();
            }
            db
        };

        prop_assert_eq!(incremental.target_count(), fresh.target_count());
        prop_assert_eq!(incremental.total_locations(), fresh.total_locations());
        prop_assert_eq!(incremental.total_features(), fresh.total_features());
        let reads = equivalence_reads(&t1, &t2, 48, reads_seed);
        let got = Classifier::new(&incremental).classify_batch(&reads);
        let want = Classifier::new(&fresh).classify_batch(&reads);
        prop_assert_eq!(got, want, "classifications diverged after incremental insert");
    }

    /// The same property through the loaded-database path: a save/load
    /// round-trip leaves condensed (read-only) partitions, which
    /// `apply_delta` must thaw before inserting — and the thaw + insert must
    /// still be bit-identical to the single fresh build.
    #[test]
    fn insert_into_loaded_condensed_database_matches_fresh_build(
        n1 in 1usize..3,
        n2 in 1usize..3,
        seed in any::<u64>(),
        reads_seed in any::<u64>(),
    ) {
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let t1 = ref_set(n1, 0, seed);
        let t2 = ref_set(n2, n1, seed.wrapping_add(0xbeef));
        let all: Vec<RefSpec> = t1.iter().chain(t2.iter()).cloned().collect();
        let fresh = build_db(&species_of(&all), &all);

        let dir = std::env::temp_dir().join(format!(
            "metacache_epoch_thaw_{}_{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed),
        ));
        let built = build_db(&species_of(&all), &t1);
        serialize::save(&built, &dir, "epoch").unwrap();
        let loaded = serialize::load(&dir, "epoch").unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let mut db = Arc::try_unwrap(loaded).ok().expect("sole owner of loaded db");
        prop_assert_eq!(db.partitions[0].store.kind(), "condensed");

        let mut delta = DatabaseDelta::new();
        for t in &t2 {
            delta.add_target(
                SequenceRecord::new(t.name.clone(), t.genome.clone()),
                t.taxon,
            );
        }
        db.apply_delta(delta).unwrap();
        // The condensed partition was thawed into a mutable host table.
        prop_assert_eq!(db.partitions[0].store.kind(), "host");

        prop_assert_eq!(db.target_count(), fresh.target_count());
        prop_assert_eq!(db.total_locations(), fresh.total_locations());
        let reads = equivalence_reads(&t1, &t2, 48, reads_seed);
        let got = Classifier::new(&db).classify_batch(&reads);
        let want = Classifier::new(&fresh).classify_batch(&reads);
        prop_assert_eq!(got, want, "thawed-insert classifications diverged");
    }
}

/// The reference waves and per-generation databases shared by the serving
/// tests: generation g serves the first `1 + g` waves.
fn generation_databases(generations: usize) -> (Vec<Vec<RefSpec>>, Vec<Arc<Database>>) {
    let waves: Vec<Vec<RefSpec>> = (0..generations)
        .map(|g| ref_set(2, 2 * g, 7_000 + g as u64))
        .collect();
    let dbs = (0..generations)
        .map(|g| {
            let all: Vec<RefSpec> = waves[..=g].iter().flatten().cloned().collect();
            Arc::new(build_db(&species_of(&all), &all))
        })
        .collect();
    (waves, dbs)
}

/// A pinned epoch outlives any number of swaps; unpinned readers observe
/// each swap immediately.
#[test]
fn pinned_epoch_survives_reload() {
    let (_, dbs) = generation_databases(2);
    let engine = ServingEngine::host(Arc::clone(&dbs[0]));
    let pinned = engine.pin_epoch();
    assert_eq!(pinned.generation(), 0);
    assert_eq!(pinned.database().target_count(), dbs[0].target_count());

    let generation = engine.reload_backend(HostBackend::new(Arc::clone(&dbs[1])));
    assert_eq!(generation, 1);
    assert_eq!(engine.generation(), 1);

    // The pre-swap pin still serves the old epoch, bit-identically.
    assert_eq!(pinned.generation(), 0);
    assert_eq!(pinned.database().target_count(), dbs[0].target_count());
    // A fresh pin observes the new one.
    let fresh = engine.pin_epoch();
    assert_eq!(fresh.generation(), 1);
    assert_eq!(fresh.database().target_count(), dbs[1].target_count());
}

/// Submit `reads` in fixed-size batches through `session`, never blocking
/// (the non-blocking submit/drain pair the net server uses), and return
/// every completed batch in submission order.
fn pump_session(
    session: &mut metacache::serving::Session<'_>,
    reads: &[SequenceRecord],
    batch_records: usize,
) -> Vec<CompletedBatch> {
    let mut drained = Vec::new();
    for chunk in reads.chunks(batch_records) {
        let mut chunk = chunk.to_vec();
        loop {
            match session.try_submit_owned(chunk) {
                Ok(()) => break,
                Err(back) => {
                    chunk = back;
                    match session.try_drain_owned() {
                        Some(batch) => drained.push(batch),
                        None => std::thread::yield_now(),
                    }
                }
            }
        }
    }
    while session.in_flight() > 0 {
        match session.try_drain_owned() {
            Some(batch) => drained.push(batch),
            None => std::thread::yield_now(),
        }
    }
    drained
}

/// The acceptance criterion: 4 sessions stream while reloads fire
/// concurrently. Zero failed batches, per-session generations are
/// monotone, and **every** batch's classifications are bit-identical to a
/// single-epoch oracle classifier for the generation the batch reports.
#[test]
fn concurrent_streams_across_reloads_match_single_epoch_oracles() {
    const GENERATIONS: usize = 3;
    const SESSIONS: usize = 4;
    const BATCH: usize = 5;
    let (waves, dbs) = generation_databases(GENERATIONS);
    let engine = ServingEngine::host_with_config(
        Arc::clone(&dbs[0]),
        EngineConfig {
            workers: 4,
            queue_capacity: 2,
            batch_records: BATCH,
            ..EngineConfig::default()
        },
    );

    // Reads sampled only from the first wave's genomes, so every
    // generation's database can classify them (later generations add
    // targets, which may change results — exactly what the per-generation
    // oracle accounts for).
    let first_wave: Vec<&[u8]> = waves[0].iter().map(|t| t.genome.as_slice()).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SESSIONS)
            .map(|s| {
                let engine = &engine;
                let dbs = &dbs;
                let reads = messy_reads(&first_wave, 300, 5_000 + s as u64);
                scope.spawn(move || {
                    let oracles: Vec<_> = dbs
                        .iter()
                        .map(|db| Classifier::new(Arc::clone(db)))
                        .collect();
                    let mut session = engine.session_with(SessionConfig {
                        batch_records: BATCH,
                        ..SessionConfig::default()
                    });
                    let drained = pump_session(&mut session, &reads, BATCH);
                    assert_eq!(
                        drained.len(),
                        reads.len().div_ceil(BATCH),
                        "session {s} lost batches across the reloads"
                    );
                    let mut last_generation = 0;
                    let mut replayed = 0usize;
                    for (b, batch) in drained.iter().enumerate() {
                        assert!(!batch.panicked, "session {s} batch {b} failed");
                        assert!(
                            batch.generation >= last_generation,
                            "session {s} generation went backwards at batch {b}"
                        );
                        last_generation = batch.generation;
                        let oracle = &oracles[batch.generation as usize];
                        assert_eq!(
                            batch.classifications,
                            oracle.classify_batch(&batch.records),
                            "session {s} batch {b} diverged from the \
                             generation-{} oracle",
                            batch.generation
                        );
                        replayed += batch.records.len();
                    }
                    assert_eq!(replayed, reads.len());
                    assert_eq!(session.database_generation(), last_generation);
                })
            })
            .collect();

        // Fire the reloads while the sessions stream.
        for (g, db) in dbs.iter().enumerate().skip(1) {
            std::thread::sleep(Duration::from_millis(20));
            let generation = engine.reload_backend(HostBackend::new(Arc::clone(db)));
            assert_eq!(generation, g as u64);
        }
        for handle in handles {
            handle.join().unwrap();
        }
    });
    assert_eq!(engine.generation(), (GENERATIONS - 1) as u64);
}

/// The old epoch is really *freed* after a reload — not just hidden: a weak
/// probe on the generation-0 database loses its last strong reference
/// within a drain interval of the swap, even though idle workers were
/// parked on the queue when the swap happened.
#[test]
fn old_epoch_database_is_freed_after_reload() {
    let (_, dbs) = generation_databases(2);
    let db0 = Arc::clone(&dbs[0]);
    let weak = Arc::downgrade(&db0);
    let engine = ServingEngine::host(db0);
    drop(dbs); // the test's own strong handles must not mask a leak

    let reads = {
        let wave = ref_set(2, 0, 7_000);
        let genomes: Vec<&[u8]> = wave.iter().map(|t| t.genome.as_slice()).collect();
        messy_reads(&genomes, 40, 99)
    };
    let mut session = engine.session();
    let before = session.classify_batch(&reads);
    assert_eq!(before.len(), reads.len());
    assert!(
        weak.upgrade().is_some(),
        "generation 0 must be alive pre-swap"
    );

    let wave2: Vec<RefSpec> = ref_set(2, 0, 7_000)
        .into_iter()
        .chain(ref_set(2, 2, 7_001))
        .collect();
    let db1 = Arc::new(build_db(&species_of(&wave2), &wave2));
    assert_eq!(engine.reload_backend(HostBackend::new(db1)), 1);

    // Idle workers wake on the reload notification, release their pins and
    // re-pin the new epoch; no further traffic is required. Allow a
    // generous scheduling window before declaring a leak.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while weak.upgrade().is_some() {
        assert!(
            std::time::Instant::now() < deadline,
            "generation-0 database still alive 5s after the swap"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    // And the engine still serves — on the new epoch.
    let after = session.classify_batch(&reads);
    assert_eq!(after.len(), reads.len());
    assert_eq!(session.database_generation(), 1);
}

/// Sharded composition: one `reload_backend` call swaps *all* shards
/// atomically (a `ShardedBackend` is one backend), and post-swap results
/// are bit-identical to the unsharded classifier over the new reference
/// set — even when the shard count changes across the swap.
#[test]
fn sharded_backend_reload_swaps_all_shards_atomically() {
    let t1 = ref_set(3, 0, 4_400);
    let t2 = ref_set(2, 3, 4_401);
    let all: Vec<RefSpec> = t1.iter().chain(t2.iter()).cloned().collect();

    let sharded0 = ShardedDatabase::round_robin(build_db(&species_of(&t1), &t1), 2).unwrap();
    let engine = ServingEngine::new(
        ShardedBackend::new(Arc::new(sharded0)),
        EngineConfig {
            workers: 2,
            batch_records: 7,
            ..EngineConfig::default()
        },
    );

    let genomes: Vec<&[u8]> = all.iter().map(|t| t.genome.as_slice()).collect();
    let reads = messy_reads(&genomes, 60, 321);

    let oracle0 = build_db(&species_of(&t1), &t1);
    let mut session = engine.session();
    assert_eq!(
        session.classify_batch(&reads),
        Classifier::new(&oracle0).classify_batch(&reads),
        "sharded serving diverged from the unsharded oracle pre-swap"
    );
    assert_eq!(session.database_generation(), 0);

    // Swap to the grown reference set, resharded three ways.
    let sharded1 = ShardedDatabase::round_robin(build_db(&species_of(&all), &all), 3).unwrap();
    assert_eq!(
        engine.reload_backend(ShardedBackend::new(Arc::new(sharded1))),
        1
    );

    let oracle1 = build_db(&species_of(&all), &all);
    assert_eq!(
        session.classify_batch(&reads),
        Classifier::new(&oracle1).classify_batch(&reads),
        "sharded serving diverged from the unsharded oracle post-swap"
    );
    assert_eq!(session.database_generation(), 1);
}
