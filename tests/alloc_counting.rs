//! Proof of the zero-allocation query hot path: a counting global allocator
//! measures heap traffic of `sketch_window_into` and `classify_with` in
//! steady state (scratch reused, buffers at their high-water mark) and
//! asserts **zero** allocations.
//!
//! This is the acceptance check for the scratch-buffer refactor: the sketch
//! selector, location gathering, run merge, window count statistic and
//! candidate list must all live in caller-owned reusable buffers.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mc_seqio::SequenceRecord;
use mc_taxonomy::{Rank, Taxonomy};
use metacache::build::CpuBuilder;
use metacache::query::{Classifier, QueryScratch};
use metacache::{MetaCacheConfig, SketchScratch};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Forwards to the system allocator, counting every allocation/reallocation.
struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Measure `work` until an attempt observes zero allocations (up to 5 tries)
/// and return the best attempt's count. The retries filter out rare ambient
/// allocations by libtest's bookkeeping threads: a hot path that really
/// allocates does so on *every* attempt (hundreds of counts per attempt), so
/// the minimum over attempts is the honest per-call signal.
fn min_allocations_over_attempts(mut work: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..5 {
        let before = allocation_count();
        work();
        best = best.min(allocation_count() - before);
        if best == 0 {
            break;
        }
    }
    best
}

fn make_seq(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b"ACGT"[(state >> 33) as usize % 4]
        })
        .collect()
}

/// The whole hot path is exercised from one test function so no concurrent
/// test thread can contribute allocations to the global counter.
#[test]
fn steady_state_hot_path_performs_zero_allocations() {
    // --- Part 1: window sketching. -----------------------------------------
    let sketcher = metacache::Sketcher::new(&MetaCacheConfig::default()).unwrap();
    let windows: Vec<Vec<u8>> = (0..64).map(|i| make_seq(127, i + 1)).collect();
    let mut scratch = SketchScratch::new();
    let mut features = Vec::new();

    // Warm-up: every buffer reaches its high-water mark.
    for window in &windows {
        features.clear();
        sketcher.sketch_window_into(window, &mut scratch, &mut features);
    }

    let mut total_features = 0usize;
    let sketch_allocs = min_allocations_over_attempts(|| {
        for _ in 0..10 {
            for window in &windows {
                features.clear();
                total_features += sketcher.sketch_window_into(window, &mut scratch, &mut features);
            }
        }
    });
    assert!(total_features > 0, "sketching must produce features");
    assert_eq!(
        sketch_allocs, 0,
        "sketch_window_into allocated {sketch_allocs} times over 640 steady-state windows"
    );

    // --- Part 2: end-to-end classification. --------------------------------
    let mut taxonomy = Taxonomy::with_root();
    taxonomy.add_node(10, 1, Rank::Genus, "G").unwrap();
    taxonomy.add_node(100, 10, Rank::Species, "G a").unwrap();
    taxonomy.add_node(101, 10, Rank::Species, "G b").unwrap();
    let genome_a = make_seq(20_000, 101);
    let genome_b = make_seq(20_000, 102);
    let mut builder = CpuBuilder::new(MetaCacheConfig::for_tests(), taxonomy);
    builder
        .add_target(SequenceRecord::new("refA", genome_a.clone()), 100)
        .unwrap();
    builder
        .add_target(SequenceRecord::new("refB", genome_b.clone()), 101)
        .unwrap();
    let db = builder.finish();
    let classifier = Classifier::new(&db);

    // A mixed workload: single-window reads, multi-window reads, paired
    // reads, and a foreign (unclassifiable) read.
    let mut reads: Vec<SequenceRecord> = (0..50)
        .map(|i| {
            let (genome, offset) = if i % 2 == 0 {
                (&genome_a, 130 + i * 71)
            } else {
                (&genome_b, 210 + i * 67)
            };
            let len = if i % 5 == 0 { 260 } else { 120 };
            SequenceRecord::new(format!("r{i}"), genome[offset..offset + len].to_vec())
        })
        .collect();
    reads.push(
        SequenceRecord::new("p/1", genome_a[4_000..4_101].to_vec())
            .with_mate(SequenceRecord::new("p/2", genome_a[4_300..4_401].to_vec())),
    );
    reads.push(SequenceRecord::new("alien", make_seq(150, 999)));

    let mut query_scratch = QueryScratch::new();
    // Warm-up pass over the identical workload.
    let warmup: Vec<_> = reads
        .iter()
        .map(|r| classifier.classify_with(r, &mut query_scratch))
        .collect();

    let classify_allocs = min_allocations_over_attempts(|| {
        for _ in 0..5 {
            for (read, expected) in reads.iter().zip(&warmup) {
                let c = classifier.classify_with(read, &mut query_scratch);
                assert_eq!(&c, expected);
            }
        }
    });
    assert!(
        warmup.iter().filter(|c| c.is_classified()).count() >= 50,
        "most reads must classify"
    );
    assert_eq!(
        classify_allocs,
        0,
        "classify_with allocated {classify_allocs} times over {} steady-state reads",
        5 * reads.len()
    );
}
