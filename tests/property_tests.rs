//! Property-based tests (proptest) of the core invariants:
//! encoding round-trips, canonical k-mer strand independence, hash-table
//! insert/query consistency across every variant, segmented-sort correctness,
//! sketch stability and LCA algebra.

use proptest::collection::vec;
use proptest::prelude::*;

use mc_gpu_sim::{segmented_sort, Warp};
use mc_kmer::{
    canonical, reverse_complement, CanonicalKmerIter, EncodedSequence, KmerParams, Location,
};
use mc_seqio::SequenceRecord;
use mc_taxonomy::{Rank, Taxonomy};
use mc_warpcore::{
    BucketListConfig, BucketListHashTable, FeatureStore, HostHashTable, HostTableConfig,
    MultiBucketConfig, MultiBucketHashTable, MultiValueConfig, MultiValueHashTable,
};
use metacache::build::CpuBuilder;
use metacache::gpu::{warp_sketch_window_into, WarpSketchScratch};
use metacache::query::{Classifier, QueryScratch};
use metacache::{Database, MetaCacheConfig, SketchScratch, Sketcher};

fn dna(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    vec(
        prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T'), Just(b'N'),],
        0..max_len,
    )
}

fn clean_dna(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    vec(
        prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T')],
        0..max_len,
    )
}

fn make_seq(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b"ACGT"[(state >> 33) as usize % 4]
        })
        .collect()
}

/// A two-species database shared across property cases (building one per
/// case would dominate the test's runtime).
fn shared_database() -> (&'static Database, &'static [Vec<u8>]) {
    use std::sync::OnceLock;
    static DB: OnceLock<(Database, Vec<Vec<u8>>)> = OnceLock::new();
    let (db, genomes) = DB.get_or_init(|| {
        let mut taxonomy = Taxonomy::with_root();
        taxonomy.add_node(10, 1, Rank::Genus, "G").unwrap();
        taxonomy.add_node(100, 10, Rank::Species, "G a").unwrap();
        taxonomy.add_node(101, 10, Rank::Species, "G b").unwrap();
        let genomes = vec![make_seq(18_000, 11), make_seq(18_000, 12)];
        let mut builder = CpuBuilder::new(MetaCacheConfig::for_tests(), taxonomy);
        builder
            .add_target(SequenceRecord::new("refA", genomes[0].clone()), 100)
            .unwrap();
        builder
            .add_target(SequenceRecord::new("refB", genomes[1].clone()), 101)
            .unwrap();
        (builder.finish(), genomes)
    });
    (db, genomes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encoded_sequence_roundtrips(seq in dna(600)) {
        let encoded = EncodedSequence::from_ascii(&seq);
        prop_assert_eq!(encoded.len(), seq.len());
        prop_assert_eq!(encoded.to_ascii(), seq);
    }

    #[test]
    fn reverse_complement_involution(seq in clean_dna(400)) {
        prop_assert_eq!(reverse_complement(&reverse_complement(&seq)), seq);
    }

    #[test]
    fn canonical_kmers_are_strand_independent(seq in clean_dna(300), k in 2u32..24) {
        let params = KmerParams::new(k).unwrap();
        let fwd: Vec<u64> = CanonicalKmerIter::new(&seq, params).map(|x| x.value()).collect();
        let mut rev: Vec<u64> = CanonicalKmerIter::new(&reverse_complement(&seq), params)
            .map(|x| x.value())
            .collect();
        rev.reverse();
        prop_assert_eq!(fwd, rev);
    }

    #[test]
    fn canonical_is_idempotent(value in any::<u64>(), k in 1u32..=32) {
        let params = KmerParams::new(k).unwrap();
        let c = canonical(value, params);
        prop_assert_eq!(canonical(c, params), c);
    }

    #[test]
    fn every_table_variant_returns_what_was_inserted(
        pairs in vec((0u32..500, 0u32..50, 0u32..1000), 1..300)
    ) {
        // Build the same content in all four variants and compare per-key
        // multisets of locations.
        let n = pairs.len();
        let mb = MultiBucketHashTable::new(MultiBucketConfig {
            max_locations_per_key: usize::MAX >> 1,
            ..MultiBucketConfig::for_expected_values(n, 0.5)
        });
        let mv = MultiValueHashTable::new(MultiValueConfig {
            max_locations_per_key: usize::MAX >> 1,
            ..MultiValueConfig::for_expected_values(n, 0.5)
        });
        let bl = BucketListHashTable::new(BucketListConfig {
            capacity_keys: 2 * n + 64,
            max_locations_per_key: usize::MAX >> 1,
            ..Default::default()
        });
        let host = HostHashTable::new(HostTableConfig {
            max_locations_per_key: usize::MAX >> 1,
            ..Default::default()
        });
        let mut expected: std::collections::BTreeMap<u32, Vec<Location>> = Default::default();
        for (key, target, window) in &pairs {
            let loc = Location::new(*target, *window);
            expected.entry(*key).or_default().push(loc);
            mb.insert(*key, loc).unwrap();
            mv.insert(*key, loc).unwrap();
            bl.insert(*key, loc).unwrap();
            host.insert(*key, loc).unwrap();
        }
        for (key, locs) in &expected {
            let mut want = locs.clone();
            want.sort();
            for table in [&mb as &dyn FeatureStore, &mv, &bl, &host] {
                let mut got = table.query(*key);
                got.sort();
                prop_assert_eq!(&got, &want, "key {} mismatch", key);
            }
        }
        // Absent keys return nothing.
        for probe in 1000u32..1010 {
            prop_assert!(mb.query(probe).is_empty());
            prop_assert!(host.query(probe).is_empty());
        }
    }

    #[test]
    fn segmented_sort_sorts_each_segment(
        keys in vec(any::<u64>(), 0..2000),
        cuts in vec(0usize..2000, 0..8)
    ) {
        let n = keys.len();
        let mut bounds: Vec<usize> = cuts.into_iter().map(|c| c.min(n)).collect();
        bounds.push(0);
        bounds.push(n);
        bounds.sort_unstable();
        let mut data = keys.clone();
        segmented_sort(&mut data, &bounds);
        // Each segment is sorted and is a permutation of the original segment.
        for w in bounds.windows(2) {
            let mut original = keys[w[0]..w[1]].to_vec();
            original.sort_unstable();
            prop_assert_eq!(&data[w[0]..w[1]], original.as_slice());
        }
    }

    #[test]
    fn bounded_selector_is_bit_identical_to_collect_sort_oracle(
        // Windows over the full alphabet including `N` runs, from empty
        // through shorter-than-k up to multi-window lengths.
        window in dna(400),
        n_run_start in 0usize..400,
        n_run_len in 0usize..40,
    ) {
        let mut window = window;
        // Splice an explicit N run so ambiguous stretches are always exercised.
        for i in 0..n_run_len {
            if let Some(base) = window.get_mut(n_run_start + i) {
                *base = b'N';
            }
        }
        let mut scratch = SketchScratch::new();
        let mut features = Vec::new();
        // The acceptance sketch sizes: minimal, paper default, selector bound.
        for sketch_size in [1usize, 16, 64] {
            let config = MetaCacheConfig { sketch_size, ..MetaCacheConfig::default() };
            let sketcher = Sketcher::new(&config).unwrap();
            features.clear();
            sketcher.sketch_window_into(&window, &mut scratch, &mut features);
            let oracle = sketcher.sketch_window_baseline(&window);
            prop_assert_eq!(&features, oracle.features(), "sketch size {}", sketch_size);
        }
    }

    #[test]
    fn warp_kernel_host_scratch_and_oracle_sketches_agree(
        window in dna(300),
        sketch_size_choice in 0usize..3,
    ) {
        let sketch_size = [1usize, 16, 64][sketch_size_choice];
        let config = MetaCacheConfig { sketch_size, ..MetaCacheConfig::default() };
        let sketcher = Sketcher::new(&config).unwrap();
        let kmer = sketcher.window_params().kmer();
        let mut warp_scratch = WarpSketchScratch::new();
        let mut warp_features = Vec::new();
        warp_sketch_window_into(
            &Warp::new(0), &window, kmer, sketch_size, &mut warp_scratch, &mut warp_features,
        );
        let mut host_scratch = SketchScratch::new();
        let mut host_features = Vec::new();
        sketcher.sketch_window_into(&window, &mut host_scratch, &mut host_features);
        let oracle = sketcher.sketch_window_baseline(&window);
        prop_assert_eq!(&warp_features, &host_features);
        prop_assert_eq!(&warp_features, oracle.features());
    }

    #[test]
    fn classify_batch_with_scratch_reuse_equals_sequential(
        offsets in vec(0usize..17_000, 1..40),
        lengths in vec(20usize..300, 1..40),
    ) {
        let (db, genomes) = shared_database();
        let classifier = Classifier::new(db);
        let reads: Vec<SequenceRecord> = offsets
            .iter()
            .zip(&lengths)
            .enumerate()
            .map(|(i, (&off, &len))| {
                let genome = &genomes[i % genomes.len()];
                let end = (off + len).min(genome.len());
                SequenceRecord::new(format!("r{i}"), genome[off..end].to_vec())
            })
            .collect();
        // classify_batch reuses one QueryScratch per rayon worker,
        // classify_all_sequential reuses a single scratch, and classify()
        // builds a fresh scratch per read: all three must agree exactly.
        let batch = classifier.classify_batch(&reads);
        let sequential = classifier.classify_all_sequential(&reads);
        prop_assert_eq!(&batch, &sequential);
        let mut reused = QueryScratch::new();
        for (read, expected) in reads.iter().zip(&batch) {
            prop_assert_eq!(&classifier.classify(read), expected);
            prop_assert_eq!(&classifier.classify_with(read, &mut reused), expected);
        }
    }

    #[test]
    fn sketches_are_subsets_of_smaller_sketch_sizes(seq in clean_dna(200), s in 1usize..32) {
        // A sketch of size s must be a prefix of the sketch of size s+8 over
        // the same window (monotonicity of "s smallest distinct hashes").
        let small_cfg = MetaCacheConfig { sketch_size: s, ..MetaCacheConfig::default() };
        let large_cfg = MetaCacheConfig { sketch_size: s + 8, ..MetaCacheConfig::default() };
        let small = Sketcher::new(&small_cfg).unwrap().sketch_window(&seq);
        let large = Sketcher::new(&large_cfg).unwrap().sketch_window(&seq);
        prop_assert!(small.len() <= large.len());
        prop_assert_eq!(small.features(), &large.features()[..small.len()]);
    }

    #[test]
    fn lca_is_commutative_and_idempotent(
        a_idx in 0usize..12,
        b_idx in 0usize..12
    ) {
        // Fixed small taxonomy; indices choose taxa.
        let mut taxonomy = Taxonomy::with_root();
        taxonomy.add_node(2, 1, Rank::Domain, "D").unwrap();
        for g in 0..3u32 {
            taxonomy.add_node(10 + g, 2, Rank::Genus, format!("G{g}")).unwrap();
            for s in 0..3u32 {
                taxonomy
                    .add_node(100 + g * 10 + s, 10 + g, Rank::Species, format!("S{g}{s}"))
                    .unwrap();
            }
        }
        let ids: Vec<u32> = taxonomy.iter().map(|n| n.id).collect();
        let a = ids[a_idx % ids.len()];
        let b = ids[b_idx % ids.len()];
        let cache = taxonomy.lineage_cache();
        prop_assert_eq!(cache.lca(a, b), cache.lca(b, a));
        prop_assert_eq!(cache.lca(a, a), a);
        let l = cache.lca(a, b);
        prop_assert_eq!(cache.lca(l, a), l);
        prop_assert_eq!(cache.lca(l, b), l);
        prop_assert_eq!(cache.lca(a, b), taxonomy.lca(a, b));
    }

    #[test]
    fn window_count_statistic_conserves_hits(
        locs in vec((0u32..20, 0u32..100), 0..500)
    ) {
        let mut locations: Vec<Location> =
            locs.iter().map(|(t, w)| Location::new(*t, *w)).collect();
        locations.sort_unstable_by_key(|l| l.pack());
        let counts = metacache::candidate::accumulate_locations(&locations);
        let total: u32 = counts.iter().map(|(_, c)| *c).sum();
        prop_assert_eq!(total as usize, locations.len());
        // Accumulated locations are strictly increasing.
        prop_assert!(counts.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
