//! End-to-end integration tests spanning the whole stack: synthetic data
//! generation → database build → (serialization) → classification →
//! evaluation, for both execution back ends.

use mc_datagen::community::{RefSeqLikeSpec, ReferenceCollection};
use mc_datagen::profiles::DatasetProfile;
use mc_datagen::reads::ReadSimulator;
use mc_datagen::taxonomy_gen::TaxonomySpec;
use mc_gpu_sim::MultiGpuSystem;
use mc_taxonomy::TaxonId;
use metacache::build::{estimate_locations, CpuBuilder, GpuBuilder};
use metacache::classify::ClassificationEvaluation;
use metacache::gpu::GpuClassifier;
use metacache::pipeline::{run_on_the_fly, run_write_load_query, DiskModel};
use metacache::query::Classifier;
use metacache::{serialize, MetaCacheConfig};

fn community() -> ReferenceCollection {
    ReferenceCollection::refseq_like(RefSeqLikeSpec {
        taxonomy: TaxonomySpec {
            genera: 4,
            species_per_genus: 2,
            families: 2,
        },
        genome_length: 25_000,
        strains_per_species: 1,
        seed: 77,
    })
}

#[test]
fn cpu_pipeline_classifies_mock_community_accurately() {
    let collection = community();
    let reads = ReadSimulator::new(DatasetProfile::hiseq(), 400)
        .with_seed(1)
        .simulate(&collection);
    let truth: Vec<TaxonId> = reads.truth.iter().map(|t| t.taxon).collect();

    let mut builder = CpuBuilder::new(MetaCacheConfig::default(), collection.taxonomy.clone());
    for t in &collection.targets {
        builder.add_target(t.to_record(), t.taxon).unwrap();
    }
    let db = builder.finish();
    let calls = Classifier::new(&db).classify_batch(&reads.reads);
    let eval = ClassificationEvaluation::evaluate(&db, &calls, &truth);
    assert!(
        eval.species.sensitivity() > 0.6,
        "species sensitivity {:.2}",
        eval.species.sensitivity()
    );
    assert!(
        eval.species.precision() > 0.8,
        "species precision {:.2}",
        eval.species.precision()
    );
    assert!(eval.genus.sensitivity() >= eval.species.sensitivity());
}

#[test]
fn gpu_pipeline_matches_cpu_classifications_on_same_database() {
    let collection = community();
    let reads = ReadSimulator::new(DatasetProfile::miseq(), 200)
        .with_seed(2)
        .simulate(&collection);
    let config = MetaCacheConfig::default();

    // Build one multi-partition database and classify with both paths.
    let system = MultiGpuSystem::dgx1(3);
    let records = collection.to_records();
    let expected = estimate_locations(&config, &records) / 3 + 4096;
    let mut builder =
        GpuBuilder::new(config, collection.taxonomy.clone(), &system, expected).unwrap();
    for t in &collection.targets {
        builder.add_target(t.to_record(), t.taxon).unwrap();
    }
    let db = builder.finish();

    let cpu_calls = Classifier::new(&db).classify_batch(&reads.reads);
    let (gpu_calls, breakdown) = GpuClassifier::new(&db, &system).classify_all(&reads.reads);
    assert_eq!(cpu_calls, gpu_calls, "both query paths must agree exactly");
    assert!(breakdown.total().as_nanos() > 0);
}

#[test]
fn database_roundtrips_through_disk_with_identical_results() {
    let collection = community();
    let reads = ReadSimulator::new(DatasetProfile::hiseq(), 150)
        .with_seed(3)
        .simulate(&collection);

    let mut builder = CpuBuilder::new(MetaCacheConfig::default(), collection.taxonomy.clone());
    for t in &collection.targets {
        builder.add_target(t.to_record(), t.taxon).unwrap();
    }
    let db = builder.finish();
    let before = Classifier::new(&db).classify_batch(&reads.reads);

    let dir = std::env::temp_dir().join("metacache_integration_roundtrip");
    serialize::save(&db, &dir, "e2e").unwrap();
    let loaded = serialize::load(&dir, "e2e").unwrap();
    let after = Classifier::new(loaded.clone()).classify_batch(&reads.reads);
    assert_eq!(before, after);
    assert_eq!(db.total_locations(), loaded.total_locations());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn on_the_fly_reaches_first_query_faster_than_write_load() {
    let collection = community();
    let reads = ReadSimulator::new(DatasetProfile::kal_d(), 100)
        .with_seed(4)
        .simulate(&collection);
    let references: Vec<_> = collection
        .targets
        .iter()
        .map(|t| (t.to_record(), t.taxon))
        .collect();
    let system = MultiGpuSystem::dgx1(2);
    let otf = run_on_the_fly(
        MetaCacheConfig::default(),
        collection.taxonomy.clone(),
        &references,
        &reads.reads,
        &system,
    )
    .unwrap();
    let dir = std::env::temp_dir().join("metacache_integration_ttq");
    let wl = run_write_load_query(
        MetaCacheConfig::default(),
        collection.taxonomy.clone(),
        &references,
        &reads.reads,
        &system,
        DiskModel::default(),
        &dir,
        "e2e",
    )
    .unwrap();
    assert!(otf.phases.time_to_query() < wl.phases.time_to_query());
    assert_eq!(otf.classifications, wl.classifications);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn paired_end_reads_classify_at_least_as_well_as_single_end() {
    let collection = community();
    let paired = ReadSimulator::new(DatasetProfile::kal_d(), 200)
        .with_seed(5)
        .simulate(&collection);
    let truth: Vec<TaxonId> = paired.truth.iter().map(|t| t.taxon).collect();
    let mut builder = CpuBuilder::new(MetaCacheConfig::default(), collection.taxonomy.clone());
    for t in &collection.targets {
        builder.add_target(t.to_record(), t.taxon).unwrap();
    }
    let db = builder.finish();
    let classifier = Classifier::new(&db);

    let paired_calls = classifier.classify_batch(&paired.reads);
    let single_reads: Vec<_> = paired
        .reads
        .iter()
        .map(|r| mc_seqio::SequenceRecord::new(r.header.clone(), r.sequence.clone()))
        .collect();
    let single_calls = classifier.classify_batch(&single_reads);

    let eval_paired = ClassificationEvaluation::evaluate(&db, &paired_calls, &truth);
    let eval_single = ClassificationEvaluation::evaluate(&db, &single_calls, &truth);
    assert!(
        eval_paired.species.sensitivity() >= eval_single.species.sensitivity(),
        "paired {:.3} vs single {:.3}",
        eval_paired.species.sensitivity(),
        eval_single.species.sensitivity()
    );
}
