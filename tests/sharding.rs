//! Sharding oracle suite: scatter-gather classification over a
//! [`ShardedDatabase`] must be **bit-identical** to the unsharded path —
//! same candidates, same scores, same order, same classifications — for
//! every reference set, shard count, partition skew and read shape.
//!
//! The argument for why this holds lives in `metacache::shard`'s module
//! docs (target-local pipeline + total candidate order + per-shard top-m
//! retention); this suite is the proof by property: random reference sets,
//! shard counts {1, 2, 3, 7}, random skewed/empty explicit plans, and messy
//! reads (empty, short, N-runs, foreign DNA, pairs). The exhaustive
//! merge-level oracle lives with `CandidateList` in
//! `crates/metacache/src/candidate.rs`.

use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;

use mc_seqio::SequenceRecord;
use mc_taxonomy::{Rank, Taxonomy};
use metacache::build::CpuBuilder;
use metacache::query::{Classifier, QueryScratch};
use metacache::{
    Candidate, Database, MetaCacheConfig, ShardPlan, ShardedClassifier, ShardedDatabase,
    ShardedScratch,
};

fn make_seq(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b"ACGT"[(state >> 33) as usize % 4]
        })
        .collect()
}

/// Deterministically build a reference database: `n_targets` random genomes,
/// one species each, split across two genera (so near-ties exercise the LCA
/// fallback). Calling twice with the same arguments yields bit-identical
/// databases — the suite builds one copy for the unsharded oracle and a
/// second to consume for the shard split (`Database` is not `Clone`).
fn build_db(n_targets: usize, genome_len: usize, seed: u64) -> (Database, Vec<Vec<u8>>) {
    let mut taxonomy = Taxonomy::with_root();
    taxonomy.add_node(10, 1, Rank::Genus, "G even").unwrap();
    taxonomy.add_node(11, 1, Rank::Genus, "G odd").unwrap();
    for i in 0..n_targets as u32 {
        taxonomy
            .add_node(100 + i, 10 + i % 2, Rank::Species, format!("sp{i}"))
            .unwrap();
    }
    let genomes: Vec<Vec<u8>> = (0..n_targets)
        .map(|i| make_seq(genome_len, seed.wrapping_mul(31).wrapping_add(i as u64)))
        .collect();
    let mut builder = CpuBuilder::new(MetaCacheConfig::for_tests(), taxonomy);
    for (i, g) in genomes.iter().enumerate() {
        builder
            .add_target(
                SequenceRecord::new(format!("t{i}"), g.clone()),
                100 + i as u32,
            )
            .unwrap();
    }
    (builder.finish(), genomes)
}

/// Messy reads deterministically derived from `seed`: empty records, too
/// short to sketch, foreign DNA, N-runs, all-N, read pairs and ordinary
/// genome windows — every shape the serving stack accepts.
fn messy_reads(genomes: &[Vec<u8>], n: usize, seed: u64) -> Vec<SequenceRecord> {
    let mut state = seed | 1;
    (0..n)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let genome = &genomes[i % genomes.len()];
            match (state >> 33) % 10 {
                0 => SequenceRecord::new(format!("empty{i}"), Vec::new()),
                1 => SequenceRecord::new(format!("tiny{i}"), genome[..6].to_vec()),
                2 => SequenceRecord::new(format!("alien{i}"), make_seq(130, state)),
                3 => {
                    let offset = (state as usize >> 7) % (genome.len() - 300);
                    SequenceRecord::new(format!("pair{i}"), genome[offset..offset + 140].to_vec())
                        .with_mate(SequenceRecord::new(
                            format!("pair{i}/2"),
                            genome[offset + 150..offset + 290].to_vec(),
                        ))
                }
                4 => {
                    let mut seq = genome[200..350].to_vec();
                    let n_start = 20 + (state as usize >> 9) % 100;
                    let n_len = 1 + (state as usize >> 17) % 25;
                    seq[n_start..n_start + n_len].fill(b'N');
                    SequenceRecord::new(format!("nrun{i}"), seq)
                }
                5 => SequenceRecord::new(format!("alln{i}"), vec![b'N'; 80]),
                _ => {
                    let offset = (state as usize >> 7) % (genome.len() - 150);
                    SequenceRecord::new(format!("r{i}"), genome[offset..offset + 150].to_vec())
                }
            }
        })
        .collect()
}

/// The oracle check: split a fresh copy of the database with `plan` and
/// assert the scatter-gather path reproduces the unsharded path bit for
/// bit — the merged candidate lists (entries *and* order) and the final
/// classifications.
fn assert_bit_identical(
    n_targets: usize,
    genome_len: usize,
    db_seed: u64,
    plan: ShardPlan,
    reads: &[SequenceRecord],
) {
    let (db, _) = build_db(n_targets, genome_len, db_seed);
    let oracle = Classifier::new(&db);
    let mut scratch = QueryScratch::new();
    let expected_candidates: Vec<Vec<Candidate>> = reads
        .iter()
        .map(|r| oracle.candidates_with(r, &mut scratch).as_slice().to_vec())
        .collect();
    let expected = oracle.classify_batch(reads);

    let (db, _) = build_db(n_targets, genome_len, db_seed);
    let shard_count = plan.shard_count();
    let sharded = Arc::new(ShardedDatabase::from_database(db, plan).unwrap());
    let classifier = ShardedClassifier::new(Arc::clone(&sharded));
    let mut sharded_scratch = ShardedScratch::new();
    for (i, read) in reads.iter().enumerate() {
        let merged = classifier.candidates_with(read, &mut sharded_scratch);
        assert_eq!(
            merged.as_slice(),
            &expected_candidates[i][..],
            "candidates diverged for read {i} ({} shards)",
            shard_count
        );
    }
    assert_eq!(
        classifier.classify_batch(reads),
        expected,
        "classifications diverged ({shard_count} shards)"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random reference sets × shard counts {1, 2, 3, 7} × messy reads:
    /// round-robin sharding is bit-identical to the unsharded oracle.
    /// With 7 shards and ≤ 5 targets, at least two shards are empty —
    /// the degenerate plans fall out of the same property.
    #[test]
    fn round_robin_sharding_is_bit_identical(
        n_targets in 2usize..=5,
        db_seed in 1u64..1_000,
        read_seed in any::<u64>(),
        shard_count in prop_oneof![Just(1usize), Just(2), Just(3), Just(7)],
    ) {
        let (_, genomes) = build_db(n_targets, 4_000, db_seed);
        let reads = messy_reads(&genomes, 24, read_seed);
        let plan = ShardPlan::round_robin(n_targets, shard_count).unwrap();
        assert_bit_identical(n_targets, 4_000, db_seed, plan, &reads);
    }

    /// Random *explicit* plans — arbitrarily skewed, shards with zero
    /// targets — are bit-identical too: equivalence cannot depend on how
    /// evenly the targets are spread.
    #[test]
    fn arbitrary_explicit_plans_are_bit_identical(
        db_seed in 1u64..1_000,
        read_seed in any::<u64>(),
        assignment in vec(0usize..3, 4..5),
    ) {
        let n_targets = assignment.len();
        let (_, genomes) = build_db(n_targets, 4_000, db_seed);
        let reads = messy_reads(&genomes, 24, read_seed);
        let plan = ShardPlan::explicit(assignment, 3).unwrap();
        assert_bit_identical(n_targets, 4_000, db_seed, plan, &reads);
    }
}

/// The 90 % skew case called out by the growth plan: one shard owns 9 of 10
/// targets, the other owns 1. The fat shard's candidate lists dominate every
/// merge; the thin shard must still win exactly the reads it would win
/// unsharded.
#[test]
fn ninety_percent_skewed_partition_is_bit_identical() {
    let n_targets = 10;
    let (db, genomes) = build_db(n_targets, 3_000, 42);
    let mut assignment = vec![0usize; n_targets];
    assignment[9] = 1;
    let plan = ShardPlan::explicit(assignment, 2).unwrap();
    assert_eq!(
        plan.assignment().iter().filter(|&&s| s == 0).count(),
        9,
        "shard 0 should own 90% of the targets"
    );
    drop(db);
    let reads = messy_reads(&genomes, 48, 7);
    assert_bit_identical(n_targets, 3_000, 42, plan, &reads);
}

/// A shard with zero targets serves an empty (but well-formed) table and
/// contributes nothing to any merge; classification is unchanged.
#[test]
fn zero_target_shard_is_bit_identical() {
    let n_targets = 4;
    let (_, genomes) = build_db(n_targets, 3_000, 7);
    let reads = messy_reads(&genomes, 48, 99);
    // Shard 1 of 3 gets no targets at all.
    let plan = ShardPlan::explicit(vec![0, 2, 0, 2], 3).unwrap();
    let (db, _) = build_db(n_targets, 3_000, 7);
    let sharded = ShardedDatabase::from_database(db, plan.clone()).unwrap();
    assert_eq!(sharded.shards()[1].total_locations(), 0);
    // Empty shards still expose one (empty) partition — a shard server over
    // one keeps answering candidate queries instead of being mistaken for a
    // table-free metadata view.
    assert_eq!(sharded.shards()[1].partition_count(), 1);
    assert_bit_identical(n_targets, 3_000, 7, plan, &reads);
}
