//! Integration tests of the streaming query pipeline: equivalence with the
//! materialised path under arbitrary batch-size splits (including output
//! order), bounded memory, degenerate-read handling across all paths, and
//! file streaming.

use proptest::prelude::*;

use mc_gpu_sim::MultiGpuSystem;
use mc_seqio::{BatchQueue, SequenceRecord};
use mc_taxonomy::{Rank, Taxonomy};
use metacache::build::{CpuBuilder, GpuBuilder};
use metacache::gpu::GpuClassifier;
use metacache::pipeline::{StreamingClassifier, StreamingConfig};
use metacache::query::Classifier;
use metacache::{Database, MetaCacheConfig};

fn make_seq(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b"ACGT"[(state >> 33) as usize % 4]
        })
        .collect()
}

/// One shared two-species database plus its genomes (building per case would
/// dominate the runtime).
fn shared_database() -> (&'static Database, &'static [Vec<u8>]) {
    use std::sync::OnceLock;
    static DB: OnceLock<(Database, Vec<Vec<u8>>)> = OnceLock::new();
    let (db, genomes) = DB.get_or_init(|| {
        let mut taxonomy = Taxonomy::with_root();
        taxonomy.add_node(10, 1, Rank::Genus, "G").unwrap();
        taxonomy.add_node(100, 10, Rank::Species, "G a").unwrap();
        taxonomy.add_node(101, 10, Rank::Species, "G b").unwrap();
        let genomes = vec![make_seq(18_000, 21), make_seq(18_000, 22)];
        let mut builder = CpuBuilder::new(MetaCacheConfig::for_tests(), taxonomy);
        builder
            .add_target(SequenceRecord::new("refA", genomes[0].clone()), 100)
            .unwrap();
        builder
            .add_target(SequenceRecord::new("refB", genomes[1].clone()), 101)
            .unwrap();
        (builder.finish(), genomes)
    });
    (db, genomes)
}

/// A mixed read set: genome-derived reads, foreign reads, short reads and
/// empty records, deterministically derived from `seed`.
fn mixed_reads(n: usize, seed: u64) -> Vec<SequenceRecord> {
    let (_, genomes) = shared_database();
    let mut state = seed | 1;
    (0..n)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let roll = (state >> 33) % 10;
            match roll {
                // Empty record.
                0 => SequenceRecord::new(format!("empty{i}"), Vec::new()),
                // Shorter than k.
                1 => SequenceRecord::new(format!("tiny{i}"), genomes[0][..6].to_vec()),
                // Foreign (unrelated) read.
                2 => SequenceRecord::new(format!("alien{i}"), make_seq(130, state)),
                // Genome-derived read, alternating species.
                _ => {
                    let genome = &genomes[i % 2];
                    let offset = (state as usize >> 7) % (genome.len() - 150);
                    SequenceRecord::new(format!("r{i}"), genome[offset..offset + 150].to_vec())
                }
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance property: any batch-size split of any record stream
    /// produces classifications identical to the materialised path, in the
    /// same order.
    #[test]
    fn streaming_equals_materialised_for_any_split(
        n in 0usize..80,
        seed in any::<u64>(),
        batch_records in 1usize..40,
        queue_capacity in 1usize..5,
        workers in 1usize..5,
    ) {
        let (db, _) = shared_database();
        let reads = mixed_reads(n, seed);
        let materialised = Classifier::new(db).classify_batch(&reads);
        let streaming = StreamingClassifier::with_config(
            db,
            StreamingConfig { batch_records, queue_capacity, workers },
        );
        let (streamed, summary) = streaming.classify_iter(reads.iter().cloned());
        prop_assert_eq!(streamed, materialised);
        prop_assert_eq!(summary.records, n as u64);
        prop_assert!(
            summary.peak_resident_batches
                <= streaming.config().max_in_flight_batches() as u64
        );
    }
}

#[test]
fn streaming_holds_at_most_capacity_batches_in_queue() {
    // Strict channel-level bound: with capacity C and no consumer, the C+1-th
    // send blocks, so the queue can never hold more than C batches.
    const CAPACITY: usize = 2;
    let queue = BatchQueue::new(CAPACITY, 4);
    let stats = queue.stats();
    let (tx, rx) = queue.split();
    let producer = std::thread::spawn(move || {
        tx.send_all((0..40).map(|i| SequenceRecord::new(format!("r{i}"), b"ACGT".to_vec())))
            .unwrap();
    });
    while stats.batches_sent() < CAPACITY as u64 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    std::thread::sleep(std::time::Duration::from_millis(20));
    assert!(
        !producer.is_finished(),
        "producer must block once the queue holds `capacity` batches"
    );
    assert_eq!(stats.batches_sent(), CAPACITY as u64);
    let drained: usize = rx.iter().map(|b| b.len()).sum();
    producer.join().unwrap();
    assert_eq!(drained, 40);
}

#[test]
fn streaming_pipeline_memory_stays_bounded() {
    // Pipeline-level bound: over a long stream the credit scheme keeps
    // resident batches at `queue_capacity + workers` even though 100x more
    // batches flow through.
    let (db, _) = shared_database();
    let config = StreamingConfig {
        batch_records: 2,
        queue_capacity: 2,
        workers: 3,
    };
    let streaming = StreamingClassifier::with_config(db, config);
    let reads = mixed_reads(600, 77);
    let (out, summary) = streaming.classify_iter(reads.iter().cloned());
    assert_eq!(out.len(), 600);
    assert_eq!(summary.batches, 300);
    assert!(
        summary.peak_resident_batches <= config.max_in_flight_batches() as u64,
        "peak resident {} exceeds bound {}",
        summary.peak_resident_batches,
        config.max_in_flight_batches()
    );
    assert!(
        summary.peak_queue_batches <= (config.queue_capacity + 1 + config.workers) as u64,
        "peak queue gauge {} exceeds channel capacity + producer + workers",
        summary.peak_queue_batches
    );
}

#[test]
fn short_and_empty_reads_classify_identically_on_every_path() {
    // Regression: a read shorter than k (or empty) must be unclassified on
    // the materialised host path, the streaming path and the GPU path alike.
    let (db, genomes) = shared_database();
    let k = db.config.kmer_len as usize;
    let degenerate = vec![
        SequenceRecord::new("empty", Vec::new()),
        SequenceRecord::new("one_base", b"A".to_vec()),
        SequenceRecord::new("k_minus_1", genomes[0][..k - 1].to_vec()),
        // Exactly k: one k-mer, sketchable but far below min_hits.
        SequenceRecord::new("exactly_k", genomes[0][..k].to_vec()),
        // A normal read sandwiched between degenerates to catch off-by-one
        // batching bugs.
        SequenceRecord::new("normal", genomes[0][400..550].to_vec()),
        SequenceRecord::new("empty2", Vec::new()),
    ];

    let materialised = Classifier::new(db).classify_batch(&degenerate);
    for batch_records in [1, 2, 6] {
        let streaming = StreamingClassifier::with_config(
            db,
            StreamingConfig {
                batch_records,
                queue_capacity: 2,
                workers: 2,
            },
        );
        let (streamed, _) = streaming.classify_iter(degenerate.iter().cloned());
        assert_eq!(streamed, materialised, "batch_records={batch_records}");
    }
    for (record, c) in degenerate.iter().zip(&materialised) {
        if record.len() < k {
            assert!(
                !c.is_classified(),
                "read {:?} shorter than k must be unclassified",
                record.header
            );
        }
    }
    assert!(materialised[4].is_classified(), "normal read classifies");

    // The GPU pipeline agrees on the same records.
    let system = MultiGpuSystem::dgx1(2);
    let (gpu, _) = GpuClassifier::new(db, &system).classify_all(&degenerate);
    assert_eq!(gpu, materialised, "GPU path diverges on degenerate reads");
}

#[test]
fn classify_file_streams_fasta_and_fastq() {
    let (db, genomes) = shared_database();
    let dir = std::env::temp_dir().join("metacache_streaming_file_test");
    std::fs::create_dir_all(&dir).unwrap();

    let reads: Vec<SequenceRecord> = (0..30)
        .map(|i| {
            let genome = &genomes[i % 2];
            SequenceRecord::new(format!("r{i}"), genome[200 + i * 31..350 + i * 31].to_vec())
        })
        .collect();
    let materialised = Classifier::new(db).classify_batch(&reads);

    // FASTA.
    let fa_path = dir.join("reads.fa");
    std::fs::write(&fa_path, mc_seqio::fasta::to_string(&reads)).unwrap();
    let streaming = StreamingClassifier::with_config(
        db,
        StreamingConfig {
            batch_records: 7,
            queue_capacity: 2,
            workers: 3,
        },
    );
    let (from_file, summary) = streaming.classify_file(&fa_path).unwrap();
    assert_eq!(from_file, materialised);
    assert_eq!(summary.records, 30);

    // FASTQ (qualities do not affect classification).
    let fq_path = dir.join("reads.fq");
    let fq_records: Vec<SequenceRecord> = reads
        .iter()
        .map(|r| {
            SequenceRecord::with_quality(
                r.header.clone(),
                r.sequence.clone(),
                vec![b'I'; r.sequence.len()],
            )
        })
        .collect();
    std::fs::write(&fq_path, mc_seqio::fastq::to_string(&fq_records)).unwrap();
    let (from_fq, _) = streaming.classify_file(&fq_path).unwrap();
    assert_eq!(from_fq, materialised);

    // A malformed file surfaces the parse error.
    let bad_path = dir.join("bad.fq");
    std::fs::write(&bad_path, "@r1\nACGT\n+\nII\n").unwrap(); // quality length mismatch
    assert!(streaming.classify_file(&bad_path).is_err());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gpu_classify_stream_matches_classify_all() {
    let (db, _) = shared_database();
    let reads = mixed_reads(60, 5);
    let system = MultiGpuSystem::dgx1(2);
    let gpu = GpuClassifier::new(db, &system);
    let (materialised, _) = gpu.classify_all(&reads);

    let queue = BatchQueue::new(3, 8);
    let (tx, rx) = queue.split();
    let producer = {
        let reads = reads.clone();
        std::thread::spawn(move || {
            tx.send_all(reads).unwrap();
        })
    };
    let (streamed, breakdown) = gpu.classify_stream(&rx);
    producer.join().unwrap();
    assert_eq!(streamed, materialised);
    assert!(breakdown.total() > mc_gpu_sim::SimDuration::ZERO);
}

#[test]
fn streaming_matches_gpu_built_database() {
    // The streaming pipeline also serves databases built on the simulated
    // devices (the OTF serving scenario).
    let (_, genomes) = shared_database();
    let mut taxonomy = Taxonomy::with_root();
    taxonomy.add_node(10, 1, Rank::Genus, "G").unwrap();
    taxonomy.add_node(100, 10, Rank::Species, "G a").unwrap();
    taxonomy.add_node(101, 10, Rank::Species, "G b").unwrap();
    let system = MultiGpuSystem::dgx1(2);
    let mut builder =
        GpuBuilder::new(MetaCacheConfig::for_tests(), taxonomy, &system, 1 << 16).expect("builder");
    builder
        .add_target(SequenceRecord::new("refA", genomes[0].clone()), 100)
        .unwrap();
    builder
        .add_target(SequenceRecord::new("refB", genomes[1].clone()), 101)
        .unwrap();
    let db = builder.finish();

    let reads = mixed_reads(40, 9);
    let materialised = Classifier::new(&db).classify_batch(&reads);
    let streaming = StreamingClassifier::new(&db);
    let (streamed, _) = streaming.classify_iter(reads.iter().cloned());
    assert_eq!(streamed, materialised);
}
