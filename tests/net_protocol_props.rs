//! Property tests of the `mc-net` wire protocol: random frames round-trip
//! through encode/decode bit for bit, every truncation of a valid frame is
//! rejected (never mis-decoded, never panicking), corrupt headers are
//! rejected before any allocation, and random garbage never decodes into a
//! `Results`/`HelloAck` frame a client would trust.

use proptest::collection::vec;
use proptest::prelude::*;

use mc_net::protocol::{
    decode_classify_into, encode_classify, encode_classify_packed, read_frame, ErrorCode, Frame,
    NetError, ProtocolError, ResultEntry, MAX_FRAME_LEN,
};
use mc_seqio::SequenceRecord;

fn dna(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    vec(
        prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T'), Just(b'N')],
        0..max_len,
    )
}

/// DNA with the full mess the packed encoding must carry byte-exactly:
/// upper/lower case, `N` runs, `U`, and stray garbage bytes (ACGT-biased
/// by repetition so most draws stay packable).
fn messy_dna(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    vec(
        prop_oneof![
            Just(b'A'),
            Just(b'C'),
            Just(b'G'),
            Just(b'T'),
            Just(b'A'),
            Just(b'C'),
            Just(b'G'),
            Just(b'T'),
            Just(b'N'),
            Just(b'N'),
            Just(b'a'),
            Just(b't'),
            Just(b'U'),
            Just(b'-'),
            Just(0xFFu8),
        ],
        0..max_len,
    )
}

/// Build a random `SequenceRecord` from primitive draws (optionally paired).
fn record_from(
    header_bytes: &[u8],
    sequence: Vec<u8>,
    quality: Vec<u8>,
    mate_sequence: Option<Vec<u8>>,
) -> SequenceRecord {
    // Headers are arbitrary UTF-8; map raw bytes into a printable subset.
    let header: String = header_bytes
        .iter()
        .map(|b| (b' ' + (b % 64)) as char)
        .collect();
    let mut record = SequenceRecord::with_quality(header, sequence, quality);
    if let Some(mate) = mate_sequence {
        record.mate = Some(Box::new(SequenceRecord::new("mate", mate)));
    }
    record
}

fn roundtrip(frame: &Frame) -> Frame {
    let bytes = frame.encode().expect("encodable frame");
    // The envelope is exactly [len][type][payload].
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    assert_eq!(len as usize, bytes.len() - 4);
    assert!((1..=MAX_FRAME_LEN).contains(&len));
    Frame::decode(bytes[4], &bytes[5..]).expect("decodable frame")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn classify_frames_roundtrip(
        request_id in any::<u64>(),
        headers in vec(vec(any::<u8>(), 0..12), 0..8),
        paired in any::<bool>(),
        seq_len in 0usize..200,
    ) {
        let reads: Vec<SequenceRecord> = headers
            .iter()
            .enumerate()
            .map(|(i, header)| {
                let mut rng_len = (seq_len + i * 7) % 200;
                if i % 3 == 0 {
                    rng_len = 0; // empty reads must survive the wire too
                }
                let sequence = vec![b"ACGT"[i % 4]; rng_len];
                let quality = if i % 2 == 0 { vec![b'I'; rng_len] } else { Vec::new() };
                let mate = (paired && i % 4 == 1).then(|| vec![b'T'; (i * 13) % 90]);
                record_from(header, sequence, quality, mate)
            })
            .collect();
        let frame = Frame::Classify { request_id, reads };
        prop_assert_eq!(roundtrip(&frame), frame);
    }

    /// The tentpole property: for any record set — `N` runs, lower case,
    /// garbage bytes, empty reads, mates, qualities — the packed and the
    /// verbatim encodings both round-trip byte-exactly to the same reads,
    /// whether decoded through `Frame::decode` or through the server's
    /// buffer-reusing `decode_classify_into`.
    #[test]
    fn packed_and_verbatim_roundtrip_bit_identically(
        request_id in any::<u64>(),
        sequences in vec(messy_dna(180), 0..8),
        with_quality in any::<bool>(),
        with_mates in any::<bool>(),
    ) {
        let reads: Vec<SequenceRecord> = sequences
            .iter()
            .enumerate()
            .map(|(i, seq)| {
                let quality = if with_quality && i % 2 == 0 {
                    vec![b'I'; seq.len()]
                } else {
                    Vec::new()
                };
                let mut record =
                    SequenceRecord::with_quality(format!("read {i}"), seq.clone(), quality);
                if with_mates && i % 3 == 1 {
                    let mate_seq: Vec<u8> = seq.iter().rev().copied().collect();
                    record.mate = Some(Box::new(SequenceRecord::new("mate", mate_seq)));
                }
                record
            })
            .collect();

        let verbatim = encode_classify(request_id, &reads).unwrap();
        let packed = encode_classify_packed(request_id, &reads).unwrap();

        for (bytes, expect_type) in [(&verbatim, 3u8), (&packed, 7u8)] {
            prop_assert_eq!(bytes[4], expect_type);
            // Through the owned decoder …
            let (decoded_id, decoded) = match Frame::decode(bytes[4], &bytes[5..]).unwrap() {
                Frame::Classify { request_id, reads }
                | Frame::ClassifyPacked { request_id, reads } => (request_id, reads),
                other => panic!("unexpected frame {other:?}"),
            };
            prop_assert_eq!(decoded_id, request_id);
            prop_assert_eq!(&decoded, &reads);
            // … and through the zero-copy decoder over a dirty buffer.
            let mut buffer = vec![
                SequenceRecord::with_quality("stale", vec![b'T'; 64], vec![b'#'; 64])
                    .with_mate(SequenceRecord::new("stale mate", vec![b'A'; 32]));
                3
            ];
            let got_id = decode_classify_into(bytes[4], &bytes[5..], &mut buffer).unwrap();
            prop_assert_eq!(got_id, request_id);
            prop_assert_eq!(&buffer, &reads);
        }
    }

    /// On ACGT-only payloads the packed frame shrinks towards 4× (bounded
    /// by headers and framing); it never grows beyond verbatim + one flag
    /// byte per record, whatever the input.
    #[test]
    fn packed_frames_never_inflate(
        sequences in vec(messy_dna(300), 1..6),
    ) {
        let reads: Vec<SequenceRecord> = sequences
            .iter()
            .enumerate()
            .map(|(i, seq)| SequenceRecord::new(format!("r{i}"), seq.clone()))
            .collect();
        let verbatim = encode_classify(1, &reads).unwrap();
        let packed = encode_classify_packed(1, &reads).unwrap();
        prop_assert!(packed.len() <= verbatim.len() + reads.len());
    }

    /// A FASTQ record whose quality length differs from its sequence length
    /// must be rejected — for the read and for its mate, at encode time and
    /// on a hand-crafted wire frame.
    #[test]
    fn quality_length_mismatch_frames_are_rejected(
        seq in dna(60),
        qual_delta in 1usize..20,
        in_mate in any::<bool>(),
    ) {
        let quality = vec![b'I'; seq.len() + qual_delta];
        let bad = SequenceRecord::with_quality("bad", seq.clone(), quality.clone());
        let record = if in_mate {
            SequenceRecord::new("carrier", b"ACGT".to_vec()).with_mate(bad)
        } else {
            bad
        };
        let reads = vec![record];
        prop_assert!(encode_classify(0, &reads).is_err());
        prop_assert!(encode_classify_packed(0, &reads).is_err());

        // Hand-craft the v1 wire image the encoder now refuses to produce.
        let mut payload = Vec::new();
        payload.extend_from_slice(&0u64.to_le_bytes()); // request id
        payload.extend_from_slice(&1u32.to_le_bytes()); // read count
        let put_record = |payload: &mut Vec<u8>, seq: &[u8], qual: &[u8], mate: bool| {
            payload.extend_from_slice(&1u16.to_le_bytes());
            payload.push(b'r');
            payload.extend_from_slice(&(seq.len() as u32).to_le_bytes());
            payload.extend_from_slice(seq);
            payload.extend_from_slice(&(qual.len() as u32).to_le_bytes());
            payload.extend_from_slice(qual);
            payload.push(u8::from(mate));
        };
        if in_mate {
            put_record(&mut payload, b"ACGT", b"", true);
        }
        put_record(&mut payload, &seq, &quality, false);
        prop_assert_eq!(
            Frame::decode(3, &payload),
            Err(ProtocolError::Malformed("quality/sequence length mismatch"))
        );
    }

    #[test]
    fn results_frames_roundtrip(
        request_id in any::<u64>(),
        raw in vec((any::<u8>(), any::<u32>(), any::<u32>()), 0..40),
        tag in any::<bool>(),
        tag_value in any::<u64>(),
    ) {
        let generation = tag.then_some(tag_value);
        let entries: Vec<ResultEntry> = raw
            .iter()
            .map(|&(status, taxon, hits)| ResultEntry {
                status: status & 0b111,
                taxon,
                rank: status.rotate_left(3),
                best_target: taxon ^ 0xABCD,
                best_hits: hits,
            })
            .collect();
        let frame = Frame::Results { request_id, entries, generation };
        prop_assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn hello_and_error_frames_roundtrip(
        magic in any::<u32>(),
        version in any::<u16>(),
        batch in any::<u32>(),
        credit in any::<u32>(),
    ) {
        let hello = Frame::Hello {
            magic,
            version,
            batch_records: batch,
            max_in_flight: credit,
            auth_token: None,
        };
        prop_assert_eq!(roundtrip(&hello), hello);
        let ack = Frame::HelloAck {
            version,
            credits: credit,
            batch_records: batch,
            backend: format!("backend-{}", magic % 1000),
        };
        prop_assert_eq!(roundtrip(&ack), ack);
        let error = Frame::Error {
            code: ErrorCode::from_u16(version),
            message: format!("error {version}"),
        };
        prop_assert_eq!(roundtrip(&error), error);
        prop_assert_eq!(roundtrip(&Frame::Goodbye), Frame::Goodbye);
    }

    /// Every strict prefix of a valid frame is rejected by the stream
    /// reader: either a clean "no frame yet" at offset 0, a disconnect, or
    /// a protocol error — never a successfully decoded frame, never a
    /// panic.
    #[test]
    fn truncations_never_decode(
        sequence in messy_dna(120),
        cut_fraction in 0u32..1000,
        packed in any::<bool>(),
    ) {
        let reads = vec![
            SequenceRecord::new("a read", sequence.clone()),
            SequenceRecord::with_quality("q", sequence, b"".to_vec()),
        ];
        let bytes = if packed {
            Frame::ClassifyPacked { request_id: 7, reads }.encode().unwrap()
        } else {
            Frame::Classify { request_id: 7, reads }.encode().unwrap()
        };
        let cut = (cut_fraction as usize * (bytes.len() - 1)) / 1000;
        let mut cursor = std::io::Cursor::new(&bytes[..cut]);
        match read_frame(&mut cursor) {
            // The clean-EOF boundary is exactly 0 bytes: a partial length
            // prefix reads as a disconnect (regression for the
            // `read_exact`-maps-everything-to-EOF bug).
            Ok(None) => prop_assert!(cut == 0, "EOF-at-boundary only with 0 bytes, not {cut}"),
            Ok(Some(_)) => prop_assert!(false, "decoded a truncated frame ({cut} bytes)"),
            Err(NetError::Disconnected) | Err(NetError::Protocol(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    /// Corrupting the length header never panics and never silently
    /// succeeds with a different payload length than announced.
    #[test]
    fn corrupt_headers_are_rejected(len_word in any::<u32>()) {
        let valid = Frame::Goodbye.encode().unwrap();
        let mut corrupted = valid.clone();
        corrupted[0..4].copy_from_slice(&len_word.to_le_bytes());
        let mut cursor = std::io::Cursor::new(corrupted);
        match read_frame(&mut cursor) {
            // Only the true length may decode the original frame.
            Ok(Some(frame)) => {
                prop_assert_eq!(len_word, 1);
                prop_assert_eq!(frame, Frame::Goodbye);
            }
            Ok(None) => prop_assert!(false, "corrupt header read as clean EOF"),
            Err(NetError::Protocol(ProtocolError::FrameTooLarge(l))) => {
                prop_assert!(l == 0 || l > MAX_FRAME_LEN);
            }
            Err(NetError::Disconnected) => prop_assert!(len_word > 1),
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    /// Random garbage payloads never decode into a frame (for any type tag)
    /// without an explicit error — i.e. the decoder never panics and
    /// trailing bytes are always rejected.
    #[test]
    fn random_payloads_never_panic(
        frame_type in any::<u8>(),
        payload in vec(any::<u8>(), 0..300),
    ) {
        // Either a clean decode (possible: some garbage is a valid frame)
        // or a typed error; the property is "no panic, no partial reads".
        if let Ok(frame) = Frame::decode(frame_type, &payload) {
            // Whatever decoded must re-encode to an equivalent frame.
            let reencoded = frame.encode().unwrap();
            prop_assert_eq!(Frame::decode(reencoded[4], &reencoded[5..]).unwrap(), frame);
        }
    }
}
