//! Property tests of the `mc-net` wire protocol: random frames round-trip
//! through encode/decode bit for bit, every truncation of a valid frame is
//! rejected (never mis-decoded, never panicking), corrupt headers are
//! rejected before any allocation, and random garbage never decodes into a
//! `Results`/`HelloAck` frame a client would trust.

use proptest::collection::vec;
use proptest::prelude::*;

use mc_net::protocol::{
    read_frame, ErrorCode, Frame, NetError, ProtocolError, ResultEntry, MAX_FRAME_LEN,
};
use mc_seqio::SequenceRecord;

fn dna(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    vec(
        prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T'), Just(b'N')],
        0..max_len,
    )
}

/// Build a random `SequenceRecord` from primitive draws (optionally paired).
fn record_from(
    header_bytes: &[u8],
    sequence: Vec<u8>,
    quality: Vec<u8>,
    mate_sequence: Option<Vec<u8>>,
) -> SequenceRecord {
    // Headers are arbitrary UTF-8; map raw bytes into a printable subset.
    let header: String = header_bytes
        .iter()
        .map(|b| (b' ' + (b % 64)) as char)
        .collect();
    let mut record = SequenceRecord::with_quality(header, sequence, quality);
    if let Some(mate) = mate_sequence {
        record.mate = Some(Box::new(SequenceRecord::new("mate", mate)));
    }
    record
}

fn roundtrip(frame: &Frame) -> Frame {
    let bytes = frame.encode().expect("encodable frame");
    // The envelope is exactly [len][type][payload].
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    assert_eq!(len as usize, bytes.len() - 4);
    assert!((1..=MAX_FRAME_LEN).contains(&len));
    Frame::decode(bytes[4], &bytes[5..]).expect("decodable frame")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn classify_frames_roundtrip(
        request_id in any::<u64>(),
        headers in vec(vec(any::<u8>(), 0..12), 0..8),
        paired in any::<bool>(),
        seq_len in 0usize..200,
    ) {
        let reads: Vec<SequenceRecord> = headers
            .iter()
            .enumerate()
            .map(|(i, header)| {
                let mut rng_len = (seq_len + i * 7) % 200;
                if i % 3 == 0 {
                    rng_len = 0; // empty reads must survive the wire too
                }
                let sequence = vec![b"ACGT"[i % 4]; rng_len];
                let quality = if i % 2 == 0 { vec![b'I'; rng_len] } else { Vec::new() };
                let mate = (paired && i % 4 == 1).then(|| vec![b'T'; (i * 13) % 90]);
                record_from(header, sequence, quality, mate)
            })
            .collect();
        let frame = Frame::Classify { request_id, reads };
        prop_assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn results_frames_roundtrip(
        request_id in any::<u64>(),
        raw in vec((any::<u8>(), any::<u32>(), any::<u32>()), 0..40),
    ) {
        let entries: Vec<ResultEntry> = raw
            .iter()
            .map(|&(status, taxon, hits)| ResultEntry {
                status: status & 0b111,
                taxon,
                rank: status.rotate_left(3),
                best_target: taxon ^ 0xABCD,
                best_hits: hits,
            })
            .collect();
        let frame = Frame::Results { request_id, entries };
        prop_assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn hello_and_error_frames_roundtrip(
        magic in any::<u32>(),
        version in any::<u16>(),
        batch in any::<u32>(),
        credit in any::<u32>(),
    ) {
        let hello = Frame::Hello {
            magic,
            version,
            batch_records: batch,
            max_in_flight: credit,
        };
        prop_assert_eq!(roundtrip(&hello), hello);
        let ack = Frame::HelloAck {
            version,
            credits: credit,
            batch_records: batch,
            backend: format!("backend-{}", magic % 1000),
        };
        prop_assert_eq!(roundtrip(&ack), ack);
        let error = Frame::Error {
            code: ErrorCode::from_u16(version),
            message: format!("error {version}"),
        };
        prop_assert_eq!(roundtrip(&error), error);
        prop_assert_eq!(roundtrip(&Frame::Goodbye), Frame::Goodbye);
    }

    /// Every strict prefix of a valid frame is rejected by the stream
    /// reader: either a clean "no frame yet" at offset 0, a disconnect, or
    /// a protocol error — never a successfully decoded frame, never a
    /// panic.
    #[test]
    fn truncations_never_decode(
        sequence in dna(120),
        cut_fraction in 0u32..1000,
    ) {
        let frame = Frame::Classify {
            request_id: 7,
            reads: vec![
                SequenceRecord::new("a read", sequence.clone()),
                SequenceRecord::with_quality("q", sequence, b"".to_vec()),
            ],
        };
        let bytes = frame.encode().unwrap();
        let cut = (cut_fraction as usize * (bytes.len() - 1)) / 1000;
        let mut cursor = std::io::Cursor::new(&bytes[..cut]);
        match read_frame(&mut cursor) {
            Ok(None) => prop_assert!(cut < 4, "EOF-at-boundary only before the header"),
            Ok(Some(_)) => prop_assert!(false, "decoded a truncated frame ({cut} bytes)"),
            Err(NetError::Disconnected) | Err(NetError::Protocol(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    /// Corrupting the length header never panics and never silently
    /// succeeds with a different payload length than announced.
    #[test]
    fn corrupt_headers_are_rejected(len_word in any::<u32>()) {
        let valid = Frame::Goodbye.encode().unwrap();
        let mut corrupted = valid.clone();
        corrupted[0..4].copy_from_slice(&len_word.to_le_bytes());
        let mut cursor = std::io::Cursor::new(corrupted);
        match read_frame(&mut cursor) {
            // Only the true length may decode the original frame.
            Ok(Some(frame)) => {
                prop_assert_eq!(len_word, 1);
                prop_assert_eq!(frame, Frame::Goodbye);
            }
            Ok(None) => prop_assert!(false, "corrupt header read as clean EOF"),
            Err(NetError::Protocol(ProtocolError::FrameTooLarge(l))) => {
                prop_assert!(l == 0 || l > MAX_FRAME_LEN);
            }
            Err(NetError::Disconnected) => prop_assert!(len_word > 1),
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    /// Random garbage payloads never decode into a frame (for any type tag)
    /// without an explicit error — i.e. the decoder never panics and
    /// trailing bytes are always rejected.
    #[test]
    fn random_payloads_never_panic(
        frame_type in any::<u8>(),
        payload in vec(any::<u8>(), 0..300),
    ) {
        // Either a clean decode (possible: some garbage is a valid frame)
        // or a typed error; the property is "no panic, no partial reads".
        if let Ok(frame) = Frame::decode(frame_type, &payload) {
            // Whatever decoded must re-encode to an equivalent frame.
            let reencoded = frame.encode().unwrap();
            prop_assert_eq!(Frame::decode(reencoded[4], &reencoded[5..]).unwrap(), frame);
        }
    }
}
