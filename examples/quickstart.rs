//! Quickstart: build a small reference database and classify a handful of
//! reads with the public MetaCache API.
//!
//! Run with: `cargo run --release --example quickstart`

use mc_seqio::SequenceRecord;
use mc_taxonomy::{Rank, Taxonomy};
use metacache::build::CpuBuilder;
use metacache::query::Classifier;
use metacache::MetaCacheConfig;

fn synthetic_genome(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b"ACGT"[(state >> 33) as usize % 4]
        })
        .collect()
}

fn main() {
    // 1. A taxonomy: one genus with two species.
    let mut taxonomy = Taxonomy::with_root();
    taxonomy.add_node(10, 1, Rank::Genus, "Exemplar").unwrap();
    taxonomy
        .add_node(100, 10, Rank::Species, "Exemplar alpha")
        .unwrap();
    taxonomy
        .add_node(101, 10, Rank::Species, "Exemplar beta")
        .unwrap();

    // 2. Two reference "genomes".
    let genome_alpha = synthetic_genome(50_000, 1);
    let genome_beta = synthetic_genome(50_000, 2);

    // 3. Build the database (CPU build path, paper §4.1).
    let mut builder = CpuBuilder::new(MetaCacheConfig::default(), taxonomy);
    builder
        .add_target(SequenceRecord::new("alpha_ref", genome_alpha.clone()), 100)
        .unwrap();
    builder
        .add_target(SequenceRecord::new("beta_ref", genome_beta.clone()), 101)
        .unwrap();
    let stats = builder.stats();
    let database = builder.finish();
    println!(
        "built database: {} targets, {} windows, {} locations, {} bytes of tables",
        stats.targets,
        stats.windows,
        stats.locations_inserted,
        database.table_bytes()
    );

    // 4. Classify reads drawn from both genomes plus an unrelated one.
    let classifier = Classifier::new(&database);
    let queries = vec![
        ("from alpha", genome_alpha[10_000..10_120].to_vec()),
        ("from beta", genome_beta[25_000..25_150].to_vec()),
        ("unrelated", synthetic_genome(120, 999)),
    ];
    for (label, sequence) in queries {
        let result = classifier.classify(&SequenceRecord::new(label, sequence));
        let name = database
            .taxonomy
            .name(result.taxon)
            .unwrap_or("unclassified");
        println!(
            "{label:>12}: taxon {:>4} ({name}), best hits = {}",
            result.taxon, result.best_hits
        );
    }
}
