//! Network serving round-trip: a TCP server over a resident engine, three
//! concurrent clients, results verified bit-identical to the in-process
//! classifier.
//!
//! Builds a small reference database, starts a [`metacache::serving::ServingEngine`]
//! with an [`mc_net::NetServer`] front-end on an ephemeral loopback port,
//! and serves three concurrent [`mc_net::NetClient`]s — the full
//! socket → session → worker-pool → socket path of `docs/SERVING.md`.
//!
//! Run with: `cargo run --release --example net_roundtrip`

use std::sync::Arc;

use mc_net::{NetClient, NetServer};
use mc_seqio::SequenceRecord;
use mc_taxonomy::{Rank, Taxonomy};
use metacache::build::CpuBuilder;
use metacache::query::Classifier;
use metacache::serving::{EngineConfig, ServingEngine};
use metacache::MetaCacheConfig;

fn synthetic_genome(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b"ACGT"[(state >> 33) as usize % 4]
        })
        .collect()
}

fn main() {
    // 1. Build a two-species database and put a resident engine over it.
    let mut taxonomy = Taxonomy::with_root();
    taxonomy.add_node(10, 1, Rank::Genus, "Exemplar").unwrap();
    taxonomy
        .add_node(100, 10, Rank::Species, "Exemplar alpha")
        .unwrap();
    taxonomy
        .add_node(101, 10, Rank::Species, "Exemplar beta")
        .unwrap();
    let genomes = [synthetic_genome(30_000, 7), synthetic_genome(30_000, 8)];
    let mut builder = CpuBuilder::new(MetaCacheConfig::default(), taxonomy);
    builder
        .add_target(SequenceRecord::new("alpha", genomes[0].clone()), 100)
        .unwrap();
    builder
        .add_target(SequenceRecord::new("beta", genomes[1].clone()), 101)
        .unwrap();
    let db = Arc::new(builder.finish());
    let engine = ServingEngine::host_with_config(
        Arc::clone(&db),
        EngineConfig {
            workers: 2,
            queue_capacity: 4,
            batch_records: 32,
            session_max_in_flight: 0,
            ..EngineConfig::default()
        },
    );

    // 2. Bind the TCP front-end on an ephemeral loopback port.
    let server = NetServer::bind(&engine, "127.0.0.1:0").expect("bind loopback");
    let handle = server.handle();
    let addr = handle.local_addr();
    println!("serving on {addr} (backend: {})", engine.backend_name());

    // 3. Three concurrent clients stream their own read sets.
    std::thread::scope(|scope| {
        scope.spawn(|| server.run().expect("server run"));

        let workers: Vec<_> = (0..3)
            .map(|c| {
                let db = Arc::clone(&db);
                let genomes = &genomes;
                scope.spawn(move || {
                    let reads: Vec<SequenceRecord> = (0..300)
                        .map(|i| {
                            let genome = &genomes[(c + i) % 2];
                            let offset = (c * 1000 + i * 83) % (genome.len() - 160);
                            SequenceRecord::new(
                                format!("c{c}_r{i}"),
                                genome[offset..offset + 150].to_vec(),
                            )
                        })
                        .collect();
                    let expected = Classifier::new(db).classify_batch(&reads);

                    let mut client = NetClient::connect(addr).expect("connect");
                    let (got, summary) = client
                        .classify_iter(reads.iter().cloned())
                        .expect("classify over the wire");
                    assert_eq!(got, expected, "network results diverged");
                    let classified = got.iter().filter(|r| r.is_classified()).count();
                    println!(
                        "client {c}: {} reads in {} requests (peak {} in flight, credits {}), \
                         {classified} classified — bit-identical to in-process",
                        summary.reads,
                        summary.requests,
                        summary.peak_in_flight,
                        client.credits()
                    );
                })
            })
            .collect();
        for worker in workers {
            worker.join().unwrap();
        }

        // 4. Graceful drain: server first, then the engine.
        handle.shutdown();
    });
    let stats = engine.shutdown();
    println!(
        "engine drained: {} records over {} sessions, {} worker panics",
        stats.records_classified, stats.sessions_opened, stats.worker_panics
    );
}
