//! Mock-community accuracy analysis: the HiSeq/MiSeq-style experiment of
//! Table 6 on a synthetic bacterial community, comparing the MetaCache CPU
//! path, the simulated-GPU path and the Kraken2-style baseline.
//!
//! Run with: `cargo run --release --example mock_community`

use mc_datagen::community::{RefSeqLikeSpec, ReferenceCollection};
use mc_datagen::profiles::DatasetProfile;
use mc_datagen::reads::ReadSimulator;
use mc_datagen::taxonomy_gen::TaxonomySpec;
use mc_gpu_sim::MultiGpuSystem;
use mc_kraken2::{Kraken2Builder, Kraken2Classifier, Kraken2Config};
use mc_taxonomy::TaxonId;
use metacache::build::{estimate_locations, CpuBuilder, GpuBuilder};
use metacache::classify::{Classification, ClassificationEvaluation};
use metacache::gpu::GpuClassifier;
use metacache::query::Classifier;
use metacache::MetaCacheConfig;

fn main() {
    // A mock community: 6 genera × 3 species.
    let collection = ReferenceCollection::refseq_like(RefSeqLikeSpec {
        taxonomy: TaxonomySpec {
            genera: 6,
            species_per_genus: 3,
            families: 3,
        },
        genome_length: 40_000,
        strains_per_species: 1,
        seed: 7,
    });
    println!(
        "reference collection: {} species, {} targets, {} bases",
        collection.species_count(),
        collection.target_count(),
        collection.total_bases()
    );

    // Simulate a HiSeq-like read set with per-read ground truth.
    let reads = ReadSimulator::new(DatasetProfile::hiseq(), 2_000)
        .with_seed(11)
        .simulate(&collection);
    let truth: Vec<TaxonId> = reads.truth.iter().map(|t| t.taxon).collect();
    let (min, max, avg) = reads.length_stats();
    println!(
        "simulated {} reads (len {min}-{max}, avg {avg:.1})",
        reads.len()
    );

    let config = MetaCacheConfig::default();

    // MetaCache CPU.
    let mut cpu_builder = CpuBuilder::new(config, collection.taxonomy.clone());
    for t in &collection.targets {
        cpu_builder.add_target(t.to_record(), t.taxon).unwrap();
    }
    let cpu_db = cpu_builder.finish();
    let cpu_calls = Classifier::new(&cpu_db).classify_batch(&reads.reads);
    report("MetaCache CPU", &cpu_db, &cpu_calls, &truth);

    // MetaCache GPU (4 simulated devices).
    let system = MultiGpuSystem::dgx1(4);
    let records = collection.to_records();
    let expected = estimate_locations(&config, &records) / 4 + 4096;
    let mut gpu_builder =
        GpuBuilder::new(config, collection.taxonomy.clone(), &system, expected).unwrap();
    for t in &collection.targets {
        gpu_builder.add_target(t.to_record(), t.taxon).unwrap();
    }
    println!(
        "GPU build simulated device time: {}",
        gpu_builder.stats().sim_build_time
    );
    let gpu_db = gpu_builder.finish();
    let (gpu_calls, breakdown) = GpuClassifier::new(&gpu_db, &system).classify_all(&reads.reads);
    report("MetaCache GPU (4 devices)", &gpu_db, &gpu_calls, &truth);
    println!(
        "  query stage shares: transfer {:.1}%, sketch+query {:.1}%, compact {:.1}%, sort {:.1}%, top-candidates {:.1}%",
        breakdown.shares()[0] * 100.0,
        breakdown.shares()[1] * 100.0,
        breakdown.shares()[2] * 100.0,
        breakdown.shares()[3] * 100.0,
        breakdown.shares()[4] * 100.0,
    );

    // Kraken2-style baseline.
    let mut kraken_builder =
        Kraken2Builder::new(Kraken2Config::default(), collection.taxonomy.clone()).unwrap();
    for t in &collection.targets {
        kraken_builder.add_target(&t.to_record(), t.taxon).unwrap();
    }
    let kraken_db = kraken_builder.finish();
    let kraken_calls = Kraken2Classifier::new(&kraken_db).classify_batch(&reads.reads);
    let as_metacache: Vec<Classification> = kraken_calls
        .iter()
        .map(|c| {
            if c.is_classified() {
                Classification {
                    taxon: c.taxon,
                    rank: cpu_db.lineages.rank_of(c.taxon),
                    best_target: None,
                    best_hits: c.score as u32,
                }
            } else {
                Classification::unclassified()
            }
        })
        .collect();
    report("Kraken2-style baseline", &cpu_db, &as_metacache, &truth);
}

fn report(name: &str, db: &metacache::Database, calls: &[Classification], truth: &[TaxonId]) {
    let eval = ClassificationEvaluation::evaluate(db, calls, truth);
    println!(
        "{name}: species precision {:.2}% / sensitivity {:.2}%, genus precision {:.2}% / sensitivity {:.2}%",
        eval.species.precision() * 100.0,
        eval.species.sensitivity() * 100.0,
        eval.genus.precision() * 100.0,
        eval.genus.sensitivity() * 100.0
    );
}
