//! Food-ingredient analysis: the KAL_D-style abundance experiment (§6.5).
//!
//! A "sausage" sample with known meat fractions is sequenced (paired-end,
//! FASTQ) and quantified against an AFS-like database of large, scaffolded
//! food genomes merged with a RefSeq-like bacterial background — the use case
//! that motivates MetaCache-GPU's support for custom, on-demand databases.
//!
//! Run with: `cargo run --release --example food_analysis`

use mc_datagen::community::{AfsLikeSpec, RefSeqLikeSpec, ReferenceCollection};
use mc_datagen::profiles::DatasetProfile;
use mc_datagen::reads::ReadSimulator;
use mc_datagen::taxonomy_gen::TaxonomySpec;
use mc_gpu_sim::MultiGpuSystem;
use mc_taxonomy::TaxonId;
use metacache::abundance::AbundanceProfile;
use metacache::pipeline::run_on_the_fly;
use metacache::MetaCacheConfig;

fn main() {
    // Reference database: bacterial background + 4 large food genomes at
    // scaffold level (the AFS-like part).
    let collection = ReferenceCollection::refseq_like(RefSeqLikeSpec {
        taxonomy: TaxonomySpec {
            genera: 5,
            species_per_genus: 2,
            families: 2,
        },
        genome_length: 30_000,
        strains_per_species: 1,
        seed: 21,
    })
    .with_afs_like(AfsLikeSpec {
        genomes: 4,
        genome_length: 200_000,
        scaffolds_per_genome: 40,
        seed: 22,
    });
    println!(
        "database '{}': {} species, {} targets, {} bases",
        collection.name,
        collection.species_count(),
        collection.target_count(),
        collection.total_bases()
    );

    // The sample: beef 50%, pork 25%, horse 15%, mutton 10% (the KAL_D ratios).
    let mut food_species: Vec<TaxonId> = collection
        .targets
        .iter()
        .map(|t| t.taxon)
        .filter(|t| *t >= 600_000)
        .collect();
    food_species.sort_unstable();
    food_species.dedup();
    let truth: Vec<(TaxonId, f64)> = food_species
        .iter()
        .zip([0.50, 0.25, 0.15, 0.10])
        .map(|(t, r)| (*t, r))
        .collect();
    let reads = ReadSimulator::new(DatasetProfile::kal_d(), 3_000)
        .with_abundance(truth.clone())
        .with_seed(23)
        .simulate(&collection);
    println!("sample: {} read pairs", reads.len());

    // On-the-fly pipeline on 4 simulated GPUs: build, then query immediately.
    let references: Vec<_> = collection
        .targets
        .iter()
        .map(|t| (t.to_record(), t.taxon))
        .collect();
    let system = MultiGpuSystem::dgx1(4);
    let report = run_on_the_fly(
        MetaCacheConfig::default(),
        collection.taxonomy.clone(),
        &references,
        &reads.reads,
        &system,
    )
    .expect("pipeline runs");
    println!(
        "on-the-fly pipeline: build {} (time-to-query {}), query {}",
        report.phases.build,
        report.phases.time_to_query(),
        report.phases.query
    );

    // Abundance estimation vs the known composition.
    let profile = AbundanceProfile::estimate(&report.database, &report.classifications);
    println!("component quantification (estimated vs true):");
    for (taxon, expected) in &truth {
        let name = report
            .database
            .taxonomy
            .name(*taxon)
            .unwrap_or("unknown")
            .to_string();
        println!(
            "  {name:<20} estimated {:>5.1}%   true {:>5.1}%",
            profile.fraction(*taxon) * 100.0,
            expected * 100.0
        );
    }
    println!(
        "accumulated deviation {:.1}%, false positives {:.1}%",
        profile.deviation_from(&truth) * 100.0,
        profile.false_positive_fraction(&truth) * 100.0
    );
}
