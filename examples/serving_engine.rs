//! Serving engine: one resident worker pool, one shared database, many
//! concurrent client sessions.
//!
//! Builds a small reference database, moves it behind an `Arc`, starts a
//! [`metacache::serving::ServingEngine`] and serves four concurrent client
//! threads, each streaming its own requests through a session — the
//! serving-system shape the ROADMAP's north star describes.
//!
//! Run with: `cargo run --release --example serving_engine`

use std::sync::Arc;

use mc_seqio::SequenceRecord;
use mc_taxonomy::{Rank, Taxonomy};
use metacache::build::CpuBuilder;
use metacache::serving::{EngineConfig, ServingEngine};
use metacache::MetaCacheConfig;

fn synthetic_genome(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b"ACGT"[(state >> 33) as usize % 4]
        })
        .collect()
}

fn main() {
    // 1. Build a two-species database and share it.
    let mut taxonomy = Taxonomy::with_root();
    taxonomy.add_node(10, 1, Rank::Genus, "Exemplar").unwrap();
    taxonomy
        .add_node(100, 10, Rank::Species, "Exemplar alpha")
        .unwrap();
    taxonomy
        .add_node(101, 10, Rank::Species, "Exemplar beta")
        .unwrap();
    let genomes = [synthetic_genome(50_000, 1), synthetic_genome(50_000, 2)];
    let mut builder = CpuBuilder::new(MetaCacheConfig::default(), taxonomy);
    builder
        .add_target(SequenceRecord::new("alpha_ref", genomes[0].clone()), 100)
        .unwrap();
    builder
        .add_target(SequenceRecord::new("beta_ref", genomes[1].clone()), 101)
        .unwrap();
    let database = Arc::new(builder.finish());

    // 2. One resident engine: the worker pool spawns once and serves every
    //    request from the shared database.
    let engine = ServingEngine::host_with_config(
        Arc::clone(&database),
        EngineConfig {
            workers: 4,
            queue_capacity: 4,
            batch_records: 64,
            session_max_in_flight: 0,
            ..EngineConfig::default()
        },
    );
    println!(
        "engine up: backend={}, {} workers, db = {} targets / {} bytes of tables",
        engine.backend_name(),
        engine.config().workers,
        database.target_count(),
        database.table_bytes()
    );

    // 3. Four concurrent clients, each with its own session and read stream.
    std::thread::scope(|scope| {
        for client in 0..4usize {
            let engine = &engine;
            let genomes = &genomes;
            scope.spawn(move || {
                let mut session = engine.session();
                let genome = &genomes[client % 2];
                let reads = (0..200).map(|i| {
                    let offset = (client * 997 + i * 211) % (genome.len() - 150);
                    SequenceRecord::new(
                        format!("c{client}_r{i}"),
                        genome[offset..offset + 150].to_vec(),
                    )
                });
                let (classifications, summary) = session.classify_iter(reads);
                let expected = if client % 2 == 0 { 100 } else { 101 };
                let correct = classifications
                    .iter()
                    .filter(|c| c.taxon == expected)
                    .count();
                println!(
                    "client {client}: {}/{} reads to taxon {expected}, \
                     peak resident batches {} (bound {})",
                    correct,
                    summary.records,
                    summary.peak_resident_batches,
                    engine.config().effective_session_in_flight()
                );
            });
        }
    });

    // 4. Graceful shutdown: drain in-flight work, join the pool.
    let stats = engine.shutdown();
    println!(
        "engine down: {} sessions served, {} batches / {} records classified, \
         {} worker panics",
        stats.sessions_opened,
        stats.batches_classified,
        stats.records_classified,
        stats.worker_panics
    );
}
