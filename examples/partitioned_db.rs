//! Multi-GPU database partitioning and the write/load vs on-the-fly
//! trade-off (paper §4.3, §6.3): build the same reference set on different
//! device counts, inspect per-device memory, save/load the database, and
//! compare the time-to-query of both workflows.
//!
//! Run with: `cargo run --release --example partitioned_db`

use mc_datagen::community::{RefSeqLikeSpec, ReferenceCollection};
use mc_datagen::profiles::DatasetProfile;
use mc_datagen::reads::ReadSimulator;
use mc_datagen::taxonomy_gen::TaxonomySpec;
use mc_gpu_sim::MultiGpuSystem;
use metacache::pipeline::{run_on_the_fly, run_write_load_query, DiskModel};
use metacache::MetaCacheConfig;

fn main() {
    let collection = ReferenceCollection::refseq_like(RefSeqLikeSpec {
        taxonomy: TaxonomySpec {
            genera: 8,
            species_per_genus: 3,
            families: 4,
        },
        genome_length: 40_000,
        strains_per_species: 1,
        seed: 5,
    });
    let references: Vec<_> = collection
        .targets
        .iter()
        .map(|t| (t.to_record(), t.taxon))
        .collect();
    let reads = ReadSimulator::new(DatasetProfile::hiseq(), 1_000)
        .with_seed(6)
        .simulate(&collection);
    let config = MetaCacheConfig::default();

    for devices in [2usize, 4, 8] {
        let system = MultiGpuSystem::dgx1(devices);
        let otf = run_on_the_fly(
            config,
            collection.taxonomy.clone(),
            &references,
            &reads.reads,
            &system,
        )
        .expect("build fits on the simulated devices");
        println!("=== {devices} simulated V100 devices ===");
        println!(
            "partitions: {}, total table bytes: {:.1} MiB",
            otf.database.partition_count(),
            otf.database.table_bytes() as f64 / (1 << 20) as f64
        );
        for (i, partition) in otf.database.partitions.iter().enumerate() {
            println!(
                "  device {i}: {} targets, {:.1} MiB ({})",
                partition.targets.len(),
                partition.bytes() as f64 / (1 << 20) as f64,
                partition.store.kind()
            );
        }
        println!(
            "on-the-fly: build {}, time-to-query {}",
            otf.phases.build,
            otf.phases.time_to_query()
        );

        let dir = std::env::temp_dir().join(format!("metacache_example_partitioned_{devices}"));
        let wl = run_write_load_query(
            config,
            collection.taxonomy.clone(),
            &references,
            &reads.reads,
            &system,
            DiskModel::default(),
            &dir,
            "example_db",
        )
        .expect("write+load pipeline runs");
        println!(
            "write+load:  build {}, write {}, load {}, time-to-query {} ({} of DB files)",
            wl.phases.build,
            wl.phases.write,
            wl.phases.load,
            wl.phases.time_to_query(),
            format_args!("{:.1} MiB", wl.db_file_bytes as f64 / (1 << 20) as f64)
        );
        let classified_otf = otf
            .classifications
            .iter()
            .filter(|c| c.is_classified())
            .count();
        let classified_wl = wl
            .classifications
            .iter()
            .filter(|c| c.is_classified())
            .count();
        println!(
            "classified reads: OTF {classified_otf}/{} vs W+L {classified_wl}/{} (identical: {})",
            reads.len(),
            reads.len(),
            otf.classifications == wl.classifications
        );
        std::fs::remove_dir_all(&dir).ok();
        println!();
    }
}
