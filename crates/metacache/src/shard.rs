//! Sharded databases and the scatter-gather query layer.
//!
//! The paper's scale-out story is database partitioning: MetaCache-GPU
//! splits a reference database that exceeds one device's memory across
//! multiple GPUs and queries the partitions concurrently (§4.3). This module
//! is the serving-stack generalisation of that idea: a [`ShardedDatabase`]
//! partitions the *targets* of a fully built [`Database`] across N shards —
//! each shard a self-contained `Database` holding only its targets' hash
//! buckets — and a [`ShardedClassifier`] fans every read out to all shards,
//! merges the per-shard [`CandidateList`]s and applies the classification
//! rule once. The [`ShardedBackend`] plugs this scatter-gather layer into
//! the existing [`Backend`] trait, so the
//! [`ServingEngine`][crate::serving::ServingEngine], the streaming pipeline
//! and the `mc-net` front-end serve a sharded database transparently.
//!
//! # Why the merge is bit-equivalent to unsharded accumulation
//!
//! Sharding partitions the *target* space, and every stage of the query
//! pipeline is target-local:
//!
//! 1. **Location gathering** — a shard's tables hold exactly the locations
//!    whose `target` is assigned to it, so the concatenation of all shards'
//!    gathered location lists is a permutation of the unsharded list, and
//!    sorting by `(target, window)` makes each shard's sorted list the
//!    contiguous sub-slice of the global sorted list belonging to its
//!    targets.
//! 2. **Window counting and the sliding-window scan** —
//!    [`top_candidates_into`][crate::candidate::top_candidates_into] never
//!    accumulates across targets (the anchor scan breaks at the first
//!    foreign target), so each target's candidate is computed from that
//!    target's counts alone: identical per shard and globally.
//! 3. **Top-m truncation** — the candidate order
//!    (hits desc, then target asc, then window asc) is a *total* order over
//!    candidates of distinct targets, and a candidate ranking in the global
//!    top-m ranks at least as high within its own shard (a shard holds a
//!    subset of its competitors). Per-shard top-m lists therefore retain
//!    every global top-m candidate, and merging them into a fresh
//!    capacity-m list ([`CandidateList::merge`]) reproduces the global
//!    top-m exactly — including order. The keep-first-on-equal-hits nuance
//!    of [`CandidateList::insert`] only applies to candidates of the *same*
//!    target, which cannot span shards.
//!
//! Step 3 is the subtle part; `tests/sharding.rs` proves it with a property
//! suite over random reference sets, shard counts, skewed and empty shards,
//! and the exhaustive merge oracle in [`crate::candidate`]'s tests.
//!
//! # Construction: split one built database
//!
//! [`ShardedDatabase::from_database`] *splits* a fully built `Database`
//! rather than building shards independently: the global
//! `max_locations_per_feature` cap (254) is applied during the unsharded
//! build, and splitting afterwards guarantees each shard holds exactly the
//! surviving locations of its targets. Building shards independently could
//! retain locations the global build dropped, breaking bit-equivalence.
//! Every shard keeps the **full** target table and taxonomy with global
//! target ids — only the hash tables are subset — so per-shard candidates
//! carry global ids natively and merge without remapping (this is also what
//! lets a remote shard server answer candidate queries in global id space).
//!
//! # Live reload of a sharded database
//!
//! A sharded serving topology swaps epochs (see
//! [`crate::serving::EpochStore`]) at two granularities. **In-process**, one
//! [`ServingEngine::reload_backend`][crate::serving::ServingEngine::reload_backend]
//! call with a fresh `ShardedBackend` replaces *all* shards atomically — a
//! batch is classified either against the old split or the new one, never a
//! mix, because the scatter-gather runs inside a single backend worker
//! pinned to one epoch. **Across the wire** (`mc-serve route` fronting
//! shard servers), the router swaps its metadata epoch first and then
//! reloads each shard server in turn; the router workers compare the
//! generation tags on the shard answers and re-query while the sweep is
//! propagating, so no response merges candidate lists from two different
//! reference sets (`mc_net::router` documents the ordering argument).

use std::collections::BTreeMap;
use std::sync::Arc;

use rayon::prelude::*;

use mc_kmer::{Feature, Location, TargetId};
use mc_seqio::SequenceRecord;

use crate::backend::{Backend, BackendWorker};
use crate::candidate::CandidateList;
use crate::classify::{classify_candidates, Classification};
use crate::database::{CondensedStore, Database, Partition, PartitionStore};
use crate::error::MetaCacheError;
use crate::query::{Classifier, QueryScratch};
use crate::serialize::collect_buckets;

/// An assignment of every target of a database to one of `shard_count`
/// shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shard_count: usize,
    /// `assignment[target_id]` = shard index.
    assignment: Vec<usize>,
}

impl ShardPlan {
    /// Assign `target_count` targets round-robin across `shard_count` shards
    /// (target `t` goes to shard `t % shard_count`) — the same policy the
    /// GPU builder uses to rotate targets over devices.
    pub fn round_robin(target_count: usize, shard_count: usize) -> Result<Self, MetaCacheError> {
        if shard_count == 0 {
            return Err(MetaCacheError::Config(
                "shard count must be at least 1".into(),
            ));
        }
        Ok(Self {
            shard_count,
            assignment: (0..target_count).map(|t| t % shard_count).collect(),
        })
    }

    /// Use an explicit per-target assignment (`assignment[target_id]` =
    /// shard index). Allows skewed plans and shards with zero targets; every
    /// entry must be `< shard_count`.
    pub fn explicit(assignment: Vec<usize>, shard_count: usize) -> Result<Self, MetaCacheError> {
        if shard_count == 0 {
            return Err(MetaCacheError::Config(
                "shard count must be at least 1".into(),
            ));
        }
        if let Some((t, &s)) = assignment
            .iter()
            .enumerate()
            .find(|(_, &s)| s >= shard_count)
        {
            return Err(MetaCacheError::Config(format!(
                "target {t} assigned to shard {s}, but shard count is {shard_count}"
            )));
        }
        Ok(Self {
            shard_count,
            assignment,
        })
    }

    /// Number of shards in the plan.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The shard a target is assigned to.
    pub fn shard_of(&self, target: TargetId) -> Option<usize> {
        self.assignment.get(target as usize).copied()
    }

    /// The full per-target assignment.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }
}

/// A database split into N self-contained shards plus a table-free metadata
/// view, queried by scatter-gather (see the module docs for the
/// bit-equivalence argument).
pub struct ShardedDatabase {
    /// Table-free metadata view: full config/targets/taxonomy/lineages, no
    /// partitions. Classification decisions and serving metadata
    /// ([`Backend::database`]) come from here.
    meta: Arc<Database>,
    /// One self-contained database per shard: full metadata (global target
    /// ids), one condensed partition holding only that shard's buckets.
    shards: Vec<Arc<Database>>,
    plan: ShardPlan,
}

impl ShardedDatabase {
    /// Split a fully built database into shards according to `plan`.
    ///
    /// Consumes the database: its buckets are re-grouped by the owning
    /// target's shard and rebuilt as one condensed partition per shard. The
    /// plan must assign exactly the database's targets.
    pub fn from_database(db: Database, plan: ShardPlan) -> Result<Self, MetaCacheError> {
        if plan.assignment.len() != db.target_count() {
            return Err(MetaCacheError::Config(format!(
                "shard plan assigns {} targets, database has {}",
                plan.assignment.len(),
                db.target_count()
            )));
        }
        // Split every bucket of every partition by the owning target's
        // shard. A BTreeMap per shard re-merges features that span source
        // partitions (multi-device builds) into one bucket per feature.
        let mut shard_buckets: Vec<BTreeMap<Feature, Vec<Location>>> =
            (0..plan.shard_count).map(|_| BTreeMap::new()).collect();
        for partition in &db.partitions {
            for (feature, bucket) in collect_buckets(partition) {
                for loc in bucket {
                    let shard = plan.assignment[loc.target as usize];
                    shard_buckets[shard].entry(feature).or_default().push(loc);
                }
            }
        }

        let meta = Arc::new(db.metadata_view());
        let shards = shard_buckets
            .into_iter()
            .enumerate()
            .map(|(shard, buckets)| {
                let targets: Vec<TargetId> = plan
                    .assignment
                    .iter()
                    .enumerate()
                    .filter(|&(_, &s)| s == shard)
                    .map(|(t, _)| t as TargetId)
                    .collect();
                Arc::new(Database {
                    config: db.config,
                    targets: db.targets.clone(),
                    taxonomy: db.taxonomy.clone(),
                    lineages: db.lineages.clone(),
                    partitions: vec![Partition {
                        store: PartitionStore::Condensed(CondensedStore::from_buckets(buckets)),
                        targets,
                    }],
                })
            })
            .collect();
        Ok(Self { meta, shards, plan })
    }

    /// Split a database round-robin across `shard_count` shards.
    pub fn round_robin(db: Database, shard_count: usize) -> Result<Self, MetaCacheError> {
        let plan = ShardPlan::round_robin(db.target_count(), shard_count)?;
        Self::from_database(db, plan)
    }

    /// The table-free metadata view (full targets/taxonomy, no hash
    /// tables) — what classification decisions and serving metadata use.
    pub fn meta(&self) -> &Arc<Database> {
        &self.meta
    }

    /// The per-shard databases (full metadata, subset tables).
    pub fn shards(&self) -> &[Arc<Database>] {
        &self.shards
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The plan the database was split with.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Total bytes of all shards' hash tables.
    pub fn table_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.table_bytes()).sum()
    }
}

/// Reusable per-worker scratch for scatter-gather classification: one
/// [`QueryScratch`] shared sequentially across the shard queries plus the
/// merged candidate list.
#[derive(Debug, Clone, Default)]
pub struct ShardedScratch {
    scratch: QueryScratch,
    merged: CandidateList,
}

impl ShardedScratch {
    /// Create an empty scratch; buffers size themselves on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Scatter-gather classifier over a [`ShardedDatabase`]: every read is
/// queried against all shards and the per-shard candidate lists are merged
/// before the classification rule runs once on the merged list.
///
/// Produces classifications bit-identical to
/// [`Classifier::classify_batch`] on the unsharded database (the module
/// docs give the argument; `tests/sharding.rs` the proof).
pub struct ShardedClassifier {
    db: Arc<ShardedDatabase>,
    shards: Vec<Classifier<Arc<Database>>>,
}

impl ShardedClassifier {
    /// Create a classifier over a shared sharded database.
    pub fn new(db: Arc<ShardedDatabase>) -> Self {
        let shards = db
            .shards()
            .iter()
            .map(|s| Classifier::new(Arc::clone(s)))
            .collect();
        Self { db, shards }
    }

    /// The sharded database this classifier queries.
    pub fn database(&self) -> &ShardedDatabase {
        &self.db
    }

    /// Compute the merged candidate list of one read (or read pair) into
    /// `scratch.merged`, reusing every buffer. Returns a reference to the
    /// merged list.
    pub fn candidates_with<'s>(
        &self,
        record: &SequenceRecord,
        scratch: &'s mut ShardedScratch,
    ) -> &'s CandidateList {
        scratch.merged.reset(self.db.meta.config.top_candidates);
        for shard in &self.shards {
            let list = shard.candidates_with(record, &mut scratch.scratch);
            scratch.merged.merge(list);
        }
        &scratch.merged
    }

    /// Classify one read (or read pair) reusing `scratch` — the hot path.
    pub fn classify_with(
        &self,
        record: &SequenceRecord,
        scratch: &mut ShardedScratch,
    ) -> Classification {
        self.candidates_with(record, scratch);
        classify_candidates(&self.db.meta, &self.db.meta.config, &scratch.merged)
    }

    /// Classify one read (or read pair).
    pub fn classify(&self, record: &SequenceRecord) -> Classification {
        let mut scratch = ShardedScratch::new();
        self.classify_with(record, &mut scratch)
    }

    /// Classify a batch of reads in parallel, one [`ShardedScratch`] per
    /// rayon worker — mirrors [`Classifier::classify_batch`].
    pub fn classify_batch(&self, records: &[SequenceRecord]) -> Vec<Classification> {
        records
            .par_iter()
            .map_init(ShardedScratch::new, |scratch, r| {
                self.classify_with(r, scratch)
            })
            .collect()
    }
}

/// The sharded host execution path behind the [`Backend`] trait: workers
/// scatter-gather across all shards in-process. The serving engine, the
/// streaming pipeline and the `mc-net` server drive it exactly like the
/// unsharded [`HostBackend`][crate::backend::HostBackend] — zero protocol
/// changes.
pub struct ShardedBackend {
    db: Arc<ShardedDatabase>,
}

impl ShardedBackend {
    /// Create a backend over a shared sharded database.
    pub fn new(db: Arc<ShardedDatabase>) -> Self {
        Self { db }
    }

    /// The sharded database this backend serves.
    pub fn sharded_database(&self) -> &Arc<ShardedDatabase> {
        &self.db
    }
}

impl Backend for ShardedBackend {
    fn database(&self) -> &Database {
        self.db.meta()
    }

    fn name(&self) -> &'static str {
        "sharded-host"
    }

    fn worker(&self) -> Box<dyn BackendWorker + '_> {
        Box::new(ShardedWorker {
            classifier: ShardedClassifier::new(Arc::clone(&self.db)),
            scratch: ShardedScratch::new(),
        })
    }
}

struct ShardedWorker {
    classifier: ShardedClassifier,
    scratch: ShardedScratch,
}

impl BackendWorker for ShardedWorker {
    fn classify_batch_into(&mut self, records: &[SequenceRecord], out: &mut Vec<Classification>) {
        out.extend(
            records
                .iter()
                .map(|r| self.classifier.classify_with(r, &mut self.scratch)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::CpuBuilder;
    use crate::config::MetaCacheConfig;
    use mc_taxonomy::{Rank, Taxonomy};

    fn make_seq(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                b"ACGT"[(state >> 33) as usize % 4]
            })
            .collect()
    }

    fn four_target_db() -> (Database, Vec<Vec<u8>>) {
        let mut taxonomy = Taxonomy::with_root();
        taxonomy.add_node(10, 1, Rank::Genus, "G").unwrap();
        for i in 0..4u32 {
            taxonomy
                .add_node(100 + i, 10, Rank::Species, format!("sp{i}"))
                .unwrap();
        }
        let genomes: Vec<Vec<u8>> = (0..4).map(|i| make_seq(12_000, i as u64 + 1)).collect();
        let mut builder = CpuBuilder::new(MetaCacheConfig::for_tests(), taxonomy);
        for (i, g) in genomes.iter().enumerate() {
            builder
                .add_target(
                    SequenceRecord::new(format!("t{i}"), g.clone()),
                    100 + i as u32,
                )
                .unwrap();
        }
        (builder.finish(), genomes)
    }

    fn reads_from(genomes: &[Vec<u8>]) -> Vec<SequenceRecord> {
        (0..32)
            .map(|i| {
                let g = &genomes[i % genomes.len()];
                SequenceRecord::new(
                    format!("r{i}"),
                    g[100 + i * 29..100 + i * 29 + 120].to_vec(),
                )
            })
            .collect()
    }

    #[test]
    fn round_robin_plan_rotates_targets() {
        let plan = ShardPlan::round_robin(5, 2).unwrap();
        assert_eq!(plan.shard_count(), 2);
        assert_eq!(plan.assignment(), &[0, 1, 0, 1, 0]);
        assert_eq!(plan.shard_of(3), Some(1));
        assert_eq!(plan.shard_of(99), None);
        assert!(ShardPlan::round_robin(5, 0).is_err());
    }

    #[test]
    fn explicit_plan_validates_assignment() {
        assert!(ShardPlan::explicit(vec![0, 1, 2], 3).is_ok());
        assert!(ShardPlan::explicit(vec![0, 3], 3).is_err());
        assert!(ShardPlan::explicit(vec![], 0).is_err());
        // Zero-target shards are allowed.
        let plan = ShardPlan::explicit(vec![0, 0, 0], 2).unwrap();
        assert_eq!(plan.shard_count(), 2);
    }

    #[test]
    fn from_database_rejects_mismatched_plan() {
        let (db, _) = four_target_db();
        let plan = ShardPlan::round_robin(3, 2).unwrap();
        assert!(ShardedDatabase::from_database(db, plan).is_err());
    }

    #[test]
    fn split_preserves_locations_and_metadata() {
        let (db, _) = four_target_db();
        let total_locations = db.total_locations();
        let targets = db.target_count();
        let sharded = ShardedDatabase::round_robin(db, 3).unwrap();
        assert_eq!(sharded.shard_count(), 3);
        // No locations are lost or duplicated by the split.
        let shard_locations: usize = sharded.shards().iter().map(|s| s.total_locations()).sum();
        assert_eq!(shard_locations, total_locations);
        // Every shard keeps the full metadata with global target ids; the
        // meta view has no tables at all.
        for shard in sharded.shards() {
            assert_eq!(shard.target_count(), targets);
            assert_eq!(shard.partition_count(), 1);
            assert_eq!(shard.partitions[0].store.kind(), "condensed");
        }
        assert_eq!(sharded.meta().target_count(), targets);
        assert_eq!(sharded.meta().partition_count(), 0);
        assert_eq!(sharded.meta().total_locations(), 0);
        assert!(sharded.table_bytes() > 0);
        // Each shard's tables only hold locations of its assigned targets.
        for (i, shard) in sharded.shards().iter().enumerate() {
            let mut locs = Vec::new();
            for p in &shard.partitions {
                if let PartitionStore::Condensed(store) = &p.store {
                    store.for_each_bucket(|_, bucket| locs.extend_from_slice(bucket));
                }
            }
            assert!(
                locs.iter()
                    .all(|l| sharded.plan().shard_of(l.target) == Some(i)),
                "shard {i} holds a foreign target's location"
            );
        }
    }

    #[test]
    fn sharded_classifier_matches_unsharded() {
        let (db, genomes) = four_target_db();
        let reads = reads_from(&genomes);
        let expected = Classifier::new(&db).classify_batch(&reads);
        for shard_count in [1usize, 2, 3, 4] {
            let (db, _) = four_target_db();
            let sharded = Arc::new(ShardedDatabase::round_robin(db, shard_count).unwrap());
            let classifier = ShardedClassifier::new(Arc::clone(&sharded));
            assert_eq!(
                classifier.classify_batch(&reads),
                expected,
                "{shard_count} shards"
            );
            // Sequential scratch reuse agrees with the batch path.
            let mut scratch = ShardedScratch::new();
            for (read, want) in reads.iter().zip(&expected) {
                assert_eq!(classifier.classify_with(read, &mut scratch), *want);
            }
        }
    }

    #[test]
    fn empty_shard_contributes_nothing() {
        let (db, genomes) = four_target_db();
        let reads = reads_from(&genomes);
        let expected = Classifier::new(&db).classify_batch(&reads);
        // Shard 1 gets no targets at all.
        let plan = ShardPlan::explicit(vec![0, 2, 0, 2], 3).unwrap();
        let sharded = Arc::new(ShardedDatabase::from_database(db, plan).unwrap());
        assert_eq!(sharded.shards()[1].total_locations(), 0);
        let classifier = ShardedClassifier::new(Arc::clone(&sharded));
        assert_eq!(classifier.classify_batch(&reads), expected);
        assert_eq!(classifier.database().shard_count(), 3);
    }

    #[test]
    fn sharded_backend_worker_matches_classify_batch() {
        let (db, genomes) = four_target_db();
        let reads = reads_from(&genomes);
        let expected = Classifier::new(&db).classify_batch(&reads);
        let (db, _) = four_target_db();
        let sharded = Arc::new(ShardedDatabase::round_robin(db, 2).unwrap());
        let backend = ShardedBackend::new(Arc::clone(&sharded));
        assert_eq!(backend.name(), "sharded-host");
        assert_eq!(backend.database().target_count(), 4);
        assert_eq!(backend.sharded_database().shard_count(), 2);
        let mut worker = backend.worker();
        let mut out = Vec::new();
        worker.classify_batch_into(&reads[..13], &mut out);
        worker.classify_batch_into(&reads[13..], &mut out);
        assert_eq!(out, expected);
    }
}
