//! The GPU pipeline (paper §5) on the simulated device substrate.
//!
//! This module contains the warp-level kernels and the batched multi-device
//! query pipeline:
//!
//! * [`warp_sketch_window`] — steps (1)–(3) of the pipeline of §5.2/§5.3: a
//!   warp encodes a window, generates and hashes its canonical k-mers (four
//!   k-mer start positions per lane), sorts the hashes with the in-register
//!   bitonic network, removes duplicates and keeps the `s` smallest as the
//!   minhash sketch. The result is bit-identical to the host
//!   [`crate::sketch::Sketcher`] (asserted by tests).
//! * [`GpuClassifier`] — steps (4)–(8): hash-table lookup, location list
//!   compaction, segmented sort, window-count accumulation and warp-level
//!   top-candidate generation, followed by the cross-device top-hit merge of
//!   Figure 2. Per-stage simulated times are recorded in a
//!   [`StageBreakdown`], which is what Figure 5 of the paper plots.
//!
//! The classifications produced by the GPU pipeline are identical to the host
//! query path when run against the same database; only the execution / cost
//! model differs.

use std::ops::Deref;
use std::sync::Arc;

use parking_lot::Mutex;

use mc_gpu_sim::{
    launch_warps_into, segmented_sort, KernelCost, LaunchConfig, MultiGpuSystem, SimDuration,
    Stream, Warp, WARP_SIZE,
};
use mc_kmer::{hash64, Feature, KmerParams, Location};
use mc_seqio::SequenceRecord;

use crate::candidate::{accumulate_locations, top_candidates, CandidateList};
use crate::classify::{classify_candidates, Classification};
use crate::database::Database;
use crate::sketch::Sketcher;

/// Reusable scratch buffers of the warp sketching kernel — the "device
/// buffers" of §5.3. One scratch per simulated warp scheduler (in practice:
/// per worker thread, see [`with_warp_scratch`]) removes all steady-state
/// heap allocation from warp sketching, mirroring the host
/// [`crate::sketch::SketchScratch`].
#[derive(Debug, Clone, Default)]
pub struct WarpSketchScratch {
    /// Hash of the canonical k-mer at each window position (`u64::MAX` for
    /// positions whose k-mer overlaps an ambiguous base).
    hashes_by_pos: Vec<u64>,
    /// Pool of per-round sorted, deduplicated register contents.
    pool: Vec<u64>,
}

impl WarpSketchScratch {
    /// Create an empty scratch; buffers size themselves on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    static WARP_SCRATCH: std::cell::RefCell<WarpSketchScratch> =
        std::cell::RefCell::new(WarpSketchScratch::new());
    /// Flat per-launch feature buffer of the query pipeline's sketch stage,
    /// reused across the batches a thread classifies (serving workers
    /// classify many batches per thread; per-call allocation would undo the
    /// launch buffer's cross-launch reuse).
    static QUERY_FEATURE_BUF: std::cell::RefCell<Vec<Feature>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Run `f` with this thread's reusable [`WarpSketchScratch`] — per-warp
/// scratch reuse inside `launch_warps` closures, which execute on a thread
/// pool and therefore cannot share one mutable scratch.
pub fn with_warp_scratch<R>(f: impl FnOnce(&mut WarpSketchScratch) -> R) -> R {
    WARP_SCRATCH.with(|scratch| f(&mut scratch.borrow_mut()))
}

/// Sketch one window with this thread's reusable warp scratch into a slot of
/// a flat pre-allocated feature buffer (the per-launch output array handed
/// out by [`mc_gpu_sim::launch_warps_into`]), returning how many slots were
/// filled plus the kernel cost. Used by both the query pipeline and the GPU
/// builder so the scratch protocol lives in one place; windows no longer
/// allocate an owned `Vec<Feature>` each.
pub fn warp_sketch_to_slot(
    warp: &Warp,
    window: &[u8],
    kmer: KmerParams,
    sketch_size: usize,
    slot: &mut [Feature],
) -> (usize, KernelCost) {
    with_warp_scratch(|scratch| {
        warp_sketch_window_to_slice(warp, window, kmer, sketch_size, scratch, slot)
    })
}

/// Sketch one window with a warp into a caller-owned feature buffer,
/// returning the modelled kernel cost. Appends the sketch's features to
/// `out`; reuses `scratch`, so steady-state execution is allocation-free
/// (apart from `out` growth up to the sketch size).
///
/// Lane `i` is responsible for the k-mers starting at positions
/// `4·i … 4·i + 3` of the window (§5.3); each round sorts one hash per lane
/// with the warp's register bitonic network, then the per-round minima are
/// combined, deduplicated and truncated to the sketch size. The result is
/// bit-identical to the host [`crate::sketch::Sketcher`] (asserted by tests
/// in this module and in `tests/property_tests.rs`).
pub fn warp_sketch_window_into(
    warp: &Warp,
    window: &[u8],
    kmer: KmerParams,
    sketch_size: usize,
    scratch: &mut WarpSketchScratch,
    out: &mut Vec<Feature>,
) -> KernelCost {
    let cost = warp_sketch_window_core(warp, window, kmer, sketch_size, scratch);
    out.extend(scratch.pool.iter().map(|&h| (h >> 32) as Feature));
    cost
}

/// Sketch one window with a warp into a caller-owned feature *slice* (a slot
/// of a flat per-launch buffer), returning how many features were written and
/// the modelled kernel cost. The slice must hold at least `sketch_size`
/// slots. Bit-identical to [`warp_sketch_window_into`].
pub fn warp_sketch_window_to_slice(
    warp: &Warp,
    window: &[u8],
    kmer: KmerParams,
    sketch_size: usize,
    scratch: &mut WarpSketchScratch,
    out: &mut [Feature],
) -> (usize, KernelCost) {
    let cost = warp_sketch_window_core(warp, window, kmer, sketch_size, scratch);
    for (slot, &h) in out.iter_mut().zip(scratch.pool.iter()) {
        *slot = (h >> 32) as Feature;
    }
    (scratch.pool.len(), cost)
}

/// The shared kernel body: leaves the sketch's hashes (sorted, deduplicated,
/// truncated to `sketch_size`) in `scratch.pool` and returns the modelled
/// cost; the public wrappers only differ in how they copy the features out.
fn warp_sketch_window_core(
    warp: &Warp,
    window: &[u8],
    kmer: KmerParams,
    sketch_size: usize,
    scratch: &mut WarpSketchScratch,
) -> KernelCost {
    let k = kmer.k() as usize;
    let positions = window.len().saturating_sub(k.saturating_sub(1));
    // Hash all canonical k-mers once (the lanes' work), keyed by position.
    scratch.hashes_by_pos.clear();
    scratch.hashes_by_pos.resize(positions, u64::MAX);
    {
        let hashes_by_pos = &mut scratch.hashes_by_pos;
        mc_kmer::for_each_canonical_kmer(window, kmer, |offset, packed| {
            if offset < positions {
                hashes_by_pos[offset] = hash64(packed);
            }
        });
    }
    // Rounds of warp-register sorting: each round takes one hash per lane
    // (4 rounds cover 4 positions per lane for the default 127-base window).
    let rounds = positions.div_ceil(WARP_SIZE).max(1);
    scratch.pool.clear();
    for round in 0..rounds {
        let mut regs = [u64::MAX; WARP_SIZE];
        for (lane, reg) in regs.iter_mut().enumerate() {
            let pos = round * WARP_SIZE + lane;
            if pos < positions {
                *reg = scratch.hashes_by_pos[pos];
            }
        }
        warp.bitonic_sort(&mut regs);
        let unique = warp.dedup_sorted(&mut regs);
        scratch.pool.extend_from_slice(&regs[..unique]);
    }
    // Merge the per-round sorted runs, dedup, keep the s smallest.
    scratch.pool.sort_unstable();
    scratch.pool.dedup();
    scratch.pool.truncate(sketch_size);
    let emitted = scratch.pool.len();

    let sort_ops = (rounds * WARP_SIZE * 25) as u64; // 32·log²32 compare-exchanges per round
    KernelCost {
        bytes_read: window.len() as u64,
        bytes_written: (emitted * 4) as u64,
        ops: positions as u64 + sort_ops,
        launches: 0,
    }
}

/// Sketch one window with a warp, returning the sketch features and the
/// modelled kernel cost. Convenience form of [`warp_sketch_window_into`]
/// that allocates its own scratch and output.
pub fn warp_sketch_window(
    warp: &Warp,
    window: &[u8],
    kmer: KmerParams,
    sketch_size: usize,
) -> (Vec<Feature>, KernelCost) {
    let mut scratch = WarpSketchScratch::new();
    let mut features = Vec::with_capacity(sketch_size);
    let cost =
        warp_sketch_window_into(warp, window, kmer, sketch_size, &mut scratch, &mut features);
    (features, cost)
}

/// Simulated time spent in each stage of the GPU query pipeline — the
/// quantities Figure 5 of the paper breaks down.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    /// Host → device transfer of the read windows.
    pub transfer: SimDuration,
    /// Sketch generation + hash-table query (steps 1–4).
    pub sketch_query: SimDuration,
    /// Location-list compaction (step 5).
    pub compact: SimDuration,
    /// Segmented sort of the location lists (step 6).
    pub sort: SimDuration,
    /// Window-count accumulation, sliding-window scan, top-hit merge
    /// (steps 7–8 plus the cross-device merge).
    pub top_candidates: SimDuration,
}

impl StageBreakdown {
    /// Total simulated time across all stages.
    pub fn total(&self) -> SimDuration {
        self.transfer + self.sketch_query + self.compact + self.sort + self.top_candidates
    }

    /// Per-stage shares of the total, in the order
    /// (transfer, sketch+query, compact, sort, top-candidates).
    pub fn shares(&self) -> [f64; 5] {
        let total = self.total().as_nanos().max(1) as f64;
        [
            self.transfer.as_nanos() as f64 / total,
            self.sketch_query.as_nanos() as f64 / total,
            self.compact.as_nanos() as f64 / total,
            self.sort.as_nanos() as f64 / total,
            self.top_candidates.as_nanos() as f64 / total,
        ]
    }

    /// Add another breakdown (accumulating over batches).
    pub fn accumulate(&mut self, other: &StageBreakdown) {
        self.transfer = self.transfer + other.transfer;
        self.sketch_query = self.sketch_query + other.sketch_query;
        self.compact = self.compact + other.compact;
        self.sort = self.sort + other.sort;
        self.top_candidates = self.top_candidates + other.top_candidates;
    }
}

/// The batched multi-device query pipeline.
///
/// Like [`crate::query::Classifier`], the classifier is generic over how it
/// holds the database and the device system: borrow both for one-shot use
/// (`GpuClassifier::new(&db, &system)`) or hand it `Arc`s (the default type
/// parameters) so a long-lived serving backend can co-own them.
pub struct GpuClassifier<D = Arc<Database>, S = Arc<MultiGpuSystem>>
where
    D: Deref<Target = Database>,
    S: Deref<Target = MultiGpuSystem>,
{
    db: D,
    system: S,
    sketcher: Sketcher,
    breakdown: Mutex<StageBreakdown>,
}

impl<D, S> GpuClassifier<D, S>
where
    D: Deref<Target = Database>,
    S: Deref<Target = MultiGpuSystem>,
{
    /// Create a GPU classifier for a database whose partitions are resident
    /// on the devices of `system` (partition `i` on device `i % devices`).
    pub fn new(db: D, system: S) -> Self {
        let sketcher = Sketcher::new(&db.config).expect("validated config");
        Self {
            db,
            system,
            sketcher,
            breakdown: Mutex::new(StageBreakdown::default()),
        }
    }

    /// The database this classifier queries.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The simulated device system batches are issued to.
    pub fn system(&self) -> &MultiGpuSystem {
        &self.system
    }

    /// The accumulated per-stage breakdown over all batches classified so far.
    pub fn breakdown(&self) -> StageBreakdown {
        *self.breakdown.lock()
    }

    /// Reset the accumulated breakdown.
    pub fn reset_breakdown(&self) {
        *self.breakdown.lock() = StageBreakdown::default();
    }

    /// Classify a batch of reads, returning one classification per read and
    /// the simulated per-stage times of this batch. Issues on device 0; use
    /// [`GpuClassifier::classify_batch_on`] to rotate the issue device
    /// (copy/compute overlap across concurrent batches).
    pub fn classify_batch(
        &self,
        records: &[SequenceRecord],
    ) -> (Vec<Classification>, StageBreakdown) {
        self.classify_batch_on(records, 0)
    }

    /// Classify a batch of reads with the transfer + sketching stage issued
    /// on `issue_device` (wrapped modulo the device count) and the top-hit
    /// merge ring starting there. Classifications are independent of the
    /// issue device — only the simulated stream occupancy differs — so
    /// concurrent callers (the serving engine's GPU backend, the streaming
    /// consumer) can round-robin batches across devices to model the paper's
    /// per-GPU copy/compute overlap.
    pub fn classify_batch_on(
        &self,
        records: &[SequenceRecord],
        issue_device: usize,
    ) -> (Vec<Classification>, StageBreakdown) {
        let mut batch_breakdown = StageBreakdown::default();
        if records.is_empty() {
            return (Vec::new(), batch_breakdown);
        }
        let devices = self.system.device_count().max(1);
        let issue = issue_device % devices;
        let streams: Vec<Stream> = self.system.streams();
        let first = &streams[issue];

        // --- Stage: host -> device transfer of the read windows (device 0). ---
        let batch_bytes: u64 = records.iter().map(|r| r.total_len() as u64).sum();
        let t0 = first.position();
        first.transfer(batch_bytes);
        batch_breakdown.transfer = diff(first.position(), t0);

        // --- Stage: sketching (device 0) + broadcast of sketches + per-device
        //     hash-table queries. ---
        let kmer = self.sketcher.window_params().kmer();
        let sketch_size = self.sketcher.sketch_size();
        let window_len = self.sketcher.window_params().window_len() as usize;

        // Collect every window of every read (both mates) with its read index.
        let mut read_windows: Vec<(usize, Vec<u8>)> = Vec::new();
        for (read_idx, record) in records.iter().enumerate() {
            for seq in
                std::iter::once(&record.sequence).chain(record.mate.as_ref().map(|m| &m.sequence))
            {
                if seq.len() < kmer.k() as usize {
                    continue;
                }
                if seq.len() <= window_len {
                    read_windows.push((read_idx, seq.clone()));
                } else {
                    let params = self.sketcher.window_params();
                    for w in 0..mc_kmer::window::num_windows(seq.len(), params) {
                        let (start, end) = mc_kmer::window::window_range(w, seq.len(), params);
                        read_windows.push((read_idx, seq[start..end].to_vec()));
                    }
                }
            }
        }

        // Launch one warp per window for sketch generation; each worker
        // thread reuses its warp scratch across the windows it executes, and
        // every warp writes its features into a fixed-stride slot of one flat
        // per-launch buffer (no owned Vec per window). The buffer itself is
        // thread-local so repeated batches on one serving worker reuse its
        // allocation.
        let mut feature_buf: Vec<Feature> =
            QUERY_FEATURE_BUF.with(|b| std::mem::take(&mut *b.borrow_mut()));
        let sketch_spans: Vec<(usize, (usize, KernelCost))> = launch_warps_into(
            LaunchConfig::new(read_windows.len()),
            sketch_size,
            &mut feature_buf,
            |warp: Warp, slot: &mut [Feature]| {
                let (read_idx, window) = &read_windows[warp.warp_id];
                let (filled, cost) = warp_sketch_to_slot(&warp, window, kmer, sketch_size, slot);
                (filled, (*read_idx, cost))
            },
        );
        // Flat (offset, len, read_idx) view of each warp's slot.
        let window_sketch = |w: usize| -> &[Feature] {
            let (filled, _) = sketch_spans[w];
            &feature_buf[w * sketch_size..w * sketch_size + filled]
        };
        let mut sketch_cost = KernelCost {
            launches: 1,
            ..Default::default()
        };
        for (_, (_, c)) in &sketch_spans {
            // Per-warp costs carry no launch overhead of their own; the whole
            // sketching stage counts as a single kernel launch.
            sketch_cost = sketch_cost.merge(*c);
        }
        let t1 = first.position();
        first.launch_kernel(sketch_cost);

        // Broadcast sketches to the other devices along the ring starting at
        // the issue device (ring forwarding, Figure 2).
        let sketch_bytes: u64 = sketch_spans.iter().map(|(f, _)| (*f * 4) as u64).sum();
        for i in 1..devices {
            let src = (issue + i - 1) % devices;
            let dst = (issue + i) % devices;
            self.system.peer_copy(src, dst, sketch_bytes);
        }

        // Per-device hash-table queries: partition p is resident on device
        // p % devices. Collect per-read locations per partition.
        let mut per_read_candidates: Vec<CandidateList> = (0..records.len())
            .map(|_| CandidateList::new(self.db.config.top_candidates))
            .collect();
        let mut query_cost_per_device: Vec<KernelCost> = vec![
            KernelCost {
                launches: 1,
                ..Default::default()
            };
            devices
        ];
        let mut total_locations_per_device: Vec<Vec<(usize, Location)>> = vec![Vec::new(); devices];
        let mut scratch = Vec::new();
        for (p, partition) in self.db.partitions.iter().enumerate() {
            let device = p % devices;
            for (w, (_, (read_idx, _))) in sketch_spans.iter().enumerate() {
                for &feature in window_sketch(w) {
                    scratch.clear();
                    partition.query_into(feature, &mut scratch);
                    query_cost_per_device[device].ops += 8; // probing group traversal
                    query_cost_per_device[device].bytes_read += 8 + scratch.len() as u64 * 8;
                    for &loc in &scratch {
                        total_locations_per_device[device].push((*read_idx, loc));
                    }
                }
            }
        }
        for (d, cost) in query_cost_per_device.iter().enumerate() {
            streams[d].launch_kernel(*cost);
        }
        batch_breakdown.sketch_query = diff(max_position(&streams), t1);

        // --- Stage: compaction (prefix sum + dense copy per device). ---
        let t2 = max_position(&streams);
        for (d, locs) in total_locations_per_device.iter().enumerate() {
            let bytes = locs.len() as u64 * 8;
            streams[d].launch_kernel(KernelCost::memory(bytes, bytes));
        }
        batch_breakdown.compact = diff(max_position(&streams), t2);

        // --- Stage: segmented sort per device (one segment per read). ---
        let t3 = max_position(&streams);
        let mut sorted_per_device: Vec<Vec<(usize, Vec<Location>)>> = Vec::with_capacity(devices);
        for (d, locs) in total_locations_per_device.iter().enumerate() {
            // Group locations by read to form segments.
            let mut by_read: Vec<Vec<u64>> = vec![Vec::new(); records.len()];
            for (read_idx, loc) in locs {
                by_read[*read_idx].push(loc.pack());
            }
            let mut flat: Vec<u64> = Vec::with_capacity(locs.len());
            let mut segments = vec![0usize];
            for keys in &by_read {
                flat.extend_from_slice(keys);
                segments.push(flat.len());
            }
            let stats = segmented_sort(&mut flat, &segments);
            streams[d].launch_kernel(stats.cost());
            // Unflatten back into per-read sorted location lists.
            let mut out = Vec::with_capacity(records.len());
            for (read_idx, window) in segments.windows(2).enumerate() {
                let slice = &flat[window[0]..window[1]];
                out.push((
                    read_idx,
                    slice.iter().map(|&p| Location::unpack(p)).collect(),
                ));
            }
            sorted_per_device.push(out);
        }
        batch_breakdown.sort = diff(max_position(&streams), t3);

        // --- Stage: accumulation + sliding-window top candidates per device,
        //     then ring merge of the per-device top lists. ---
        let t4 = max_position(&streams);
        for (d, per_read) in sorted_per_device.iter().enumerate() {
            let mut ops = 0u64;
            for (read_idx, sorted_locations) in per_read {
                if sorted_locations.is_empty() {
                    continue;
                }
                ops += sorted_locations.len() as u64;
                let counts = accumulate_locations(sorted_locations);
                let sws = self
                    .db
                    .config
                    .sliding_window_size(records[*read_idx].total_len());
                let local = top_candidates(&counts, sws, self.db.config.top_candidates);
                per_read_candidates[*read_idx].merge(&local);
            }
            streams[d].launch_kernel(KernelCost::compute(ops, ops * 8, 0));
        }
        // Ring merge: each device sends its per-read top lists to the next
        // device along the ring starting at the issue device.
        let top_bytes = (records.len()
            * self.db.config.top_candidates
            * std::mem::size_of::<CandidateList>()) as u64;
        for i in 0..devices.saturating_sub(1) {
            let src = (issue + i) % devices;
            let dst = (issue + i + 1) % devices;
            self.system.peer_copy(src, dst, top_bytes.min(1 << 20));
        }
        // Final top list travels back to the host from the ring's last device.
        streams[(issue + devices - 1) % devices].transfer((records.len() * 32) as u64);
        batch_breakdown.top_candidates = diff(max_position(&streams), t4);

        // Host-side final classification from the merged candidates.
        let classifications: Vec<Classification> = per_read_candidates
            .iter()
            .map(|cands| classify_candidates(&self.db, &self.db.config, cands))
            .collect();

        // Hand the launch buffer back for the thread's next batch.
        QUERY_FEATURE_BUF.with(|b| *b.borrow_mut() = feature_buf);

        self.breakdown.lock().accumulate(&batch_breakdown);
        (classifications, batch_breakdown)
    }

    /// Classify all reads in batches of the configured batch size, returning
    /// every classification and the accumulated breakdown.
    pub fn classify_all(
        &self,
        records: &[SequenceRecord],
    ) -> (Vec<Classification>, StageBreakdown) {
        let mut all = Vec::with_capacity(records.len());
        let mut breakdown = StageBreakdown::default();
        for chunk in records.chunks(self.db.config.batch_size.max(1)) {
            let (c, b) = self.classify_batch(chunk);
            all.extend(c);
            breakdown.accumulate(&b);
        }
        (all, breakdown)
    }

    /// Consume sequence batches from a bounded queue until it closes,
    /// classifying each on the simulated devices and restoring input order
    /// from the batch sequence numbers.
    ///
    /// This is the device-side consumer of the streaming architecture
    /// (Figure 2): each [`mc_seqio::SequenceBatch`] popped from the queue is
    /// the unit handed to the warp launch (one warp per read window inside
    /// [`GpuClassifier::classify_batch_on`]), so parsing on the producer side
    /// overlaps device execution here while the queue's capacity bounds host
    /// memory. Batches are issued round-robin across devices by their queue
    /// index, modelling the paper's per-GPU streams with copy/compute
    /// overlap (the "GPU streaming depth" of the serving architecture).
    pub fn classify_stream(
        &self,
        batches: &mc_seqio::BatchReceiver,
    ) -> (Vec<Classification>, StageBreakdown) {
        let devices = self.system.device_count().max(1) as u64;
        let mut by_index: std::collections::BTreeMap<u64, Vec<Classification>> =
            std::collections::BTreeMap::new();
        let mut breakdown = StageBreakdown::default();
        while let Ok(batch) = batches.recv() {
            let issue = (batch.index % devices) as usize;
            let (classifications, b) = self.classify_batch_on(&batch.records, issue);
            breakdown.accumulate(&b);
            by_index.insert(batch.index, classifications);
        }
        (by_index.into_values().flatten().collect(), breakdown)
    }
}

fn diff(now: SimDuration, before: SimDuration) -> SimDuration {
    SimDuration::from_nanos(now.as_nanos().saturating_sub(before.as_nanos()))
}

fn max_position(streams: &[Stream]) -> SimDuration {
    streams
        .iter()
        .map(|s| s.position())
        .max()
        .unwrap_or(SimDuration::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::CpuBuilder;
    use crate::config::MetaCacheConfig;
    use crate::query::Classifier;
    use mc_taxonomy::{Rank, Taxonomy};

    fn make_seq(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                b"ACGT"[(state >> 33) as usize % 4]
            })
            .collect()
    }

    #[test]
    fn warp_sketch_matches_host_sketcher() {
        let config = MetaCacheConfig::default();
        let sketcher = Sketcher::new(&config).unwrap();
        let warp = Warp::new(0);
        let kmer = sketcher.window_params().kmer();
        for seed in 0..20u64 {
            let window = make_seq(127, seed + 1);
            let (gpu_features, cost) = warp_sketch_window(&warp, &window, kmer, config.sketch_size);
            let host = sketcher.sketch_window(&window);
            assert_eq!(gpu_features, host.features(), "seed {seed}");
            assert!(cost.ops > 0 && cost.bytes_read == 127);
        }
    }

    #[test]
    fn warp_scratch_reuse_is_bit_identical_to_host_and_oracle() {
        let config = MetaCacheConfig::default();
        let sketcher = Sketcher::new(&config).unwrap();
        let warp = Warp::new(0);
        let kmer = sketcher.window_params().kmer();
        let mut scratch = WarpSketchScratch::new();
        let mut features = Vec::new();
        for seed in 0..30u64 {
            // Window lengths vary so the scratch shrinks and grows.
            let window = make_seq(60 + (seed as usize * 17) % 120, seed + 1);
            features.clear();
            warp_sketch_window_into(
                &warp,
                &window,
                kmer,
                config.sketch_size,
                &mut scratch,
                &mut features,
            );
            assert_eq!(
                features.as_slice(),
                sketcher.sketch_window(&window).features()
            );
            assert_eq!(
                features.as_slice(),
                sketcher.sketch_window_baseline(&window).features(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn warp_sketch_handles_short_and_ambiguous_windows() {
        let config = MetaCacheConfig::default();
        let sketcher = Sketcher::new(&config).unwrap();
        let warp = Warp::new(0);
        let kmer = sketcher.window_params().kmer();
        let (f, _) = warp_sketch_window(&warp, b"ACGTACGT", kmer, 16);
        assert!(f.is_empty());
        let all_n = vec![b'N'; 127];
        let (f, _) = warp_sketch_window(&warp, &all_n, kmer, 16);
        assert!(f.is_empty());
        let mut mixed = make_seq(127, 5);
        for i in (0..127).step_by(9) {
            mixed[i] = b'N';
        }
        let (f, _) = warp_sketch_window(&warp, &mixed, kmer, 16);
        assert_eq!(f, sketcher.sketch_window(&mixed).features());
    }

    fn small_db() -> (Database, Vec<u8>, Vec<u8>) {
        let mut taxonomy = Taxonomy::with_root();
        taxonomy.add_node(10, 1, Rank::Genus, "G").unwrap();
        taxonomy.add_node(100, 10, Rank::Species, "G a").unwrap();
        taxonomy.add_node(101, 10, Rank::Species, "G b").unwrap();
        let genome_a = make_seq(15_000, 1);
        let genome_b = make_seq(15_000, 2);
        let mut builder = CpuBuilder::new(MetaCacheConfig::for_tests(), taxonomy);
        builder
            .add_target(SequenceRecord::new("refA", genome_a.clone()), 100)
            .unwrap();
        builder
            .add_target(SequenceRecord::new("refB", genome_b.clone()), 101)
            .unwrap();
        (builder.finish(), genome_a, genome_b)
    }

    #[test]
    fn gpu_and_cpu_classifiers_agree() {
        let (db, genome_a, genome_b) = small_db();
        let system = MultiGpuSystem::dgx1(2);
        let gpu = GpuClassifier::new(&db, &system);
        let cpu = Classifier::new(&db);
        let reads: Vec<SequenceRecord> = (0..30)
            .map(|i| {
                let (g, off) = if i % 2 == 0 {
                    (&genome_a, 200 + 113 * i)
                } else {
                    (&genome_b, 400 + 97 * i)
                };
                SequenceRecord::new(format!("r{i}"), g[off..off + 120].to_vec())
            })
            .collect();
        let (gpu_results, breakdown) = gpu.classify_batch(&reads);
        let cpu_results = cpu.classify_batch(&reads);
        assert_eq!(gpu_results, cpu_results);
        assert!(breakdown.total() > SimDuration::ZERO);
        assert!(breakdown.sort > SimDuration::ZERO);
    }

    #[test]
    fn breakdown_accumulates_over_batches() {
        let (db, genome_a, _) = small_db();
        let system = MultiGpuSystem::dgx1(1);
        let gpu = GpuClassifier::new(&db, &system);
        let reads: Vec<SequenceRecord> = (0..10)
            .map(|i| SequenceRecord::new(format!("r{i}"), genome_a[i * 50..i * 50 + 110].to_vec()))
            .collect();
        let (_, b1) = gpu.classify_batch(&reads);
        let (_, b2) = gpu.classify_batch(&reads);
        let total = gpu.breakdown();
        assert_eq!(
            total.total().as_nanos(),
            (b1.total() + b2.total()).as_nanos()
        );
        let shares = total.shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        gpu.reset_breakdown();
        assert_eq!(gpu.breakdown().total(), SimDuration::ZERO);
    }

    #[test]
    fn issue_device_does_not_change_classifications() {
        let (db, genome_a, genome_b) = small_db();
        let reads: Vec<SequenceRecord> = (0..12)
            .map(|i| {
                let (g, off) = if i % 2 == 0 {
                    (&genome_a, 300 + 101 * i)
                } else {
                    (&genome_b, 500 + 89 * i)
                };
                SequenceRecord::new(format!("r{i}"), g[off..off + 120].to_vec())
            })
            .collect();
        let system = MultiGpuSystem::dgx1(3);
        let gpu = GpuClassifier::new(&db, &system);
        let (on0, _) = gpu.classify_batch_on(&reads, 0);
        let (on1, _) = gpu.classify_batch_on(&reads, 1);
        let (on2, _) = gpu.classify_batch_on(&reads, 2);
        let (wrapped, _) = gpu.classify_batch_on(&reads, 5); // 5 % 3 == 2
        assert_eq!(on0, on1);
        assert_eq!(on1, on2);
        assert_eq!(on2, wrapped);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let (db, _, _) = small_db();
        let system = MultiGpuSystem::dgx1(1);
        let gpu = GpuClassifier::new(&db, &system);
        let (results, breakdown) = gpu.classify_batch(&[]);
        assert!(results.is_empty());
        assert_eq!(breakdown.total(), SimDuration::ZERO);
    }
}
