//! MetaCache configuration parameters.

use serde::{Deserialize, Serialize};

use mc_kmer::window::WindowParams;

use crate::error::MetaCacheError;

/// All tunable parameters of the classifier, mirroring the sub-sampling and
/// classification defaults reported in §5.2 and §4.2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetaCacheConfig {
    /// k-mer length (paper default: 16).
    pub kmer_len: u32,
    /// Reference window length in bases (paper default: 127).
    pub window_len: u32,
    /// Distance between consecutive window starts. The default `w − k + 1 =
    /// 112` satisfies the GPU constraint of being a multiple of 4 (§5.2).
    pub window_stride: u32,
    /// Sketch size: number of smallest distinct hashes kept per window
    /// (paper default: 16).
    pub sketch_size: usize,
    /// Maximum number of locations stored per feature (paper default: 254).
    pub max_locations_per_feature: usize,
    /// Number of top candidates kept per read (paper: 2 ≤ m ≤ 4).
    pub top_candidates: usize,
    /// Minimum accumulated hit count a candidate needs for the read to be
    /// classified at all.
    pub min_hits: u32,
    /// If the best candidate beats the runner-up by at least this many hits
    /// the read is assigned to the best candidate's taxon directly; otherwise
    /// the LCA of all near-best candidates is used.
    pub hit_diff_threshold: u32,
    /// Candidates within this many hits of the maximum participate in the
    /// LCA fallback.
    pub lca_hit_window: u32,
    /// Number of reads per processing batch (per device in the GPU pipeline).
    pub batch_size: usize,
}

impl Default for MetaCacheConfig {
    fn default() -> Self {
        Self {
            kmer_len: 16,
            window_len: 127,
            window_stride: 112,
            sketch_size: 16,
            max_locations_per_feature: 254,
            top_candidates: 4,
            min_hits: 4,
            hit_diff_threshold: 2,
            lca_hit_window: 2,
            batch_size: 4096,
        }
    }
}

impl MetaCacheConfig {
    /// Validate the configuration and derive the window parameters.
    pub fn window_params(&self) -> Result<WindowParams, MetaCacheError> {
        if self.sketch_size == 0 {
            return Err(MetaCacheError::Config(
                "sketch size must be positive".into(),
            ));
        }
        if self.top_candidates == 0 {
            return Err(MetaCacheError::Config(
                "at least one top candidate is required".into(),
            ));
        }
        if self.max_locations_per_feature == 0 {
            return Err(MetaCacheError::Config(
                "max locations per feature must be positive".into(),
            ));
        }
        WindowParams::with_stride(self.kmer_len, self.window_len, self.window_stride)
            .map_err(|e| MetaCacheError::Config(e.to_string()))
    }

    /// Validate all parameters; returns the config for chaining.
    pub fn validated(self) -> Result<Self, MetaCacheError> {
        self.window_params()?;
        Ok(self)
    }

    /// The sliding-window size used during top-candidate generation: the
    /// maximum number of contiguous reference windows a read (or read pair)
    /// of `read_len` total bases can span (§5.6).
    pub fn sliding_window_size(&self, read_len: usize) -> usize {
        let stride = self.window_stride.max(1) as usize;
        read_len.div_ceil(stride) + 1
    }

    /// A scaled-down configuration with a smaller batch size, used by tests.
    pub fn for_tests() -> Self {
        Self {
            batch_size: 64,
            min_hits: 2,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let c = MetaCacheConfig::default();
        assert_eq!(c.kmer_len, 16);
        assert_eq!(c.window_len, 127);
        assert_eq!(c.window_stride, 112);
        assert_eq!(c.sketch_size, 16);
        assert_eq!(c.max_locations_per_feature, 254);
        assert!(c.top_candidates >= 2 && c.top_candidates <= 4);
        let w = c.window_params().unwrap();
        assert!(w.gpu_aligned());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(MetaCacheConfig {
            sketch_size: 0,
            ..Default::default()
        }
        .validated()
        .is_err());
        assert!(MetaCacheConfig {
            kmer_len: 0,
            ..Default::default()
        }
        .validated()
        .is_err());
        assert!(MetaCacheConfig {
            window_len: 8,
            ..Default::default()
        }
        .validated()
        .is_err());
        assert!(MetaCacheConfig {
            top_candidates: 0,
            ..Default::default()
        }
        .validated()
        .is_err());
        assert!(MetaCacheConfig {
            max_locations_per_feature: 0,
            ..Default::default()
        }
        .validated()
        .is_err());
    }

    #[test]
    fn sliding_window_size_scales_with_read_length() {
        let c = MetaCacheConfig::default();
        assert_eq!(c.sliding_window_size(100), 2);
        assert_eq!(c.sliding_window_size(101), 2);
        assert_eq!(c.sliding_window_size(113), 3);
        assert_eq!(c.sliding_window_size(250), 4);
        assert!(c.sliding_window_size(2 * 101 + 300) >= 5);
    }

    #[test]
    fn config_serializes() {
        let c = MetaCacheConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: MetaCacheConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
