//! High-level pipelines: separate build/query runs vs the on-the-fly mode.
//!
//! The paper's Table 5 and Figure 4 compare two ways of getting from raw
//! reference genomes to classified reads:
//!
//! * **W+L (write + load)**: build the database, write it to the file system,
//!   load it back (into the condensed layout) and then query — the
//!   traditional index-based workflow.
//! * **OTF (on the fly)**: query the in-memory hash table directly after
//!   building, skipping the write and load phases entirely. The paper notes
//!   the build-time table queries about 20% slower than the condensed layout,
//!   but the saved I/O makes the time-to-query dramatically shorter.
//!
//! The runners here execute both workflows end to end on the simulated
//! multi-GPU system, returning per-phase simulated times plus the actual
//! classifications.

use mc_gpu_sim::{MultiGpuSystem, SimDuration};
use mc_seqio::SequenceRecord;
use mc_taxonomy::{TaxonId, Taxonomy};

use crate::build::{estimate_locations, GpuBuilder};
use crate::classify::Classification;
use crate::config::MetaCacheConfig;
use crate::database::Database;
use crate::error::MetaCacheError;
use crate::gpu::GpuClassifier;
use crate::serialize;

/// Throughput model of the file system holding the database files.
///
/// The paper loads everything from a RAM drive; writing the 88–176 GB GPU
/// databases still dominates the build phase of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Sequential write bandwidth in bytes/second.
    pub write_bandwidth: f64,
    /// Sequential read bandwidth in bytes/second.
    pub read_bandwidth: f64,
}

impl Default for DiskModel {
    fn default() -> Self {
        Self {
            write_bandwidth: 1.8e9,
            read_bandwidth: 2.2e9,
        }
    }
}

impl DiskModel {
    /// Time to write `bytes` to the file system.
    pub fn write_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.write_bandwidth)
    }

    /// Time to read `bytes` from the file system.
    pub fn read_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.read_bandwidth)
    }
}

/// Simulated duration of each phase of a pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Database construction (device makespan).
    pub build: SimDuration,
    /// Writing the database files ([`SimDuration::ZERO`] in OTF mode).
    pub write: SimDuration,
    /// Loading the database files ([`SimDuration::ZERO`] in OTF mode).
    pub load: SimDuration,
    /// Query execution.
    pub query: SimDuration,
}

impl PhaseTimes {
    /// Time until the first query can be executed (Table 5's TTQ column):
    /// build + write + load.
    pub fn time_to_query(&self) -> SimDuration {
        self.build + self.write + self.load
    }

    /// Total end-to-end time.
    pub fn total(&self) -> SimDuration {
        self.time_to_query() + self.query
    }
}

/// The result of an end-to-end pipeline run.
pub struct PipelineReport {
    /// The constructed (or reloaded) database.
    pub database: Database,
    /// Per-phase simulated times.
    pub phases: PhaseTimes,
    /// Classifications of the query reads.
    pub classifications: Vec<Classification>,
    /// Serialized database size in bytes (0 in OTF mode).
    pub db_file_bytes: u64,
}

/// Build on the simulated devices and query **on the fly** (no disk I/O).
pub fn run_on_the_fly(
    config: MetaCacheConfig,
    taxonomy: Taxonomy,
    references: &[(SequenceRecord, TaxonId)],
    reads: &[SequenceRecord],
    system: &MultiGpuSystem,
) -> Result<PipelineReport, MetaCacheError> {
    system.reset_clocks();
    let records: Vec<SequenceRecord> = references.iter().map(|(r, _)| r.clone()).collect();
    let expected = estimate_locations(&config, &records) / system.device_count().max(1) + 1024;
    let mut builder = GpuBuilder::new(config, taxonomy, system, expected)?;
    for (record, taxon) in references {
        builder.add_target(record.clone(), *taxon)?;
    }
    let build_time = system.makespan();
    let database = builder.finish();

    system.reset_clocks();
    let classifier = GpuClassifier::new(&database, system);
    let (classifications, _) = classifier.classify_all(reads);
    // The build-phase table is not compacted, so OTF queries run ~20% slower
    // than queries against the condensed layout (§6.3).
    let query_time = SimDuration::from_nanos((system.makespan().as_nanos() as f64 * 1.25) as u64);

    Ok(PipelineReport {
        database,
        phases: PhaseTimes {
            build: build_time,
            write: SimDuration::ZERO,
            load: SimDuration::ZERO,
            query: query_time,
        },
        classifications,
        db_file_bytes: 0,
    })
}

/// Build, write the database to `dir`, load it back (condensed layout) and
/// query — the traditional W+L workflow.
#[allow(clippy::too_many_arguments)] // mirrors the phases of the W+L workflow
pub fn run_write_load_query(
    config: MetaCacheConfig,
    taxonomy: Taxonomy,
    references: &[(SequenceRecord, TaxonId)],
    reads: &[SequenceRecord],
    system: &MultiGpuSystem,
    disk: DiskModel,
    dir: impl AsRef<std::path::Path>,
    name: &str,
) -> Result<PipelineReport, MetaCacheError> {
    system.reset_clocks();
    let records: Vec<SequenceRecord> = references.iter().map(|(r, _)| r.clone()).collect();
    let expected = estimate_locations(&config, &records) / system.device_count().max(1) + 1024;
    let mut builder = GpuBuilder::new(config, taxonomy, system, expected)?;
    for (record, taxon) in references {
        builder.add_target(record.clone(), *taxon)?;
    }
    let build_time = system.makespan();
    let database = builder.finish();

    // Write phase: serialize to disk; the simulated write time is derived
    // from the written byte count through the disk model.
    let report = serialize::save(&database, &dir, name)?;
    let write_time = disk.write_time(report.total_bytes);

    // Load phase: read the files back into the condensed layout.
    let loaded = serialize::load(&dir, name)?;
    let load_time = disk.read_time(report.total_bytes);

    // Query phase against the condensed database.
    system.reset_clocks();
    let classifier = GpuClassifier::new(&loaded, system);
    let (classifications, _) = classifier.classify_all(reads);
    let query_time = system.makespan();

    Ok(PipelineReport {
        database: loaded,
        phases: PhaseTimes {
            build: build_time,
            write: write_time,
            load: load_time,
            query: query_time,
        },
        classifications,
        db_file_bytes: report.total_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_taxonomy::Rank;

    fn make_seq(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                b"ACGT"[(state >> 33) as usize % 4]
            })
            .collect()
    }

    fn setup() -> (
        Taxonomy,
        Vec<(SequenceRecord, TaxonId)>,
        Vec<SequenceRecord>,
    ) {
        let mut taxonomy = Taxonomy::with_root();
        taxonomy.add_node(10, 1, Rank::Genus, "G").unwrap();
        taxonomy.add_node(100, 10, Rank::Species, "a").unwrap();
        taxonomy.add_node(101, 10, Rank::Species, "b").unwrap();
        let genome_a = make_seq(10_000, 1);
        let genome_b = make_seq(10_000, 2);
        let reads: Vec<SequenceRecord> = (0..20)
            .map(|i| {
                let (g, o) = if i % 2 == 0 {
                    (&genome_a, 100 + i * 61)
                } else {
                    (&genome_b, 300 + i * 83)
                };
                SequenceRecord::new(format!("r{i}"), g[o..o + 110].to_vec())
            })
            .collect();
        let references = vec![
            (SequenceRecord::new("a", genome_a), 100),
            (SequenceRecord::new("b", genome_b), 101),
        ];
        (taxonomy, references, reads)
    }

    #[test]
    fn otf_skips_disk_phases_and_wl_does_not() {
        let (taxonomy, references, reads) = setup();
        let system = MultiGpuSystem::dgx1(2);
        let otf = run_on_the_fly(
            MetaCacheConfig::for_tests(),
            taxonomy.clone(),
            &references,
            &reads,
            &system,
        )
        .unwrap();
        assert_eq!(otf.phases.write, SimDuration::ZERO);
        assert_eq!(otf.phases.load, SimDuration::ZERO);
        assert!(otf.phases.build > SimDuration::ZERO);
        assert!(otf.phases.query > SimDuration::ZERO);
        assert_eq!(otf.db_file_bytes, 0);

        let dir = std::env::temp_dir().join("metacache_pipeline_test");
        let wl = run_write_load_query(
            MetaCacheConfig::for_tests(),
            taxonomy,
            &references,
            &reads,
            &system,
            DiskModel::default(),
            &dir,
            "wl",
        )
        .unwrap();
        assert!(wl.phases.write > SimDuration::ZERO);
        assert!(wl.phases.load > SimDuration::ZERO);
        assert!(wl.db_file_bytes > 0);
        // The core claim of Table 5: OTF time-to-query is strictly shorter.
        assert!(otf.phases.time_to_query() < wl.phases.time_to_query());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn otf_and_wl_classifications_agree() {
        let (taxonomy, references, reads) = setup();
        let system = MultiGpuSystem::dgx1(2);
        let otf = run_on_the_fly(
            MetaCacheConfig::for_tests(),
            taxonomy.clone(),
            &references,
            &reads,
            &system,
        )
        .unwrap();
        let dir = std::env::temp_dir().join("metacache_pipeline_agree");
        let wl = run_write_load_query(
            MetaCacheConfig::for_tests(),
            taxonomy,
            &references,
            &reads,
            &system,
            DiskModel::default(),
            &dir,
            "wl",
        )
        .unwrap();
        assert_eq!(otf.classifications, wl.classifications);
        let correct = otf
            .classifications
            .iter()
            .enumerate()
            .filter(|(i, c)| c.taxon == if i % 2 == 0 { 100 } else { 101 })
            .count();
        assert!(correct >= 18, "only {correct}/20 classified correctly");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn phase_times_arithmetic() {
        let phases = PhaseTimes {
            build: SimDuration::from_secs_f64(10.0),
            write: SimDuration::from_secs_f64(50.0),
            load: SimDuration::from_secs_f64(40.0),
            query: SimDuration::from_secs_f64(5.0),
        };
        assert!((phases.time_to_query().as_secs_f64() - 100.0).abs() < 1e-9);
        assert!((phases.total().as_secs_f64() - 105.0).abs() < 1e-9);
    }

    #[test]
    fn disk_model_times_scale_with_bytes() {
        let disk = DiskModel::default();
        assert!(disk.write_time(10_000_000_000) > disk.write_time(1_000_000_000));
        assert!(disk.read_time(0) == SimDuration::ZERO);
    }
}
