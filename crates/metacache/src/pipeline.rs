//! High-level pipelines: the streaming query pipeline, plus the separate
//! build/query runs vs the on-the-fly mode.
//!
//! # The streaming query pipeline
//!
//! The paper's headline throughput comes from *pipelining*: reads stream from
//! disk through parsing, sketching and table lookup without the whole input
//! ever being materialised (§5, Figure 2). [`StreamingClassifier`] is that
//! architecture on the host side:
//!
//! ```text
//!  parse ──► bounded batch queue ──► worker pool ──► reorder ──► sink
//!  (1 producer thread)  (mc-seqio)   (N workers, one  (sequence-   (caller's
//!   assembles batches of             Backend worker   numbered     FnMut, in
//!   `batch_records` reads            each, scratch    batches)     input order)
//!                                    reused across batches)
//! ```
//!
//! The worker stage is written against the [`Backend`] trait, so the same
//! pipeline drives the host path ([`crate::backend::HostBackend`], one
//! `QueryScratch` per worker) and the simulated multi-GPU path
//! ([`crate::backend::GpuBackend`], batches issued round-robin across
//! devices). For many concurrent streams multiplexing over one long-lived
//! worker pool, see [`crate::serving::ServingEngine`].
//!
//! Memory stays bounded regardless of input size: a credit scheme caps the
//! number of batches alive anywhere in the pipeline (queue + workers +
//! reorder buffer) at `queue_capacity + workers`, so memory is
//! O(`batch_records` × (`queue_capacity` + `workers`)). Results are emitted
//! to the sink in exact input order and are bit-identical to
//! [`Classifier::classify_batch`][crate::query::Classifier::classify_batch]
//! on the same records (property-tested in `tests/streaming.rs`).
//!
//! # W+L vs OTF
//!
//! The paper's Table 5 and Figure 4 compare two ways of getting from raw
//! reference genomes to classified reads:
//!
//! * **W+L (write + load)**: build the database, write it to the file system,
//!   load it back (into the condensed layout) and then query — the
//!   traditional index-based workflow.
//! * **OTF (on the fly)**: query the in-memory hash table directly after
//!   building, skipping the write and load phases entirely. The paper notes
//!   the build-time table queries about 20% slower than the condensed layout,
//!   but the saved I/O makes the time-to-query dramatically shorter.
//!
//! The runners here execute both workflows end to end on the simulated
//! multi-GPU system, returning per-phase simulated times plus the actual
//! classifications.

use std::collections::BTreeMap;
use std::ops::Deref;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use mc_gpu_sim::{MultiGpuSystem, SimDuration};
use mc_seqio::{BatchQueue, SequenceBatch, SequenceRecord};
use mc_taxonomy::{TaxonId, Taxonomy};

use crate::backend::{Backend, HostBackend};
use crate::build::{estimate_locations, GpuBuilder};
use crate::classify::Classification;
use crate::config::MetaCacheConfig;
use crate::database::Database;
use crate::error::MetaCacheError;
use crate::gpu::GpuClassifier;
use crate::serialize;

/// Shape of the streaming query pipeline: batch size, queue depth, worker
/// count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamingConfig {
    /// Number of reads per batch flowing through the queue.
    pub batch_records: usize,
    /// Bounded capacity of the parse → classify batch queue.
    pub queue_capacity: usize,
    /// Number of classification worker threads.
    pub workers: usize,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        Self {
            // Large enough that per-batch channel/condvar handoffs amortise
            // to noise (<0.1% of classify time at ~3 µs/read), small enough
            // that queue_capacity + workers batches stay modest in memory.
            batch_records: 1024,
            queue_capacity: 4,
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

impl StreamingConfig {
    /// Clamp every knob to at least 1 (a zero would deadlock or divide work
    /// into nothing).
    fn normalized(mut self) -> Self {
        self.batch_records = self.batch_records.max(1);
        self.queue_capacity = self.queue_capacity.max(1);
        self.workers = self.workers.max(1);
        self
    }

    /// Hard cap on batches alive anywhere in the pipeline (queue, workers,
    /// reorder buffer) enforced by the credit scheme: `queue_capacity +
    /// workers`. Peak pipeline memory is this many batches of
    /// `batch_records` reads each.
    pub fn max_in_flight_batches(&self) -> usize {
        self.queue_capacity.max(1) + self.workers.max(1)
    }
}

/// Counters reported by a completed streaming run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamingSummary {
    /// Records classified and emitted to the sink.
    pub records: u64,
    /// Batches that flowed through the pipeline.
    pub batches: u64,
    /// Sequence bases consumed (both mates of paired reads).
    pub bases: u64,
    /// High-water mark of the parse → classify queue occupancy gauge. The
    /// channel itself holds at most `queue_capacity` batches; the gauge also
    /// counts the producer's in-progress send and workers completing a recv,
    /// so it is bounded by `queue_capacity + 1 + workers`.
    pub peak_queue_batches: u64,
    /// High-water mark of batches alive anywhere in the pipeline (bounded by
    /// [`StreamingConfig::max_in_flight_batches`]).
    pub peak_resident_batches: u64,
}

/// Counting semaphore bounding the number of batches alive in the pipeline.
///
/// The producer acquires one credit per batch *before* assembling it; the
/// credit is released only when the reorder stage has emitted the batch to
/// the sink. Total resident batches (queue + workers + completed-but-unordered
/// reorder buffer) therefore never exceed the credit total.
struct Credits {
    state: Mutex<CreditState>,
    cond: Condvar,
    total: usize,
    peak: AtomicU64,
}

struct CreditState {
    in_use: usize,
    closed: bool,
}

impl Credits {
    fn new(total: usize) -> Self {
        Self {
            state: Mutex::new(CreditState {
                in_use: 0,
                closed: false,
            }),
            cond: Condvar::new(),
            total: total.max(1),
            peak: AtomicU64::new(0),
        }
    }

    /// Block until a credit is available. Returns `false` if the pipeline was
    /// closed (consumer gone) so the producer can abort instead of deadlock.
    fn acquire(&self) -> bool {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.closed {
                return false;
            }
            if state.in_use < self.total {
                state.in_use += 1;
                self.peak.fetch_max(state.in_use as u64, Ordering::Relaxed);
                return true;
            }
            state = self.cond.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn release(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.in_use = state.in_use.saturating_sub(1);
        drop(state);
        self.cond.notify_one();
    }

    /// Wake every blocked producer and make further acquires fail.
    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        drop(state);
        self.cond.notify_all();
    }

    fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// A classified batch travelling from a worker to the reorder stage.
struct ClassifiedBatch {
    index: u64,
    records: Vec<SequenceRecord>,
    classifications: Vec<Classification>,
}

/// Closes the credit gate when dropped — including during an unwind, so a
/// panicking worker or sink can never leave the producer blocked on a credit
/// that no one will release (the scope join would deadlock instead of
/// propagating the panic). Closing after a normal exit is harmless: by then
/// the producer has already finished.
struct CloseCreditsOnDrop<'a>(&'a Credits);

impl Drop for CloseCreditsOnDrop<'_> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// Streaming classification: parse → bounded batch queue → parallel
/// classification → in-order emission, overlapping all stages across threads.
///
/// Produces classifications bit-identical to
/// [`Classifier::classify_batch`][crate::query::Classifier::classify_batch]
/// on the same record sequence while holding
/// at most [`StreamingConfig::max_in_flight_batches`] batches in memory, so
/// inputs of any size stream through in O(`batch_records` ×
/// (`queue_capacity` + `workers`)) space. See the [module docs](self) for
/// the stage diagram.
///
/// # Example
///
/// ```
/// use metacache::{MetaCacheConfig, build::CpuBuilder};
/// use metacache::pipeline::StreamingClassifier;
/// use mc_seqio::SequenceRecord;
/// use mc_taxonomy::{Rank, Taxonomy};
///
/// // Build a one-species database from a pseudo-random genome.
/// let mut taxonomy = Taxonomy::with_root();
/// taxonomy.add_node(100, 1, Rank::Species, "Species A").unwrap();
/// let mut state = 7u64;
/// let genome: Vec<u8> = (0..8000)
///     .map(|_| {
///         state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
///         b"ACGT"[(state >> 33) as usize % 4]
///     })
///     .collect();
/// let mut builder = CpuBuilder::new(MetaCacheConfig::default(), taxonomy);
/// builder.add_target(SequenceRecord::new("refA", genome.clone()), 100).unwrap();
/// let db = builder.finish();
///
/// // Stream reads drawn from the genome through the pipeline.
/// let streaming = StreamingClassifier::new(&db);
/// let reads = (0..40).map(|i| {
///     SequenceRecord::new(format!("r{i}"), genome[i * 50..i * 50 + 150].to_vec())
/// });
/// let (classifications, summary) = streaming.classify_iter(reads);
/// assert_eq!(classifications.len(), 40);
/// assert!(classifications.iter().all(|c| c.taxon == 100));
/// assert_eq!(summary.records, 40);
/// ```
pub struct StreamingClassifier<B = HostBackend<Arc<Database>>>
where
    B: Backend,
{
    backend: B,
    config: StreamingConfig,
}

impl<D> StreamingClassifier<HostBackend<D>>
where
    D: Deref<Target = Database> + Clone + Send + Sync,
{
    /// Create a host-path streaming classifier with the default pipeline
    /// shape. `db` can be a borrow (`&Database`) or an owning handle
    /// (`Arc<Database>`).
    pub fn new(db: D) -> Self {
        Self::with_config(db, StreamingConfig::default())
    }

    /// Create a host-path streaming classifier with an explicit pipeline
    /// shape.
    pub fn with_config(db: D, config: StreamingConfig) -> Self {
        Self::with_backend(HostBackend::new(db), config)
    }
}

impl<B> StreamingClassifier<B>
where
    B: Backend,
{
    /// Create a streaming classifier over an explicit execution backend —
    /// the pipeline is written once against [`Backend`], so the same stages
    /// drive the host path and [`crate::backend::GpuBackend`].
    pub fn with_backend(backend: B, config: StreamingConfig) -> Self {
        Self {
            backend,
            config: config.normalized(),
        }
    }

    /// The execution backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The (normalised) pipeline shape.
    pub fn config(&self) -> &StreamingConfig {
        &self.config
    }

    /// Stream a fallible record source through the pipeline, calling `sink`
    /// with `(record_index, record, classification)` in exact input order.
    ///
    /// The source iterator runs on a dedicated producer thread, so parsing
    /// overlaps classification. On a source error the pipeline drains what
    /// was already queued (those records still reach the sink) and then
    /// returns the error.
    pub fn classify_stream<I, E, F>(
        &self,
        records: I,
        mut sink: F,
    ) -> std::result::Result<StreamingSummary, E>
    where
        I: IntoIterator<Item = std::result::Result<SequenceRecord, E>>,
        I::IntoIter: Send,
        E: Send,
        F: FnMut(u64, &SequenceRecord, &Classification),
    {
        let config = self.config;
        let queue = BatchQueue::new(config.queue_capacity, config.batch_records);
        let queue_stats = queue.stats();
        let (batch_tx, batch_rx) = queue.split();
        let credits = Credits::new(config.max_in_flight_batches());
        // The worker → reorder channel; sized to the credit total so workers
        // never block on it while holding a credit the reorder stage needs.
        let (out_tx, out_rx) =
            std::sync::mpsc::sync_channel::<ClassifiedBatch>(config.max_in_flight_batches());
        let source = records.into_iter();
        let backend = &self.backend;
        let credits = &credits;

        let mut summary = StreamingSummary::default();
        let mut source_error: Option<E> = None;

        std::thread::scope(|scope| {
            // --- Producer: pull records, assemble batches, push with
            //     backpressure. ---
            let producer = scope.spawn(move || -> Option<E> {
                let mut current: Vec<SequenceRecord> = Vec::with_capacity(config.batch_records);
                let mut have_credit = false;
                let mut error = None;
                for item in source {
                    match item {
                        Ok(record) => {
                            if !have_credit {
                                if !credits.acquire() {
                                    return None; // pipeline torn down
                                }
                                have_credit = true;
                            }
                            current.push(record);
                            if current.len() >= config.batch_records {
                                let batch = SequenceBatch::new(0, std::mem::take(&mut current));
                                if batch_tx.send(batch).is_err() {
                                    credits.release();
                                    return None;
                                }
                                have_credit = false;
                                current = Vec::with_capacity(config.batch_records);
                            }
                        }
                        Err(e) => {
                            error = Some(e);
                            break;
                        }
                    }
                }
                if !current.is_empty() {
                    if batch_tx.send(SequenceBatch::new(0, current)).is_err() {
                        credits.release();
                    }
                } else if have_credit {
                    credits.release();
                }
                error
            });

            // --- Workers: classify batches with one persistent backend
            //     worker each (the host worker owns a reused QueryScratch;
            //     the GPU worker rotates issue devices). ---
            for _ in 0..config.workers {
                let rx = batch_rx.clone();
                let tx = out_tx.clone();
                scope.spawn(move || {
                    let _teardown = CloseCreditsOnDrop(credits);
                    let mut worker = backend.worker();
                    while let Ok(batch) = rx.recv() {
                        let mut classifications = Vec::with_capacity(batch.records.len());
                        worker.classify_batch_into(&batch.records, &mut classifications);
                        let done = ClassifiedBatch {
                            index: batch.index,
                            records: batch.records,
                            classifications,
                        };
                        if tx.send(done).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(batch_rx);
            drop(out_tx);

            // --- Reorder: emit batches in sequence-number order on the
            //     calling thread. The guard also closes the credit gate if
            //     the caller's sink panics mid-loop. ---
            let _teardown = CloseCreditsOnDrop(credits);
            let mut pending: BTreeMap<u64, ClassifiedBatch> = BTreeMap::new();
            let mut next_index: u64 = 0;
            let mut record_index: u64 = 0;
            while let Ok(done) = out_rx.recv() {
                pending.insert(done.index, done);
                while let Some(batch) = pending.remove(&next_index) {
                    for (record, classification) in batch.records.iter().zip(&batch.classifications)
                    {
                        sink(record_index, record, classification);
                        summary.bases += record.total_len() as u64;
                        record_index += 1;
                    }
                    summary.records += batch.records.len() as u64;
                    summary.batches += 1;
                    next_index += 1;
                    credits.release();
                }
            }
            // Out channel closed: every worker is done. Unblock the producer
            // in case it is still waiting on a credit (only possible if a
            // worker died without draining the queue).
            credits.close();
            source_error = producer.join().expect("streaming producer panicked");
        });

        summary.peak_queue_batches = queue_stats.peak_in_flight();
        summary.peak_resident_batches = credits.peak();
        match source_error {
            Some(e) => Err(e),
            None => Ok(summary),
        }
    }

    /// Stream an infallible record source and collect the classifications in
    /// input order. Convenience form of [`Self::classify_stream`].
    pub fn classify_iter<I>(&self, records: I) -> (Vec<Classification>, StreamingSummary)
    where
        I: IntoIterator<Item = SequenceRecord>,
        I::IntoIter: Send,
    {
        let mut out = Vec::new();
        let result = self.classify_stream(
            records.into_iter().map(Ok::<_, std::convert::Infallible>),
            |_, _, c| out.push(*c),
        );
        let summary = match result {
            Ok(summary) => summary,
            Err(infallible) => match infallible {},
        };
        (out, summary)
    }

    /// Stream a FASTA/FASTQ file (auto-detected) from disk through the
    /// pipeline without materialising it, collecting the classifications in
    /// file order.
    pub fn classify_file(
        &self,
        path: impl AsRef<Path>,
    ) -> crate::Result<(Vec<Classification>, StreamingSummary)> {
        let stream = mc_seqio::SequenceReader::open(path).map_err(MetaCacheError::from)?;
        let mut out = Vec::new();
        let summary = self.classify_stream(stream, |_, _, c| out.push(*c))?;
        Ok((out, summary))
    }

    /// The database this classifier queries.
    pub fn database(&self) -> &Database {
        self.backend.database()
    }
}

/// Throughput model of the file system holding the database files.
///
/// The paper loads everything from a RAM drive; writing the 88–176 GB GPU
/// databases still dominates the build phase of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Sequential write bandwidth in bytes/second.
    pub write_bandwidth: f64,
    /// Sequential read bandwidth in bytes/second.
    pub read_bandwidth: f64,
}

impl Default for DiskModel {
    fn default() -> Self {
        Self {
            write_bandwidth: 1.8e9,
            read_bandwidth: 2.2e9,
        }
    }
}

impl DiskModel {
    /// Time to write `bytes` to the file system.
    pub fn write_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.write_bandwidth)
    }

    /// Time to read `bytes` from the file system.
    pub fn read_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.read_bandwidth)
    }
}

/// Simulated duration of each phase of a pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Database construction (device makespan).
    pub build: SimDuration,
    /// Writing the database files ([`SimDuration::ZERO`] in OTF mode).
    pub write: SimDuration,
    /// Loading the database files ([`SimDuration::ZERO`] in OTF mode).
    pub load: SimDuration,
    /// Query execution.
    pub query: SimDuration,
}

impl PhaseTimes {
    /// Time until the first query can be executed (Table 5's TTQ column):
    /// build + write + load.
    pub fn time_to_query(&self) -> SimDuration {
        self.build + self.write + self.load
    }

    /// Total end-to-end time.
    pub fn total(&self) -> SimDuration {
        self.time_to_query() + self.query
    }
}

/// The result of an end-to-end pipeline run. The database is returned behind
/// an [`Arc`] so callers can hand it straight to serving components
/// ([`crate::serving::ServingEngine`], backends) without a copy.
pub struct PipelineReport {
    /// The constructed (or reloaded) database.
    pub database: Arc<Database>,
    /// Per-phase simulated times.
    pub phases: PhaseTimes,
    /// Classifications of the query reads.
    pub classifications: Vec<Classification>,
    /// Serialized database size in bytes (0 in OTF mode).
    pub db_file_bytes: u64,
}

/// Build on the simulated devices and query **on the fly** (no disk I/O).
pub fn run_on_the_fly(
    config: MetaCacheConfig,
    taxonomy: Taxonomy,
    references: &[(SequenceRecord, TaxonId)],
    reads: &[SequenceRecord],
    system: &MultiGpuSystem,
) -> Result<PipelineReport, MetaCacheError> {
    system.reset_clocks();
    let records: Vec<SequenceRecord> = references.iter().map(|(r, _)| r.clone()).collect();
    let expected = estimate_locations(&config, &records) / system.device_count().max(1) + 1024;
    let mut builder = GpuBuilder::new(config, taxonomy, system, expected)?;
    for (record, taxon) in references {
        builder.add_target(record.clone(), *taxon)?;
    }
    let build_time = system.makespan();
    let database = Arc::new(builder.finish());

    system.reset_clocks();
    let classifier = GpuClassifier::new(Arc::clone(&database), system);
    let (classifications, _) = classifier.classify_all(reads);
    // The build-phase table is not compacted, so OTF queries run ~20% slower
    // than queries against the condensed layout (§6.3).
    let query_time = SimDuration::from_nanos((system.makespan().as_nanos() as f64 * 1.25) as u64);

    Ok(PipelineReport {
        database,
        phases: PhaseTimes {
            build: build_time,
            write: SimDuration::ZERO,
            load: SimDuration::ZERO,
            query: query_time,
        },
        classifications,
        db_file_bytes: 0,
    })
}

/// Build, write the database to `dir`, load it back (condensed layout) and
/// query — the traditional W+L workflow.
#[allow(clippy::too_many_arguments)] // mirrors the phases of the W+L workflow
pub fn run_write_load_query(
    config: MetaCacheConfig,
    taxonomy: Taxonomy,
    references: &[(SequenceRecord, TaxonId)],
    reads: &[SequenceRecord],
    system: &MultiGpuSystem,
    disk: DiskModel,
    dir: impl AsRef<std::path::Path>,
    name: &str,
) -> Result<PipelineReport, MetaCacheError> {
    system.reset_clocks();
    let records: Vec<SequenceRecord> = references.iter().map(|(r, _)| r.clone()).collect();
    let expected = estimate_locations(&config, &records) / system.device_count().max(1) + 1024;
    let mut builder = GpuBuilder::new(config, taxonomy, system, expected)?;
    for (record, taxon) in references {
        builder.add_target(record.clone(), *taxon)?;
    }
    let build_time = system.makespan();
    let database = builder.finish();

    // Write phase: serialize to disk; the simulated write time is derived
    // from the written byte count through the disk model.
    let report = serialize::save(&database, &dir, name)?;
    let write_time = disk.write_time(report.total_bytes);

    // Load phase: read the files back into the condensed layout.
    let loaded = serialize::load(&dir, name)?;
    let load_time = disk.read_time(report.total_bytes);

    // Query phase against the condensed database.
    system.reset_clocks();
    let classifier = GpuClassifier::new(Arc::clone(&loaded), system);
    let (classifications, _) = classifier.classify_all(reads);
    let query_time = system.makespan();

    Ok(PipelineReport {
        database: loaded,
        phases: PhaseTimes {
            build: build_time,
            write: write_time,
            load: load_time,
            query: query_time,
        },
        classifications,
        db_file_bytes: report.total_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Classifier;
    use mc_taxonomy::Rank;

    fn make_seq(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                b"ACGT"[(state >> 33) as usize % 4]
            })
            .collect()
    }

    fn setup() -> (
        Taxonomy,
        Vec<(SequenceRecord, TaxonId)>,
        Vec<SequenceRecord>,
    ) {
        let mut taxonomy = Taxonomy::with_root();
        taxonomy.add_node(10, 1, Rank::Genus, "G").unwrap();
        taxonomy.add_node(100, 10, Rank::Species, "a").unwrap();
        taxonomy.add_node(101, 10, Rank::Species, "b").unwrap();
        let genome_a = make_seq(10_000, 1);
        let genome_b = make_seq(10_000, 2);
        let reads: Vec<SequenceRecord> = (0..20)
            .map(|i| {
                let (g, o) = if i % 2 == 0 {
                    (&genome_a, 100 + i * 61)
                } else {
                    (&genome_b, 300 + i * 83)
                };
                SequenceRecord::new(format!("r{i}"), g[o..o + 110].to_vec())
            })
            .collect();
        let references = vec![
            (SequenceRecord::new("a", genome_a), 100),
            (SequenceRecord::new("b", genome_b), 101),
        ];
        (taxonomy, references, reads)
    }

    #[test]
    fn otf_skips_disk_phases_and_wl_does_not() {
        let (taxonomy, references, reads) = setup();
        let system = MultiGpuSystem::dgx1(2);
        let otf = run_on_the_fly(
            MetaCacheConfig::for_tests(),
            taxonomy.clone(),
            &references,
            &reads,
            &system,
        )
        .unwrap();
        assert_eq!(otf.phases.write, SimDuration::ZERO);
        assert_eq!(otf.phases.load, SimDuration::ZERO);
        assert!(otf.phases.build > SimDuration::ZERO);
        assert!(otf.phases.query > SimDuration::ZERO);
        assert_eq!(otf.db_file_bytes, 0);

        let dir = std::env::temp_dir().join("metacache_pipeline_test");
        let wl = run_write_load_query(
            MetaCacheConfig::for_tests(),
            taxonomy,
            &references,
            &reads,
            &system,
            DiskModel::default(),
            &dir,
            "wl",
        )
        .unwrap();
        assert!(wl.phases.write > SimDuration::ZERO);
        assert!(wl.phases.load > SimDuration::ZERO);
        assert!(wl.db_file_bytes > 0);
        // The core claim of Table 5: OTF time-to-query is strictly shorter.
        assert!(otf.phases.time_to_query() < wl.phases.time_to_query());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn otf_and_wl_classifications_agree() {
        let (taxonomy, references, reads) = setup();
        let system = MultiGpuSystem::dgx1(2);
        let otf = run_on_the_fly(
            MetaCacheConfig::for_tests(),
            taxonomy.clone(),
            &references,
            &reads,
            &system,
        )
        .unwrap();
        let dir = std::env::temp_dir().join("metacache_pipeline_agree");
        let wl = run_write_load_query(
            MetaCacheConfig::for_tests(),
            taxonomy,
            &references,
            &reads,
            &system,
            DiskModel::default(),
            &dir,
            "wl",
        )
        .unwrap();
        assert_eq!(otf.classifications, wl.classifications);
        let correct = otf
            .classifications
            .iter()
            .enumerate()
            .filter(|(i, c)| c.taxon == if i % 2 == 0 { 100 } else { 101 })
            .count();
        assert!(correct >= 18, "only {correct}/20 classified correctly");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn streaming_db() -> (Database, Vec<SequenceRecord>) {
        use crate::build::CpuBuilder;
        let (taxonomy, references, _) = setup();
        let mut builder = CpuBuilder::new(MetaCacheConfig::for_tests(), taxonomy);
        for (record, taxon) in &references {
            builder.add_target(record.clone(), *taxon).unwrap();
        }
        let db = builder.finish();
        let reads: Vec<SequenceRecord> = (0..50)
            .map(|i| {
                let genome = &references[i % 2].0.sequence;
                let offset = 100 + i * 53;
                SequenceRecord::new(format!("r{i}"), genome[offset..offset + 120].to_vec())
            })
            .collect();
        (db, reads)
    }

    #[test]
    fn streaming_matches_materialised_batch() {
        let (db, reads) = streaming_db();
        let materialised = Classifier::new(&db).classify_batch(&reads);
        for (batch_records, workers) in [(1, 1), (3, 2), (7, 4), (64, 2), (200, 3)] {
            let streaming = StreamingClassifier::with_config(
                &db,
                StreamingConfig {
                    batch_records,
                    queue_capacity: 2,
                    workers,
                },
            );
            let (streamed, summary) = streaming.classify_iter(reads.iter().cloned());
            assert_eq!(
                streamed, materialised,
                "batch_records={batch_records} workers={workers}"
            );
            assert_eq!(summary.records, reads.len() as u64);
            assert_eq!(
                summary.batches,
                (reads.len() as u64).div_ceil(batch_records as u64)
            );
        }
    }

    #[test]
    fn streaming_sink_sees_records_in_input_order() {
        let (db, reads) = streaming_db();
        let streaming = StreamingClassifier::with_config(
            &db,
            StreamingConfig {
                batch_records: 4,
                queue_capacity: 2,
                workers: 4,
            },
        );
        let mut seen = Vec::new();
        let summary = streaming
            .classify_stream(
                reads.iter().cloned().map(Ok::<_, std::convert::Infallible>),
                |index, record, _| seen.push((index, record.header.clone())),
            )
            .unwrap();
        assert_eq!(seen.len(), reads.len());
        for (i, (index, header)) in seen.iter().enumerate() {
            assert_eq!(*index, i as u64);
            assert_eq!(header, &reads[i].header);
        }
        assert!(summary.bases > 0);
    }

    #[test]
    fn streaming_respects_in_flight_bounds() {
        let (db, reads) = streaming_db();
        let config = StreamingConfig {
            batch_records: 2,
            queue_capacity: 2,
            workers: 2,
        };
        let streaming = StreamingClassifier::with_config(&db, config);
        let (_, summary) = streaming.classify_iter(reads.iter().cloned());
        // The channel holds at most `queue_capacity` batches; the gauge
        // additionally counts the single producer's blocked send and each
        // worker finishing a recv.
        assert!(
            summary.peak_queue_batches <= (config.queue_capacity + 1 + config.workers) as u64,
            "queue peak {} exceeds capacity {} + producer + workers",
            summary.peak_queue_batches,
            config.queue_capacity
        );
        assert!(
            summary.peak_resident_batches <= config.max_in_flight_batches() as u64,
            "resident peak {} exceeds credit total {}",
            summary.peak_resident_batches,
            config.max_in_flight_batches()
        );
    }

    #[test]
    fn streaming_source_error_drains_prefix_and_propagates() {
        let (db, reads) = streaming_db();
        let streaming = StreamingClassifier::with_config(
            &db,
            StreamingConfig {
                batch_records: 3,
                queue_capacity: 2,
                workers: 2,
            },
        );
        let mut emitted = 0u64;
        let source =
            reads.iter().cloned().enumerate().map(
                |(i, r)| {
                    if i < 10 {
                        Ok(r)
                    } else {
                        Err("boom")
                    }
                },
            );
        let err = streaming
            .classify_stream(source, |_, _, _| emitted += 1)
            .unwrap_err();
        assert_eq!(err, "boom");
        // Every record parsed before the error — including the partial final
        // batch — was still classified and emitted.
        assert_eq!(emitted, 10, "records before the error are drained");
    }

    #[test]
    fn sink_panic_propagates_instead_of_deadlocking() {
        // More batches than the in-flight bound, so without the credit-gate
        // drop guard the producer would block forever on a credit and the
        // scope join would hang instead of propagating the panic.
        let (db, reads) = streaming_db();
        let streaming = StreamingClassifier::with_config(
            &db,
            StreamingConfig {
                batch_records: 1,
                queue_capacity: 1,
                workers: 1,
            },
        );
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            streaming.classify_stream(
                reads.iter().cloned().map(Ok::<_, std::convert::Infallible>),
                |index, _, _| {
                    if index == 5 {
                        panic!("sink failure");
                    }
                },
            )
        }));
        assert!(result.is_err(), "sink panic must propagate to the caller");
    }

    #[test]
    fn streaming_empty_input() {
        let (db, _) = streaming_db();
        let streaming = StreamingClassifier::new(&db);
        let (out, summary) = streaming.classify_iter(std::iter::empty());
        assert!(out.is_empty());
        assert_eq!(summary, StreamingSummary::default());
    }

    #[test]
    fn phase_times_arithmetic() {
        let phases = PhaseTimes {
            build: SimDuration::from_secs_f64(10.0),
            write: SimDuration::from_secs_f64(50.0),
            load: SimDuration::from_secs_f64(40.0),
            query: SimDuration::from_secs_f64(5.0),
        };
        assert!((phases.time_to_query().as_secs_f64() - 100.0).abs() < 1e-9);
        assert!((phases.total().as_secs_f64() - 105.0).abs() < 1e-9);
    }

    #[test]
    fn disk_model_times_scale_with_bytes() {
        let disk = DiskModel::default();
        assert!(disk.write_time(10_000_000_000) > disk.write_time(1_000_000_000));
        assert!(disk.read_time(0) == SimDuration::ZERO);
    }
}
