//! # metacache — minhash-based metagenomic read classification
//!
//! A from-scratch Rust reproduction of **MetaCache-GPU: Ultra-Fast
//! Metagenomic Classification** (Kobus et al., ICPP 2021). The library
//! implements the complete MetaCache pipeline:
//!
//! * **Build phase** (§4.1): reference genomes are split into windows of
//!   length `w` overlapping by `k − 1`; the `s` smallest hashes of each
//!   window's canonical k-mers form its minhash sketch, and every sketch
//!   feature is inserted into a feature → location hash table together with
//!   its (target, window) location.
//! * **Query phase** (§4.2): reads are sketched the same way, the sketches
//!   are looked up, the retrieved locations are accumulated into a window
//!   count statistic, a sliding-window scan produces candidate regions, and
//!   the read is assigned either to the top candidate's taxon or to the
//!   lowest common ancestor of all near-best candidates.
//! * **Database partitioning** (§4.3) across multiple (simulated) GPUs, the
//!   **on-the-fly mode** that queries the in-memory table right after
//!   building, database **serialization** into the `.meta` / `.cache`
//!   layout, and **abundance estimation** (§6.5).
//!
//! Two execution back ends share the same algorithms:
//!
//! * [`build::CpuBuilder`] / the host query path — the original CPU
//!   MetaCache behaviour (single hash-table inserter thread, 254-location
//!   bucket cap),
//! * [`gpu`] — the GPU pipeline of §5 running on the [`mc_gpu_sim`]
//!   substrate: warp-level sketching kernels, the multi-bucket hash table,
//!   segmented sort, top-candidate generation, multi-device partitioning and
//!   an analytical device clock that models V100 execution times.
//!
//! Reads can be classified from a fully materialised slice
//! ([`query::Classifier::classify_batch`]), streamed from disk through the
//! bounded-memory pipeline of [`pipeline::StreamingClassifier`] — which
//! overlaps parsing, sketching and table lookup across threads and emits
//! bit-identical results in input order — or served to many concurrent
//! clients by the resident [`serving::ServingEngine`]: a long-lived worker
//! pool over a shared `Arc<Database>`, multiplexing any number of
//! [`serving::Session`] streams with per-session ordering and memory bounds.
//! The host and simulated-GPU execution paths sit behind the
//! [`backend::Backend`] trait, so all three entry points drive either path
//! (see `docs/ARCHITECTURE.md`). The companion `mc-net` crate exposes the
//! serving engine over TCP (`docs/SERVING.md` specifies the wire
//! protocol):
//!
//! ```
//! # use metacache::{MetaCacheConfig, build::CpuBuilder};
//! # use metacache::pipeline::StreamingClassifier;
//! # use mc_seqio::SequenceRecord;
//! # use mc_taxonomy::{Rank, Taxonomy};
//! # let mut taxonomy = Taxonomy::with_root();
//! # taxonomy.add_node(100, 1, Rank::Species, "Species A").unwrap();
//! # let mut state = 3u64;
//! # let genome: Vec<u8> = (0..6000).map(|_| {
//! #     state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
//! #     b"ACGT"[(state >> 33) as usize % 4]
//! # }).collect();
//! # let mut builder = CpuBuilder::new(MetaCacheConfig::default(), taxonomy);
//! # builder.add_target(SequenceRecord::new("refA", genome.clone()), 100).unwrap();
//! # let db = builder.finish();
//! let streaming = StreamingClassifier::new(&db);
//! let reads = (0..10).map(|i| {
//!     SequenceRecord::new(format!("r{i}"), genome[i * 100..i * 100 + 150].to_vec())
//! });
//! let (classifications, summary) = streaming.classify_iter(reads);
//! assert_eq!(summary.records, 10);
//! assert!(classifications.iter().all(|c| c.taxon == 100));
//! ```
//!
//! ## Quick start
//!
//! ```
//! use metacache::{MetaCacheConfig, build::CpuBuilder, query::Classifier};
//! use mc_seqio::SequenceRecord;
//! use mc_taxonomy::{Rank, Taxonomy};
//!
//! // Tiny reference set: two "genomes" from two species.
//! let mut taxonomy = Taxonomy::with_root();
//! taxonomy.add_node(100, 1, Rank::Species, "Species A").unwrap();
//! taxonomy.add_node(200, 1, Rank::Species, "Species B").unwrap();
//! let genome_a: Vec<u8> = (0..4000).map(|i| b"ACGT"[(i * 7 + i / 13) % 4]).collect();
//! let genome_b: Vec<u8> = (0..4000).map(|i| b"TTGCA"[(i * 3 + i / 7) % 5]).collect();
//!
//! let config = MetaCacheConfig::default();
//! let mut builder = CpuBuilder::new(config, taxonomy);
//! builder.add_target(SequenceRecord::new("refA", genome_a.clone()), 100).unwrap();
//! builder.add_target(SequenceRecord::new("refB", genome_b), 200).unwrap();
//! let database = builder.finish();
//!
//! // Classify a read drawn from genome A.
//! let classifier = Classifier::new(&database);
//! let result = classifier.classify(&SequenceRecord::new("read", genome_a[100..220].to_vec()));
//! assert_eq!(result.taxon, 100);
//! ```

pub mod abundance;
pub mod backend;
pub mod build;
pub mod candidate;
pub mod classify;
pub mod config;
pub mod database;
pub mod error;
pub mod gpu;
pub mod pipeline;
pub mod query;
pub mod serialize;
pub mod serving;
pub mod shard;
pub mod sketch;

pub use backend::{Backend, BackendWorker, GpuBackend, HostBackend};
pub use candidate::{Candidate, CandidateList};
pub use classify::{Classification, ClassificationEvaluation};
pub use config::MetaCacheConfig;
pub use database::{Database, DatabaseDelta, DeltaStats, Partition, TargetInfo};
pub use error::MetaCacheError;
pub use pipeline::{StreamingClassifier, StreamingConfig, StreamingSummary};
pub use query::{Classifier, QueryScratch};
pub use serving::{
    EngineConfig, EngineStats, Epoch, EpochStore, ServingEngine, Session, SessionConfig,
};
pub use shard::{ShardPlan, ShardedBackend, ShardedClassifier, ShardedDatabase, ShardedScratch};
pub use sketch::{ReadSketch, Sketch, SketchScratch, Sketcher};

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, MetaCacheError>;
