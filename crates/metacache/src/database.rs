//! The reference database: targets, taxonomy and hash-table partitions.

use serde::{Deserialize, Serialize};

use mc_kmer::{Feature, Location, TargetId};
use mc_taxonomy::{LineageCache, TaxonId, Taxonomy};
use mc_warpcore::{
    pack_bucket_ref, unpack_bucket_ref, FeatureStore, HostHashTable, MultiBucketHashTable,
    SingleValueHashTable, TableError,
};

use crate::config::MetaCacheConfig;

/// Metadata of one reference target (a genome or scaffold sequence).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetInfo {
    /// The target's id (index into [`Database::targets`]).
    pub id: TargetId,
    /// Accession / name extracted from the FASTA header.
    pub name: String,
    /// The (species-level) taxon this target belongs to.
    pub taxon: TaxonId,
    /// Sequence length in bases.
    pub length: usize,
    /// Number of reference windows the target was split into.
    pub num_windows: u32,
}

/// The condensed read-only store used after loading a database from disk:
/// all buckets live in one contiguous location array and a single-value table
/// maps each feature to its (offset, length) bucket reference (§4.2, §5.1).
pub struct CondensedStore {
    index: SingleValueHashTable,
    locations: Vec<Location>,
}

impl CondensedStore {
    /// Build a condensed store from (feature, bucket) pairs.
    pub fn from_buckets(buckets: impl IntoIterator<Item = (Feature, Vec<Location>)>) -> Self {
        let buckets: Vec<(Feature, Vec<Location>)> = buckets.into_iter().collect();
        let total: usize = buckets.iter().map(|(_, b)| b.len()).sum();
        let index = SingleValueHashTable::for_expected_keys(buckets.len().max(1), 0.8);
        let mut locations = Vec::with_capacity(total);
        for (feature, bucket) in buckets {
            let offset = locations.len() as u64;
            let len = bucket.len() as u32;
            locations.extend(bucket);
            index
                .insert(feature, pack_bucket_ref(offset, len))
                .expect("condensed index sized for all keys");
        }
        Self { index, locations }
    }

    /// Number of stored locations.
    pub fn location_count(&self) -> usize {
        self.locations.len()
    }

    /// Visit every (feature, bucket) pair of the condensed layout — used when
    /// re-serialising a loaded database.
    pub fn for_each_bucket(&self, mut f: impl FnMut(Feature, &[Location])) {
        self.index.for_each(|feature, packed| {
            let (offset, len) = unpack_bucket_ref(packed);
            f(
                feature,
                &self.locations[offset as usize..offset as usize + len as usize],
            );
        });
    }
}

impl FeatureStore for CondensedStore {
    fn insert(&self, _feature: Feature, _location: Location) -> Result<(), TableError> {
        // The condensed layout is read-only (it is produced by loading a
        // database from disk).
        Err(TableError::TableFull)
    }

    fn query_into(&self, feature: Feature, out: &mut Vec<Location>) -> usize {
        match self.index.get(feature) {
            Some(packed) => {
                let (offset, len) = unpack_bucket_ref(packed);
                let slice = &self.locations[offset as usize..offset as usize + len as usize];
                out.extend_from_slice(slice);
                len as usize
            }
            None => 0,
        }
    }

    fn key_count(&self) -> usize {
        self.index.len()
    }

    fn value_count(&self) -> usize {
        self.locations.len()
    }

    fn bytes(&self) -> usize {
        self.index.bytes() + self.locations.len() * std::mem::size_of::<Location>()
    }
}

/// The hash-table back end of one database partition.
pub enum PartitionStore {
    /// The paper's novel multi-bucket device table (GPU build path).
    MultiBucket(MultiBucketHashTable),
    /// The CPU MetaCache table (host build path).
    Host(HostHashTable),
    /// The condensed read-only layout used after loading from disk.
    Condensed(CondensedStore),
}

impl PartitionStore {
    /// Access the store through the common [`FeatureStore`] interface.
    pub fn as_store(&self) -> &dyn FeatureStore {
        match self {
            PartitionStore::MultiBucket(t) => t,
            PartitionStore::Host(t) => t,
            PartitionStore::Condensed(t) => t,
        }
    }

    /// Short label used in reports.
    pub fn kind(&self) -> &'static str {
        match self {
            PartitionStore::MultiBucket(_) => "multi-bucket",
            PartitionStore::Host(_) => "host",
            PartitionStore::Condensed(_) => "condensed",
        }
    }
}

/// One database partition: the hash table plus the ids of the targets whose
/// sketches were inserted into it. In the GPU pipeline each partition lives
/// on one device (§4.1: "a single reference sequence will never be
/// distributed across multiple GPUs").
pub struct Partition {
    /// The feature → location store.
    pub store: PartitionStore,
    /// Targets assigned to this partition.
    pub targets: Vec<TargetId>,
}

impl Partition {
    /// Query a feature against this partition.
    pub fn query_into(&self, feature: Feature, out: &mut Vec<Location>) -> usize {
        self.store.as_store().query_into(feature, out)
    }

    /// Query a whole sketch (feature batch) against this partition — lets
    /// the store amortise per-lookup overhead (see
    /// [`FeatureStore::query_batch_into`]).
    pub fn query_batch_into(&self, features: &[Feature], out: &mut Vec<Location>) -> usize {
        self.store.as_store().query_batch_into(features, out)
    }

    /// Bytes occupied by this partition's table.
    pub fn bytes(&self) -> usize {
        self.store.as_store().bytes()
    }
}

/// A complete reference database.
pub struct Database {
    /// The configuration it was built with.
    pub config: MetaCacheConfig,
    /// All reference targets, indexed by [`TargetId`].
    pub targets: Vec<TargetInfo>,
    /// The taxonomy.
    pub taxonomy: Taxonomy,
    /// The constant-time LCA cache (built once, before querying).
    pub lineages: LineageCache,
    /// The hash-table partitions (one per device in the GPU pipeline).
    pub partitions: Vec<Partition>,
}

impl Database {
    /// Look up a target's metadata.
    pub fn target(&self, id: TargetId) -> Option<&TargetInfo> {
        self.targets.get(id as usize)
    }

    /// The taxon of a target ([`mc_taxonomy::NO_TAXON`] if unknown).
    pub fn taxon_of_target(&self, id: TargetId) -> TaxonId {
        self.target(id).map_or(mc_taxonomy::NO_TAXON, |t| t.taxon)
    }

    /// Number of reference targets.
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of stored (feature, location) pairs across partitions.
    pub fn total_locations(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| p.store.as_store().value_count())
            .sum()
    }

    /// Total number of distinct features across partitions (a feature present
    /// in several partitions is counted once per partition, as on real
    /// multi-GPU deployments).
    pub fn total_features(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| p.store.as_store().key_count())
            .sum()
    }

    /// Total bytes of all partition tables — the "DB size" column of Table 3.
    pub fn table_bytes(&self) -> usize {
        self.partitions.iter().map(|p| p.bytes()).sum()
    }

    /// Approximate host RAM occupied by database metadata (taxonomy, targets,
    /// lineage cache) — the "RAM" column of Table 3 for the GPU version,
    /// where the tables themselves live in device memory.
    pub fn host_metadata_bytes(&self) -> usize {
        let targets: usize = self
            .targets
            .iter()
            .map(|t| std::mem::size_of::<TargetInfo>() + t.name.len())
            .sum();
        targets + self.taxonomy.heap_bytes() + self.lineages.heap_bytes()
    }

    /// A table-free copy of this database: full configuration, target
    /// table, taxonomy and lineage cache, but no partitions. This is the
    /// shared metadata view of a scatter-gather deployment — the
    /// [`crate::shard::ShardedDatabase`] hands it to merge/classify code
    /// and a router process serves from it — where candidate *lookup*
    /// happens elsewhere (per shard) and only the final
    /// [`crate::classify::classify_candidates`] step runs locally, which
    /// touches targets, taxonomy and lineages but never the hash table.
    pub fn metadata_view(&self) -> Database {
        Database {
            config: self.config,
            targets: self.targets.clone(),
            taxonomy: self.taxonomy.clone(),
            lineages: self.lineages.clone(),
            partitions: Vec::new(),
        }
    }

    /// Query a feature against every partition, appending all hits.
    pub fn query_feature_into(&self, feature: Feature, out: &mut Vec<Location>) -> usize {
        self.partitions
            .iter()
            .map(|p| p.query_into(feature, out))
            .sum()
    }

    /// Query a read's whole feature batch against every partition, appending
    /// all hits partition-major (every feature of partition 0, then every
    /// feature of partition 1, …). The query hot path uses this so each
    /// partition's store amortises its per-lookup overhead across the batch.
    pub fn query_features_into(&self, features: &[Feature], out: &mut Vec<Location>) -> usize {
        self.partitions
            .iter()
            .map(|p| p.query_batch_into(features, out))
            .sum()
    }

    /// Rebuild the lineage cache (needed if the taxonomy was extended after
    /// construction).
    pub fn refresh_lineages(&mut self) {
        self.lineages = self.taxonomy.lineage_cache();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_taxonomy::Rank;

    fn tiny_database() -> Database {
        let mut taxonomy = Taxonomy::with_root();
        taxonomy.add_node(10, 1, Rank::Genus, "G").unwrap();
        taxonomy.add_node(100, 10, Rank::Species, "G a").unwrap();
        taxonomy.add_node(101, 10, Rank::Species, "G b").unwrap();
        let lineages = taxonomy.lineage_cache();
        let store = HostHashTable::new(Default::default());
        store.insert(7, Location::new(0, 0)).unwrap();
        store.insert(7, Location::new(1, 2)).unwrap();
        store.insert(9, Location::new(1, 3)).unwrap();
        Database {
            config: MetaCacheConfig::default(),
            targets: vec![
                TargetInfo {
                    id: 0,
                    name: "t0".into(),
                    taxon: 100,
                    length: 1000,
                    num_windows: 9,
                },
                TargetInfo {
                    id: 1,
                    name: "t1".into(),
                    taxon: 101,
                    length: 2000,
                    num_windows: 18,
                },
            ],
            taxonomy,
            lineages,
            partitions: vec![Partition {
                store: PartitionStore::Host(store),
                targets: vec![0, 1],
            }],
        }
    }

    #[test]
    fn target_and_taxon_lookup() {
        let db = tiny_database();
        assert_eq!(db.target_count(), 2);
        assert_eq!(db.target(1).unwrap().name, "t1");
        assert_eq!(db.taxon_of_target(0), 100);
        assert_eq!(db.taxon_of_target(99), mc_taxonomy::NO_TAXON);
    }

    #[test]
    fn query_feature_merges_partitions() {
        let db = tiny_database();
        let mut hits = Vec::new();
        assert_eq!(db.query_feature_into(7, &mut hits), 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(db.total_locations(), 3);
        assert_eq!(db.total_features(), 2);
        assert!(db.table_bytes() > 0);
        assert!(db.host_metadata_bytes() > 0);
    }

    #[test]
    fn condensed_store_roundtrip() {
        let buckets = vec![
            (5u32, vec![Location::new(0, 1), Location::new(0, 2)]),
            (9u32, vec![Location::new(3, 7)]),
            (
                1_000_000u32,
                (0..100).map(|w| Location::new(9, w)).collect(),
            ),
        ];
        let store = CondensedStore::from_buckets(buckets.clone());
        assert_eq!(store.location_count(), 103);
        assert_eq!(store.key_count(), 3);
        assert_eq!(store.value_count(), 103);
        for (feature, bucket) in &buckets {
            assert_eq!(&store.query(*feature), bucket);
        }
        assert!(store.query(4242).is_empty());
        // Read-only: inserts are rejected.
        assert!(store.insert(5, Location::new(0, 0)).is_err());
    }

    #[test]
    fn partition_kind_labels() {
        let db = tiny_database();
        assert_eq!(db.partitions[0].store.kind(), "host");
        let condensed = PartitionStore::Condensed(CondensedStore::from_buckets(Vec::new()));
        assert_eq!(condensed.kind(), "condensed");
    }
}
