//! The reference database: targets, taxonomy and hash-table partitions.

use serde::{Deserialize, Serialize};

use mc_kmer::{Feature, Location, TargetId};
use mc_seqio::SequenceRecord;
use mc_taxonomy::{LineageCache, Rank, TaxonId, Taxonomy};
use mc_warpcore::{
    pack_bucket_ref, unpack_bucket_ref, FeatureStore, HostHashTable, HostTableConfig,
    MultiBucketHashTable, SingleValueHashTable, TableError,
};

use crate::build::sketch_target_into;
use crate::config::MetaCacheConfig;
use crate::error::MetaCacheError;
use crate::sketch::{SketchScratch, Sketcher};

/// Metadata of one reference target (a genome or scaffold sequence).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetInfo {
    /// The target's id (index into [`Database::targets`]).
    pub id: TargetId,
    /// Accession / name extracted from the FASTA header.
    pub name: String,
    /// The (species-level) taxon this target belongs to.
    pub taxon: TaxonId,
    /// Sequence length in bases.
    pub length: usize,
    /// Number of reference windows the target was split into.
    pub num_windows: u32,
}

/// The condensed read-only store used after loading a database from disk:
/// all buckets live in one contiguous location array and a single-value table
/// maps each feature to its (offset, length) bucket reference (§4.2, §5.1).
pub struct CondensedStore {
    index: SingleValueHashTable,
    locations: Vec<Location>,
}

impl CondensedStore {
    /// Build a condensed store from (feature, bucket) pairs.
    pub fn from_buckets(buckets: impl IntoIterator<Item = (Feature, Vec<Location>)>) -> Self {
        let buckets: Vec<(Feature, Vec<Location>)> = buckets.into_iter().collect();
        let total: usize = buckets.iter().map(|(_, b)| b.len()).sum();
        let index = SingleValueHashTable::for_expected_keys(buckets.len().max(1), 0.8);
        let mut locations = Vec::with_capacity(total);
        for (feature, bucket) in buckets {
            let offset = locations.len() as u64;
            let len = bucket.len() as u32;
            locations.extend(bucket);
            index
                .insert(feature, pack_bucket_ref(offset, len))
                .expect("condensed index sized for all keys");
        }
        Self { index, locations }
    }

    /// Number of stored locations.
    pub fn location_count(&self) -> usize {
        self.locations.len()
    }

    /// Visit every (feature, bucket) pair of the condensed layout — used when
    /// re-serialising a loaded database.
    pub fn for_each_bucket(&self, mut f: impl FnMut(Feature, &[Location])) {
        self.index.for_each(|feature, packed| {
            let (offset, len) = unpack_bucket_ref(packed);
            f(
                feature,
                &self.locations[offset as usize..offset as usize + len as usize],
            );
        });
    }

    /// Convert the condensed layout back into a mutable [`HostHashTable`]
    /// so a loaded database can accept post-load insertions. Every bucket's
    /// location order is preserved, so queries against the thawed table are
    /// bit-identical to queries against the condensed store.
    pub fn thaw(&self, max_locations_per_key: usize) -> HostHashTable {
        let table = HostHashTable::new(HostTableConfig {
            max_locations_per_key,
            ..Default::default()
        });
        self.for_each_bucket(|feature, bucket| {
            for &location in bucket {
                // Buckets were capped at build time, so under the same (or a
                // larger) cap nothing is dropped; a smaller cap re-applies
                // here, exactly as a fresh build with that cap would.
                match table.insert(feature, location) {
                    Ok(()) | Err(TableError::ValueLimitReached) => {}
                    Err(e) => unreachable!("growable host table refused an insert: {e}"),
                }
            }
        });
        table
    }
}

impl FeatureStore for CondensedStore {
    fn insert(&self, _feature: Feature, _location: Location) -> Result<(), TableError> {
        // The condensed layout is read-only (it is produced by loading a
        // database from disk); [`Database::insert_target`] thaws it into a
        // host table before inserting.
        Err(TableError::ReadOnly)
    }

    fn query_into(&self, feature: Feature, out: &mut Vec<Location>) -> usize {
        match self.index.get(feature) {
            Some(packed) => {
                let (offset, len) = unpack_bucket_ref(packed);
                let slice = &self.locations[offset as usize..offset as usize + len as usize];
                out.extend_from_slice(slice);
                len as usize
            }
            None => 0,
        }
    }

    fn key_count(&self) -> usize {
        self.index.len()
    }

    fn value_count(&self) -> usize {
        self.locations.len()
    }

    fn bytes(&self) -> usize {
        self.index.bytes() + self.locations.len() * std::mem::size_of::<Location>()
    }
}

/// The hash-table back end of one database partition.
pub enum PartitionStore {
    /// The paper's novel multi-bucket device table (GPU build path).
    MultiBucket(MultiBucketHashTable),
    /// The CPU MetaCache table (host build path).
    Host(HostHashTable),
    /// The condensed read-only layout used after loading from disk.
    Condensed(CondensedStore),
}

impl PartitionStore {
    /// Access the store through the common [`FeatureStore`] interface.
    pub fn as_store(&self) -> &dyn FeatureStore {
        match self {
            PartitionStore::MultiBucket(t) => t,
            PartitionStore::Host(t) => t,
            PartitionStore::Condensed(t) => t,
        }
    }

    /// Short label used in reports.
    pub fn kind(&self) -> &'static str {
        match self {
            PartitionStore::MultiBucket(_) => "multi-bucket",
            PartitionStore::Host(_) => "host",
            PartitionStore::Condensed(_) => "condensed",
        }
    }
}

/// One database partition: the hash table plus the ids of the targets whose
/// sketches were inserted into it. In the GPU pipeline each partition lives
/// on one device (§4.1: "a single reference sequence will never be
/// distributed across multiple GPUs").
pub struct Partition {
    /// The feature → location store.
    pub store: PartitionStore,
    /// Targets assigned to this partition.
    pub targets: Vec<TargetId>,
}

impl Partition {
    /// Query a feature against this partition.
    pub fn query_into(&self, feature: Feature, out: &mut Vec<Location>) -> usize {
        self.store.as_store().query_into(feature, out)
    }

    /// Query a whole sketch (feature batch) against this partition — lets
    /// the store amortise per-lookup overhead (see
    /// [`FeatureStore::query_batch_into`]).
    pub fn query_batch_into(&self, features: &[Feature], out: &mut Vec<Location>) -> usize {
        self.store.as_store().query_batch_into(features, out)
    }

    /// Bytes occupied by this partition's table.
    pub fn bytes(&self) -> usize {
        self.store.as_store().bytes()
    }
}

/// A complete reference database.
pub struct Database {
    /// The configuration it was built with.
    pub config: MetaCacheConfig,
    /// All reference targets, indexed by [`TargetId`].
    pub targets: Vec<TargetInfo>,
    /// The taxonomy.
    pub taxonomy: Taxonomy,
    /// The constant-time LCA cache (built once, before querying).
    pub lineages: LineageCache,
    /// The hash-table partitions (one per device in the GPU pipeline).
    pub partitions: Vec<Partition>,
}

impl Database {
    /// Look up a target's metadata.
    pub fn target(&self, id: TargetId) -> Option<&TargetInfo> {
        self.targets.get(id as usize)
    }

    /// The taxon of a target ([`mc_taxonomy::NO_TAXON`] if unknown).
    pub fn taxon_of_target(&self, id: TargetId) -> TaxonId {
        self.target(id).map_or(mc_taxonomy::NO_TAXON, |t| t.taxon)
    }

    /// Number of reference targets.
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of stored (feature, location) pairs across partitions.
    pub fn total_locations(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| p.store.as_store().value_count())
            .sum()
    }

    /// Total number of distinct features across partitions (a feature present
    /// in several partitions is counted once per partition, as on real
    /// multi-GPU deployments).
    pub fn total_features(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| p.store.as_store().key_count())
            .sum()
    }

    /// Total bytes of all partition tables — the "DB size" column of Table 3.
    pub fn table_bytes(&self) -> usize {
        self.partitions.iter().map(|p| p.bytes()).sum()
    }

    /// Approximate host RAM occupied by database metadata (taxonomy, targets,
    /// lineage cache) — the "RAM" column of Table 3 for the GPU version,
    /// where the tables themselves live in device memory.
    pub fn host_metadata_bytes(&self) -> usize {
        let targets: usize = self
            .targets
            .iter()
            .map(|t| std::mem::size_of::<TargetInfo>() + t.name.len())
            .sum();
        targets + self.taxonomy.heap_bytes() + self.lineages.heap_bytes()
    }

    /// A table-free copy of this database: full configuration, target
    /// table, taxonomy and lineage cache, but no partitions. This is the
    /// shared metadata view of a scatter-gather deployment — the
    /// [`crate::shard::ShardedDatabase`] hands it to merge/classify code
    /// and a router process serves from it — where candidate *lookup*
    /// happens elsewhere (per shard) and only the final
    /// [`crate::classify::classify_candidates`] step runs locally, which
    /// touches targets, taxonomy and lineages but never the hash table.
    pub fn metadata_view(&self) -> Database {
        Database {
            config: self.config,
            targets: self.targets.clone(),
            taxonomy: self.taxonomy.clone(),
            lineages: self.lineages.clone(),
            partitions: Vec::new(),
        }
    }

    /// Query a feature against every partition, appending all hits.
    pub fn query_feature_into(&self, feature: Feature, out: &mut Vec<Location>) -> usize {
        self.partitions
            .iter()
            .map(|p| p.query_into(feature, out))
            .sum()
    }

    /// Query a read's whole feature batch against every partition, appending
    /// all hits partition-major (every feature of partition 0, then every
    /// feature of partition 1, …). The query hot path uses this so each
    /// partition's store amortises its per-lookup overhead across the batch.
    pub fn query_features_into(&self, features: &[Feature], out: &mut Vec<Location>) -> usize {
        self.partitions
            .iter()
            .map(|p| p.query_batch_into(features, out))
            .sum()
    }

    /// Rebuild the lineage cache (needed if the taxonomy was extended after
    /// construction).
    pub fn refresh_lineages(&mut self) {
        self.lineages = self.taxonomy.lineage_cache();
    }

    /// Insert one reference target into an already-built database — the
    /// incremental-construction path of the warpcore table (§4.1: references
    /// stream in and the index grows without a rebuild).
    ///
    /// The target receives the next global id and is assigned to partition
    /// `id % partition_count`, exactly where a fresh build of the extended
    /// reference set would have placed it (the CPU builder keeps one
    /// partition; the GPU builder assigns targets round-robin). A loaded
    /// (condensed) partition is thawed into a mutable host table first, and
    /// the global `max_locations_per_feature` cap re-applies to every
    /// insertion, so the result is bit-identical to building from the
    /// extended reference set in one pass.
    ///
    /// `taxon` must already exist (extend the taxonomy through
    /// [`Database::apply_delta`] to add taxa and targets together).
    pub fn insert_target(
        &mut self,
        record: SequenceRecord,
        taxon: TaxonId,
    ) -> Result<TargetId, MetaCacheError> {
        let sketcher = Sketcher::new(&self.config)?;
        let mut scratch = SketchScratch::with_capacity(self.config.sketch_size);
        let mut stats = DeltaStats::default();
        self.insert_target_inner(&sketcher, &mut scratch, record, taxon, &mut stats)
    }

    /// Apply a batch of updates: new taxonomy nodes first, then new targets
    /// (which may reference the new taxa). The lineage cache is rebuilt once
    /// if taxa were added. See [`Database::insert_target`] for the placement
    /// and capping rules; the returned [`DeltaStats`] mirror the builder's
    /// [`crate::build::BuildStats`] counters for the delta alone.
    pub fn apply_delta(&mut self, delta: DatabaseDelta) -> Result<DeltaStats, MetaCacheError> {
        for node in &delta.taxa {
            self.taxonomy
                .add_node(node.id, node.parent, node.rank, node.name.as_str())?;
        }
        if !delta.taxa.is_empty() {
            self.refresh_lineages();
        }
        let sketcher = Sketcher::new(&self.config)?;
        let mut scratch = SketchScratch::with_capacity(self.config.sketch_size);
        let mut stats = DeltaStats::default();
        for (record, taxon) in delta.targets {
            self.insert_target_inner(&sketcher, &mut scratch, record, taxon, &mut stats)?;
        }
        Ok(stats)
    }

    fn insert_target_inner(
        &mut self,
        sketcher: &Sketcher,
        scratch: &mut SketchScratch,
        record: SequenceRecord,
        taxon: TaxonId,
        stats: &mut DeltaStats,
    ) -> Result<TargetId, MetaCacheError> {
        if !self.taxonomy.contains(taxon) {
            return Err(MetaCacheError::UnknownTaxon(taxon));
        }
        if self.partitions.is_empty() {
            return Err(MetaCacheError::Config(
                "cannot insert targets into a metadata-only database (no partitions)".into(),
            ));
        }
        let target_id = self.targets.len() as TargetId;
        let idx = target_id as usize % self.partitions.len();
        let partition = &mut self.partitions[idx];
        if let PartitionStore::Condensed(condensed) = &partition.store {
            partition.store =
                PartitionStore::Host(condensed.thaw(self.config.max_locations_per_feature));
        }
        let mut counts = crate::build::SketchCounts::default();
        sketch_target_into(
            sketcher,
            scratch,
            &record,
            target_id,
            partition.store.as_store(),
            &mut counts,
        )?;
        stats.targets_added += 1;
        stats.windows_sketched += counts.windows;
        stats.locations_inserted += counts.inserted;
        stats.locations_dropped += counts.dropped;
        self.targets.push(TargetInfo {
            id: target_id,
            name: record.id().to_string(),
            taxon,
            length: record.sequence.len(),
            num_windows: sketcher.num_windows(record.sequence.len()),
        });
        partition.targets.push(target_id);
        Ok(target_id)
    }
}

/// One new taxonomy node carried by a [`DatabaseDelta`].
#[derive(Debug, Clone)]
struct DeltaTaxon {
    id: TaxonId,
    parent: TaxonId,
    rank: Rank,
    name: String,
}

/// A batch of post-load database updates: new taxonomy nodes plus new
/// reference targets, applied atomically (with respect to the owning
/// `&mut Database`) by [`Database::apply_delta`].
///
/// The delta form exists so a reference-set update lands as *one* new
/// database state: serving layers build the next state with one
/// `apply_delta`, wrap it in an `Arc`, and swap it into an
/// [`crate::serving::EpochStore`] — readers never observe a half-applied
/// update.
#[derive(Debug, Clone, Default)]
pub struct DatabaseDelta {
    taxa: Vec<DeltaTaxon>,
    targets: Vec<(SequenceRecord, TaxonId)>,
}

impl DatabaseDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a new taxonomy node. Nodes are added in queue order, before any
    /// target, so a node may reference an earlier queued node as its parent.
    pub fn add_taxon(
        &mut self,
        id: TaxonId,
        parent: TaxonId,
        rank: Rank,
        name: impl Into<String>,
    ) -> &mut Self {
        self.taxa.push(DeltaTaxon {
            id,
            parent,
            rank,
            name: name.into(),
        });
        self
    }

    /// Queue a new reference target belonging to `taxon` (pre-existing or
    /// queued via [`DatabaseDelta::add_taxon`]).
    pub fn add_target(&mut self, record: SequenceRecord, taxon: TaxonId) -> &mut Self {
        self.targets.push((record, taxon));
        self
    }

    /// Number of queued targets.
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Number of queued taxonomy nodes.
    pub fn taxon_count(&self) -> usize {
        self.taxa.len()
    }

    /// Whether the delta carries no updates at all.
    pub fn is_empty(&self) -> bool {
        self.taxa.is_empty() && self.targets.is_empty()
    }
}

/// Counters of one applied [`DatabaseDelta`] (the delta's share of what
/// [`crate::build::BuildStats`] counts for a full build).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Targets inserted by the delta.
    pub targets_added: usize,
    /// Reference windows sketched.
    pub windows_sketched: u64,
    /// (feature, location) pairs inserted (after capping).
    pub locations_inserted: u64,
    /// Locations dropped by the per-feature cap.
    pub locations_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_taxonomy::Rank;

    fn tiny_database() -> Database {
        let mut taxonomy = Taxonomy::with_root();
        taxonomy.add_node(10, 1, Rank::Genus, "G").unwrap();
        taxonomy.add_node(100, 10, Rank::Species, "G a").unwrap();
        taxonomy.add_node(101, 10, Rank::Species, "G b").unwrap();
        let lineages = taxonomy.lineage_cache();
        let store = HostHashTable::new(Default::default());
        store.insert(7, Location::new(0, 0)).unwrap();
        store.insert(7, Location::new(1, 2)).unwrap();
        store.insert(9, Location::new(1, 3)).unwrap();
        Database {
            config: MetaCacheConfig::default(),
            targets: vec![
                TargetInfo {
                    id: 0,
                    name: "t0".into(),
                    taxon: 100,
                    length: 1000,
                    num_windows: 9,
                },
                TargetInfo {
                    id: 1,
                    name: "t1".into(),
                    taxon: 101,
                    length: 2000,
                    num_windows: 18,
                },
            ],
            taxonomy,
            lineages,
            partitions: vec![Partition {
                store: PartitionStore::Host(store),
                targets: vec![0, 1],
            }],
        }
    }

    #[test]
    fn target_and_taxon_lookup() {
        let db = tiny_database();
        assert_eq!(db.target_count(), 2);
        assert_eq!(db.target(1).unwrap().name, "t1");
        assert_eq!(db.taxon_of_target(0), 100);
        assert_eq!(db.taxon_of_target(99), mc_taxonomy::NO_TAXON);
    }

    #[test]
    fn query_feature_merges_partitions() {
        let db = tiny_database();
        let mut hits = Vec::new();
        assert_eq!(db.query_feature_into(7, &mut hits), 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(db.total_locations(), 3);
        assert_eq!(db.total_features(), 2);
        assert!(db.table_bytes() > 0);
        assert!(db.host_metadata_bytes() > 0);
    }

    #[test]
    fn condensed_store_roundtrip() {
        let buckets = vec![
            (5u32, vec![Location::new(0, 1), Location::new(0, 2)]),
            (9u32, vec![Location::new(3, 7)]),
            (
                1_000_000u32,
                (0..100).map(|w| Location::new(9, w)).collect(),
            ),
        ];
        let store = CondensedStore::from_buckets(buckets.clone());
        assert_eq!(store.location_count(), 103);
        assert_eq!(store.key_count(), 3);
        assert_eq!(store.value_count(), 103);
        for (feature, bucket) in &buckets {
            assert_eq!(&store.query(*feature), bucket);
        }
        assert!(store.query(4242).is_empty());
        // Read-only: inserts are rejected with the typed error, not silently
        // dropped or misreported as a full table (regression for the old
        // `TableError::TableFull` stub).
        assert_eq!(
            store.insert(5, Location::new(0, 0)),
            Err(TableError::ReadOnly)
        );
    }

    #[test]
    fn thaw_preserves_buckets_and_reapplies_cap() {
        let buckets = vec![
            (5u32, vec![Location::new(0, 1), Location::new(0, 2)]),
            (9u32, (0..10).map(|w| Location::new(2, w)).collect()),
        ];
        let store = CondensedStore::from_buckets(buckets.clone());
        // Same cap: everything survives, order preserved.
        let thawed = store.thaw(254);
        for (feature, bucket) in &buckets {
            assert_eq!(&thawed.query(*feature), bucket);
        }
        // Smaller cap: re-applied exactly as a fresh build would.
        let capped = store.thaw(4);
        assert_eq!(capped.query(5).len(), 2);
        assert_eq!(capped.query(9).len(), 4);
        // The thawed table accepts insertions again.
        thawed.insert(5, Location::new(7, 7)).unwrap();
        assert_eq!(thawed.query(5).len(), 3);
    }

    #[test]
    fn insert_target_extends_database() {
        let mut db = tiny_database();
        let record =
            SequenceRecord::new("t2", &b"ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT"[..]);
        let before_locations = db.total_locations();
        let id = db.insert_target(record, 101).unwrap();
        assert_eq!(id, 2);
        assert_eq!(db.target_count(), 3);
        assert_eq!(db.taxon_of_target(2), 101);
        assert_eq!(db.target(2).unwrap().name, "t2");
        assert!(db.total_locations() > before_locations);
        assert!(db.partitions[0].targets.contains(&2));
    }

    #[test]
    fn insert_target_rejects_unknown_taxon_and_metadata_only() {
        let mut db = tiny_database();
        let record = SequenceRecord::new("x", &b"ACGTACGTACGTACGTACGT"[..]);
        assert!(matches!(
            db.insert_target(record.clone(), 4242),
            Err(MetaCacheError::UnknownTaxon(4242))
        ));
        let mut meta = db.metadata_view();
        assert!(matches!(
            meta.insert_target(record, 100),
            Err(MetaCacheError::Config(_))
        ));
    }

    #[test]
    fn apply_delta_adds_taxa_then_targets() {
        let mut db = tiny_database();
        let mut delta = DatabaseDelta::new();
        assert!(delta.is_empty());
        delta.add_taxon(11, 1, Rank::Genus, "H");
        delta.add_taxon(110, 11, Rank::Species, "H a");
        delta.add_target(
            SequenceRecord::new("h0", &b"ACGTACGTACGTACGTACGTACGTACGTACGT"[..]),
            110,
        );
        assert_eq!(delta.taxon_count(), 2);
        assert_eq!(delta.target_count(), 1);
        let stats = db.apply_delta(delta).unwrap();
        assert_eq!(stats.targets_added, 1);
        assert!(stats.windows_sketched > 0);
        assert!(db.taxonomy.contains(110));
        assert_eq!(db.taxon_of_target(2), 110);
        // Lineages were refreshed: the new species resolves through the
        // new genus to the root.
        assert_eq!(db.lineages.ancestor_at(110, Rank::Genus), 11);
    }

    #[test]
    fn partition_kind_labels() {
        let db = tiny_database();
        assert_eq!(db.partitions[0].store.kind(), "host");
        let condensed = PartitionStore::Condensed(CondensedStore::from_buckets(Vec::new()));
        assert_eq!(condensed.kind(), "condensed");
    }
}
