//! The persistent serving engine: a long-lived worker pool multiplexing many
//! concurrent classification streams over one shared database.
//!
//! [`crate::pipeline::StreamingClassifier`] spawns and joins its own scoped
//! threads on every call — fine for one big file, but a serving front-end
//! handles many small concurrent requests, and per-call thread spawns
//! (~0.2 ms) plus cold scratch buffers dominate short streams. The
//! [`ServingEngine`] keeps the pipeline *resident*:
//!
//! ```text
//!                 session A ──┐ tagged batches             ┌──► session A results
//!   (per-session  session B ──┤──► bounded fair ──► worker ├──► session B results
//!    credits +    session C ──┘    queue (DRR pop)   pool  └──► session C results
//!    seq numbers)                                 (N threads,   (per-session channel,
//!                                                  1 Backend     reordered client-side
//!                                                  worker each,  by session_seq)
//!                                                  live forever)
//! ```
//!
//! * **Workers are long-lived.** Each worker thread mints one
//!   [`Backend`] worker at startup and reuses it for every batch it ever
//!   classifies — scratch buffers stay warm across requests, and request
//!   latency no longer pays thread spawn/join.
//! * **The database is shared — and swappable.** The engine owns an
//!   [`EpochStore`]: a generation-tagged slot holding the current
//!   `Arc<dyn Backend>` (which co-owns the `Arc<Database>`). Workers pin an
//!   epoch *per batch*, so [`ServingEngine::reload_backend`] hot-swaps the
//!   reference set with zero downtime: in-flight batches finish on the old
//!   database, subsequent batches observe the new one, and the old epoch is
//!   freed as soon as its last worker releases it (idle workers release on
//!   the swap itself). Every [`CompletedBatch`] reports the generation that
//!   classified it.
//! * **Sessions multiplex.** Every [`Session`] tags its batches with a
//!   session id and a per-session sequence number (`mc-seqio` batch tags);
//!   workers route completed batches to the owning session's channel, and
//!   the session restores *its own* input order from the sequence numbers —
//!   exact-order emission per stream, independent of other streams.
//! * **PR 2 guarantees are kept per session.** Results are bit-identical to
//!   [`Classifier::classify_batch`][crate::query::Classifier::classify_batch]
//!   including order; a per-session credit bound caps that session's
//!   resident batches at `max_in_flight`; teardown is panic-safe (a
//!   panicking sink only kills its own session, a panicking backend worker
//!   is replaced and reported without deadlocking anyone).
//! * **The pop is fair across sessions.** The shared queue is not FIFO: a
//!   deficit-round-robin scan (the internal `FairQueue`) across the
//!   sessions with queued work decides which batch a worker takes next. A session streaming
//!   thousands of queued batches cannot push another session's two-batch
//!   request to the back of the line — every session receives its share of
//!   worker attention per scheduling round (weighted by records, so small
//!   batches are not penalised), bounding small-request latency under a
//!   heavy concurrent stream.
//! * **Shutdown drains.** [`ServingEngine::shutdown`] (or drop) closes the
//!   queue, lets workers finish everything in flight and joins them.
//!   Sessions borrow the engine, so the borrow checker proves the engine is
//!   idle before it can shut down.
//!
//! Deadlock freedom: a session's result channel is sized to its credit
//! total, and a session never holds more than `max_in_flight` batches
//! anywhere in the engine, so workers can always deliver without blocking;
//! the shared queue therefore always drains, and a client blocked on a
//! credit always has an in-flight batch that will complete.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;

use mc_gpu_sim::MultiGpuSystem;
use mc_seqio::{SequenceBatch, SequenceRecord};

use crate::backend::{Backend, GpuBackend, HostBackend};
use crate::classify::Classification;
use crate::database::Database;
use crate::pipeline::StreamingSummary;

/// Shape of a serving engine: worker count, queue depth and the per-session
/// defaults handed to [`ServingEngine::session`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of long-lived worker threads.
    pub workers: usize,
    /// Bounded capacity of the shared submission queue (batches).
    pub queue_capacity: usize,
    /// Default records per batch for sessions.
    pub batch_records: usize,
    /// Default per-session bound on resident batches (credits). `0` means
    /// `queue_capacity + workers` — the PR 2 streaming bound.
    pub session_max_in_flight: usize,
    /// DRR quantum (records granted per round-robin visit) for
    /// [`QueueClass::Interactive`] lanes. `0` = `batch_records`.
    pub interactive_quantum: usize,
    /// DRR quantum for [`QueueClass::Bulk`] lanes. `0` = a quarter of the
    /// interactive quantum (at least 1), i.e. bulk lanes get ~20% of the
    /// pool under full contention by default.
    pub bulk_quantum: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            queue_capacity: 4,
            batch_records: 1024,
            session_max_in_flight: 0,
            interactive_quantum: 0,
            bulk_quantum: 0,
        }
    }
}

impl EngineConfig {
    /// Clamp every knob to a workable value.
    fn normalized(mut self) -> Self {
        self.workers = self.workers.max(1);
        self.queue_capacity = self.queue_capacity.max(1);
        self.batch_records = self.batch_records.max(1);
        self
    }

    /// The per-session resident-batch bound sessions are created with:
    /// `session_max_in_flight`, or `queue_capacity + workers` when 0.
    pub fn effective_session_in_flight(&self) -> usize {
        if self.session_max_in_flight > 0 {
            self.session_max_in_flight
        } else {
            self.queue_capacity.max(1) + self.workers.max(1)
        }
    }

    /// The resolved per-class DRR quanta, indexed by `QueueClass as usize`
    /// (`[interactive, bulk]`), with the `0 = default` rules applied.
    pub fn class_quanta(&self) -> [usize; 2] {
        let interactive = if self.interactive_quantum > 0 {
            self.interactive_quantum
        } else {
            self.batch_records.max(1)
        };
        let bulk = if self.bulk_quantum > 0 {
            self.bulk_quantum
        } else {
            (interactive / 4).max(1)
        };
        [interactive, bulk]
    }
}

/// Scheduling class a session picks at open: which weighted lane its
/// batches queue under in the engine's deficit round robin. Within a class,
/// sessions still share per-session lanes — the class only sets the DRR
/// quantum (service credit per visit), so an [interactive] request parked
/// behind a [bulk] backlog is delayed by at most the quanta ratio, never
/// starved, and an idle class costs nothing (DRR grants credit only to
/// backlogged lanes).
///
/// [interactive]: QueueClass::Interactive
/// [bulk]: QueueClass::Bulk
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum QueueClass {
    /// Latency-sensitive traffic (the default): full quantum per visit.
    #[default]
    Interactive = 0,
    /// Throughput traffic that tolerates queueing (bulk re-classification,
    /// batch imports): a reduced quantum per visit.
    Bulk = 1,
}

/// Per-session overrides of the engine's defaults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionConfig {
    /// Records per batch (`0` = engine default).
    pub batch_records: usize,
    /// Bound on this session's resident batches (`0` = engine default;
    /// clamped to [`MAX_SESSION_IN_FLIGHT`]).
    pub max_in_flight: usize,
    /// Scheduling class of this session's lane in the shared fair queue.
    pub class: QueueClass,
}

/// Hard ceiling on a session's `max_in_flight`. The per-session result
/// channel is *pre-sized* to the credit total (that sizing is what makes
/// worker delivery non-blocking, the engine's deadlock-freedom invariant),
/// so an absurd configured credit would otherwise translate into an absurd
/// allocation. 65 536 in-flight batches is far beyond any useful pipeline
/// depth.
pub const MAX_SESSION_IN_FLIGHT: usize = 1 << 16;

/// Lifetime counters of a [`ServingEngine`], snapshotted by
/// [`ServingEngine::stats`] and returned by [`ServingEngine::shutdown`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Worker threads in the pool.
    pub workers: u64,
    /// Sessions opened over the engine's lifetime.
    pub sessions_opened: u64,
    /// Batches classified by the pool.
    pub batches_classified: u64,
    /// Records classified by the pool.
    pub records_classified: u64,
    /// Backend workers replaced after a panic while classifying.
    pub worker_panics: u64,
    /// High-water mark of the shared fair queue's occupancy (bounded by
    /// `queue_capacity`).
    pub peak_queue_batches: u64,
}

/// One completed engine batch handed back by [`Session::try_drain_owned`],
/// in submission order: the records that went in (by move, heap buffers
/// intact — recycle them) plus one classification per record.
pub struct CompletedBatch {
    /// The batch's records, exactly as submitted.
    pub records: Vec<SequenceRecord>,
    /// One classification per record, in record order. Empty if `panicked`.
    pub classifications: Vec<Classification>,
    /// The backend worker panicked while classifying this batch. The
    /// blocking drain paths re-raise; a non-blocking caller decides itself
    /// (the net server answers the request with an `Internal` error).
    pub panicked: bool,
    /// The database generation (see [`EpochStore`]) this batch was
    /// classified against. A whole batch is always classified under one
    /// epoch; a front-end wanting one generation per *request* compares the
    /// tags of the request's batches and replays on mismatch.
    pub generation: u64,
}

/// A completed (or failed) batch travelling from a worker back to its
/// session.
struct WorkerResult {
    seq: u64,
    records: Vec<SequenceRecord>,
    classifications: Vec<Classification>,
    /// The backend worker panicked while classifying this batch; the
    /// session's drain turns this into a client-side panic.
    panicked: bool,
    /// Database generation the worker had pinned (see [`EpochStore`]).
    generation: u64,
}

/// One pinned database state: a generation number plus the backend (and
/// therefore the `Arc<Database>`) serving it. Handed out by
/// [`EpochStore::pin`]; holders keep the whole state alive, so the previous
/// database is freed exactly when the last holder of its epoch lets go.
pub struct Epoch {
    generation: u64,
    backend: Arc<dyn Backend + 'static>,
}

impl Epoch {
    /// The epoch's generation number (0 for the state the engine started
    /// with, +1 per [`EpochStore::swap`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The backend serving this epoch.
    pub fn backend(&self) -> &Arc<dyn Backend + 'static> {
        &self.backend
    }

    /// The database of this epoch.
    pub fn database(&self) -> &Database {
        self.backend.database()
    }
}

/// A generation-tagged slot holding the engine's current database state —
/// the hand-rolled `ArcSwap` stand-in of this crate (consistent with the
/// repo's vendored-shim approach: a `RwLock<Arc<_>>` swap plus a lock-free
/// generation counter, not a full lock-free pointer swap).
///
/// * [`EpochStore::pin`] takes the read lock briefly and clones the `Arc` —
///   readers never block each other and never block a swap for longer than
///   one clone.
/// * [`EpochStore::swap`] publishes a new backend under the next generation.
///   Existing pins are untouched: in-flight work finishes on the epoch it
///   pinned, and the old database drops when its last pin is released.
/// * [`EpochStore::generation`] is a lock-free `Acquire` load — the cheap
///   "did the world change since I pinned?" probe workers use per batch.
pub struct EpochStore {
    slot: RwLock<Arc<Epoch>>,
    generation: AtomicU64,
}

impl EpochStore {
    /// Create a store at generation 0.
    pub fn new(backend: Arc<dyn Backend + 'static>) -> Self {
        Self {
            slot: RwLock::new(Arc::new(Epoch {
                generation: 0,
                backend,
            })),
            generation: AtomicU64::new(0),
        }
    }

    /// Pin the current epoch: the returned handle keeps its database alive
    /// until dropped, regardless of later swaps.
    pub fn pin(&self) -> Arc<Epoch> {
        Arc::clone(&self.slot.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// The current generation (lock-free).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Publish `backend` as the next generation and return it. Readers that
    /// pinned before the swap keep serving their epoch; readers that pin
    /// after observe the new one.
    pub fn swap(&self, backend: Arc<dyn Backend + 'static>) -> u64 {
        let mut slot = self.slot.write().unwrap_or_else(|e| e.into_inner());
        let generation = slot.generation + 1;
        *slot = Arc::new(Epoch {
            generation,
            backend,
        });
        // Publish after the slot holds the new epoch, so a reader seeing
        // the new generation can always pin (at least) that epoch.
        self.generation.store(generation, Ordering::Release);
        generation
    }
}

/// Routing entry of one live session.
struct SessionState {
    /// Worker → session result channel; sized to the session's credit total
    /// so workers never block on delivery.
    out_tx: mpsc::SyncSender<WorkerResult>,
    /// Invoked (post-delivery) for every result sent to this session. An
    /// event-loop front-end parks a waker here so completions re-enter its
    /// loop; must never block.
    notify: Option<Arc<dyn Fn() + Send + Sync>>,
}

/// Counters shared between the engine handle and its workers.
#[derive(Default)]
struct EngineCounters {
    sessions_opened: AtomicU64,
    batches: AtomicU64,
    records: AtomicU64,
    panics: AtomicU64,
}

/// The engine's bounded submission queue with a **deficit-round-robin**
/// (DRR) pop across sessions.
///
/// Each session gets its own FIFO lane; workers pop by scanning the active
/// lanes round-robin, giving every visited lane a `quantum` of service
/// credit (in records) and taking its head batch once the accumulated
/// credit covers the batch's record count. Consequences:
///
/// * **Per-session order is untouched** — a lane is a FIFO, and sessions
///   re-order by `session_seq` anyway.
/// * **No cross-session starvation** — a session with thousands of queued
///   batches cannot delay another session's batch by more than one
///   scheduling round (≈ one batch per other active session), the classic
///   DRR latency bound. A plain FIFO pop made small-request latency
///   proportional to the *largest* competing backlog.
/// * **Record weighting** — lanes with big batches spend more credit per
///   pop, so sessions submitting oversized batches get proportionally
///   fewer pops; byte-fairness, not turn-fairness.
///
/// Capacity bounds the *total* queued batches across all lanes, exactly
/// like the bounded channel it replaces: `push` blocks while full, so the
/// engine-wide memory bound and the deadlock-freedom argument are
/// unchanged.
struct FairQueue {
    state: Mutex<FairState>,
    /// Consumers wait here for work.
    ready: Condvar,
    /// Producers wait here for capacity.
    space: Condvar,
    capacity: usize,
    /// Service credit (records) granted to a lane per round-robin visit,
    /// indexed by the lane's [`QueueClass`].
    quanta: [u64; 2],
    /// Callbacks fired whenever capacity frees (pop or purge): non-blocking
    /// front-ends park a waker here instead of blocking on `space`.
    space_watchers: Mutex<Vec<Arc<dyn Fn() + Send + Sync>>>,
    /// Mirror of the engine's current database generation, bumped by
    /// [`FairQueue::note_reload`]. An *idle* worker blocked in
    /// [`FairQueue::pop_pinned`] compares this against the generation it has
    /// pinned and wakes to release the stale epoch — without it, an old
    /// database would stay alive until every idle worker happened to
    /// classify one more batch.
    reload_generation: AtomicU64,
}

/// What [`FairQueue::pop_pinned`] hands a worker.
enum Popped {
    /// The next batch by deficit round robin.
    Batch(SequenceBatch),
    /// No work, and the engine swapped epochs: drop the pinned epoch,
    /// re-pin and pop again.
    Reload,
    /// Queue closed and drained: the worker exits.
    Closed,
}

#[derive(Default)]
struct FairState {
    /// Per-session FIFO of submitted batches.
    lanes: HashMap<u64, VecDeque<SequenceBatch>>,
    /// Sessions with a non-empty lane, in round-robin visit order.
    active: VecDeque<u64>,
    /// Unspent service credit of each active session.
    deficit: HashMap<u64, u64>,
    /// Scheduling class per session, set at session open. Unlisted
    /// sessions are [`QueueClass::Interactive`].
    class: HashMap<u64, QueueClass>,
    /// Total batches across all lanes.
    len: usize,
    /// High-water mark of `len`.
    peak: u64,
    closed: bool,
}

impl FairState {
    /// Take the next batch by deficit round robin. Caller guarantees
    /// `len > 0`.
    fn pop_drr(&mut self, quanta: [u64; 2]) -> SequenceBatch {
        loop {
            let session = *self.active.front().expect("non-empty fair queue");
            let lane = self.lanes.get_mut(&session).expect("active lane exists");
            let cost = (lane.front().expect("active lane non-empty").records.len() as u64).max(1);
            let deficit = self.deficit.entry(session).or_insert(0);
            if *deficit >= cost {
                *deficit -= cost;
                let batch = lane.pop_front().expect("active lane non-empty");
                if lane.is_empty() {
                    // An emptied lane leaves the rotation and forfeits its
                    // leftover credit (classic DRR: only backlogged flows
                    // accumulate deficit).
                    self.lanes.remove(&session);
                    self.deficit.remove(&session);
                    self.active.pop_front();
                }
                self.len -= 1;
                return batch;
            }
            // Not enough credit for this lane's head batch: grant the
            // lane's class quantum and move on. Credit grows monotonically,
            // so the scan terminates in at most ⌈cost/quantum⌉ rounds.
            let class = self.class.get(&session).copied().unwrap_or_default();
            *deficit += quanta[class as usize];
            self.active.rotate_left(1);
        }
    }

    /// Insert a batch into its session's lane. Caller has checked capacity.
    fn enqueue(&mut self, batch: SequenceBatch) {
        let session = batch.session;
        let newly_active = {
            let lane = self.lanes.entry(session).or_default();
            let was_empty = lane.is_empty();
            lane.push_back(batch);
            was_empty
        };
        if newly_active {
            self.active.push_back(session);
        }
        self.len += 1;
        self.peak = self.peak.max(self.len as u64);
    }
}

impl FairQueue {
    fn new(capacity: usize, quanta: [usize; 2]) -> Self {
        Self {
            state: Mutex::new(FairState::default()),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity: capacity.max(1),
            quanta: quanta.map(|q| q.max(1) as u64),
            space_watchers: Mutex::new(Vec::new()),
            reload_generation: AtomicU64::new(0),
        }
    }

    /// Enqueue a session-tagged batch, blocking while the queue is at
    /// capacity. Fails (returning the batch) only on a closed queue.
    fn push(&self, batch: SequenceBatch) -> Result<(), SequenceBatch> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.closed {
                return Err(batch);
            }
            if state.len < self.capacity {
                break;
            }
            state = self.space.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        state.enqueue(batch);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Non-blocking [`FairQueue::push`]: `Err(batch)` when the queue is at
    /// capacity — the caller parks on a space watcher and retries. Panics
    /// on a closed queue (sessions borrow the engine, so a live session
    /// over a closed queue is a bug, matching `Session::submit_owned`).
    fn try_push(&self, batch: SequenceBatch) -> Result<(), SequenceBatch> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        assert!(
            !state.closed,
            "serving engine queue closed while session alive"
        );
        if state.len >= self.capacity {
            return Err(batch);
        }
        state.enqueue(batch);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Record `session`'s scheduling class (kept until
    /// [`FairQueue::forget_session`], surviving purges).
    fn set_class(&self, session: u64, class: QueueClass) {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .class
            .insert(session, class);
    }

    /// Drop `session`'s class entry (session teardown).
    fn forget_session(&self, session: u64) {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .class
            .remove(&session);
    }

    /// Register a callback fired (from consumer threads) every time queue
    /// capacity frees. Watchers live as long as the queue; they must be
    /// cheap and non-blocking (a pipe-waker write, not work).
    fn watch_space(&self, watcher: Arc<dyn Fn() + Send + Sync>) {
        self.space_watchers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(watcher);
    }

    fn notify_space_watchers(&self) {
        let watchers = self
            .space_watchers
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        for watcher in watchers.iter() {
            watcher();
        }
    }

    /// Dequeue the next batch by deficit round robin, blocking while the
    /// queue is empty. The caller passes the database generation it has
    /// pinned; if the engine swaps epochs while the caller is blocked here,
    /// [`Popped::Reload`] sends it back to release the stale epoch and
    /// re-pin (work, when present, always wins over the reload check — a
    /// queued batch is popped and classified under whatever the caller has
    /// pinned *now*, which the worker loop re-validates). Returns
    /// [`Popped::Closed`] once the queue is closed **and** drained —
    /// workers finish everything already submitted.
    fn pop_pinned(&self, pinned_generation: u64) -> Popped {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.len > 0 {
                let batch = state.pop_drr(self.quanta);
                drop(state);
                self.space.notify_one();
                self.notify_space_watchers();
                return Popped::Batch(batch);
            }
            if state.closed {
                return Popped::Closed;
            }
            if self.reload_generation.load(Ordering::Acquire) != pinned_generation {
                return Popped::Reload;
            }
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Tell idle consumers the engine's epoch changed: store the new
    /// generation (under the state lock, so a consumer between its check
    /// and its wait cannot miss the wake) and wake everyone blocked in
    /// [`FairQueue::pop_pinned`].
    fn note_reload(&self, generation: u64) {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        self.reload_generation.store(generation, Ordering::Release);
        drop(state);
        self.ready.notify_all();
    }

    /// Drop every batch a dead session still has queued: remove its lane,
    /// deficit and rotation slot, and wake producers blocked on capacity.
    /// Returns how many batches were discarded.
    ///
    /// Without this, a session unregistering with queued work left its lane
    /// alive until workers classified the orphaned batches and dropped the
    /// results — wasted backend time, and queue capacity held hostage
    /// against every live session's `push`.
    fn purge_session(&self, session: u64) -> usize {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let Some(lane) = state.lanes.remove(&session) else {
            return 0;
        };
        state.deficit.remove(&session);
        state.active.retain(|&s| s != session);
        let purged = lane.len();
        state.len -= purged;
        drop(state);
        if purged > 0 {
            self.space.notify_all();
            self.notify_space_watchers();
        }
        purged
    }

    /// Close the queue: producers fail fast, consumers drain what is left
    /// and then observe the end of stream. Idempotent.
    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        drop(state);
        self.ready.notify_all();
        self.space.notify_all();
    }

    /// Batches currently queued (excluding ones being classified).
    #[cfg(test)]
    fn queued(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).len as u64
    }

    /// The high-water admission check: `true` while the queue is full *and*
    /// `session` has no lane in it — i.e. the session would be a brand-new
    /// entrant competing with established streams for capacity that does
    /// not exist. A front-end uses this to *shed* a newcomer's first
    /// request instead of letting its `push` pile onto the blocked-producer
    /// queue, where a flood of new sessions would starve established
    /// streams of push slots. Established sessions (lane present) are never
    /// refused — they block on `push` exactly as before.
    fn over_high_water(&self, session: u64) -> bool {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.len >= self.capacity && !state.lanes.contains_key(&session)
    }

    /// High-water mark of [`FairQueue::queued`] (at most `capacity`).
    fn peak_queued(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).peak
    }
}

/// State shared by the engine handle, its worker threads and its sessions.
struct EngineShared {
    epochs: EpochStore,
    sessions: Mutex<HashMap<u64, Arc<SessionState>>>,
    next_session: AtomicU64,
    counters: EngineCounters,
    queue: FairQueue,
}

/// A long-lived classification service: a pool of worker threads over one
/// shared [`Backend`] (and therefore one shared `Arc<Database>`), serving
/// any number of concurrent client [`Session`]s.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use metacache::{MetaCacheConfig, build::CpuBuilder};
/// use metacache::serving::ServingEngine;
/// use mc_seqio::SequenceRecord;
/// use mc_taxonomy::{Rank, Taxonomy};
///
/// # let mut taxonomy = Taxonomy::with_root();
/// # taxonomy.add_node(100, 1, Rank::Species, "Species A").unwrap();
/// # let mut state = 7u64;
/// # let genome: Vec<u8> = (0..8000).map(|_| {
/// #     state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
/// #     b"ACGT"[(state >> 33) as usize % 4]
/// # }).collect();
/// # let mut builder = CpuBuilder::new(MetaCacheConfig::default(), taxonomy);
/// # builder.add_target(SequenceRecord::new("refA", genome.clone()), 100).unwrap();
/// let db = Arc::new(builder.finish());
///
/// // One resident engine; sessions come and go per client request.
/// let engine = ServingEngine::host(Arc::clone(&db));
/// let mut session = engine.session();
/// let reads = (0..20).map(|i| {
///     SequenceRecord::new(format!("r{i}"), genome[i * 100..i * 100 + 150].to_vec())
/// });
/// let (classifications, summary) = session.classify_iter(reads);
/// assert_eq!(summary.records, 20);
/// assert!(classifications.iter().all(|c| c.taxon == 100));
/// drop(session);
/// let stats = engine.shutdown();
/// assert_eq!(stats.records_classified, 20);
/// ```
pub struct ServingEngine {
    shared: Arc<EngineShared>,
    workers: Vec<JoinHandle<()>>,
    config: EngineConfig,
}

impl ServingEngine {
    /// Start an engine over an explicit backend.
    pub fn new<B>(backend: B, config: EngineConfig) -> Self
    where
        B: Backend + 'static,
    {
        let config = config.normalized();
        let backend: Arc<dyn Backend + 'static> = Arc::new(backend);
        let shared = Arc::new(EngineShared {
            epochs: EpochStore::new(backend),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            counters: EngineCounters::default(),
            queue: FairQueue::new(config.queue_capacity, config.class_quanta()),
        });

        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serving-worker-{i}"))
                    .spawn(move || {
                        // A batch popped just as a swap landed is carried
                        // over to the re-pinned (new) epoch instead of
                        // running on the stale one.
                        let mut carried: Option<SequenceBatch> = None;
                        'epoch: loop {
                            // Pin the current epoch; `epoch` and `worker`
                            // both co-own its database, and both drop on
                            // every trip back to this point — an idle or
                            // re-pinning worker never keeps an old epoch
                            // alive.
                            let epoch = shared.epochs.pin();
                            let generation = epoch.generation();
                            let mut worker = epoch.backend().worker();
                            loop {
                                let batch = match carried.take() {
                                    Some(batch) => batch,
                                    None => match shared.queue.pop_pinned(generation) {
                                        Popped::Batch(batch) => batch,
                                        Popped::Reload => continue 'epoch,
                                        Popped::Closed => return,
                                    },
                                };
                                if shared.epochs.generation() != generation {
                                    // Swap landed between pin and pop: this
                                    // batch is *new* work and must observe
                                    // the new epoch.
                                    carried = Some(batch);
                                    continue 'epoch;
                                }
                                let SequenceBatch {
                                    session,
                                    session_seq,
                                    records,
                                    ..
                                } = batch;
                                // Route to the owning session; a dropped
                                // session leaves no registry entry and its
                                // batch is discarded.
                                let target = shared
                                    .sessions
                                    .lock()
                                    .unwrap_or_else(|e| e.into_inner())
                                    .get(&session)
                                    .cloned();
                                let Some(target) = target else { continue };
                                let mut classifications = Vec::with_capacity(records.len());
                                let panicked =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        worker.classify_batch_into(&records, &mut classifications)
                                    }))
                                    .is_err();
                                if panicked {
                                    // The worker's scratch state may be torn
                                    // mid-update; replace it (same epoch) and
                                    // keep serving.
                                    worker = epoch.backend().worker();
                                    classifications.clear();
                                    shared.counters.panics.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    shared.counters.batches.fetch_add(1, Ordering::Relaxed);
                                    shared
                                        .counters
                                        .records
                                        .fetch_add(records.len() as u64, Ordering::Relaxed);
                                }
                                // Sized-to-credits channel: never blocks. A
                                // session that died mid-flight just drops the
                                // result.
                                let _ = target.out_tx.send(WorkerResult {
                                    seq: session_seq,
                                    records,
                                    classifications,
                                    panicked,
                                    generation,
                                });
                                if let Some(notify) = &target.notify {
                                    notify();
                                }
                            }
                        }
                    })
                    .expect("spawn serving worker")
            })
            .collect();

        Self {
            shared,
            workers,
            config,
        }
    }

    /// Start a host-path engine with the default shape over a shared
    /// database.
    pub fn host(db: Arc<Database>) -> Self {
        Self::new(HostBackend::new(db), EngineConfig::default())
    }

    /// Start a host-path engine with an explicit shape.
    pub fn host_with_config(db: Arc<Database>, config: EngineConfig) -> Self {
        Self::new(HostBackend::new(db), config)
    }

    /// Start a simulated-GPU engine: batches issue round-robin across the
    /// system's devices (per-device streams, copy/compute overlap).
    pub fn gpu(db: Arc<Database>, system: Arc<MultiGpuSystem>, config: EngineConfig) -> Self {
        Self::new(GpuBackend::new(db, system), config)
    }

    /// Start a scatter-gather engine over a sharded database: every batch
    /// fans out to all shards in-process and the merged results are
    /// bit-identical to an unsharded host engine (see [`crate::shard`]).
    pub fn sharded(db: Arc<crate::shard::ShardedDatabase>, config: EngineConfig) -> Self {
        Self::new(crate::shard::ShardedBackend::new(db), config)
    }

    /// The engine's (normalised) shape.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The current backend's short label (`"host"`, `"gpu-sim"`, …).
    pub fn backend_name(&self) -> &'static str {
        self.shared.epochs.pin().backend().name()
    }

    /// Pin the engine's current epoch: a handle on the database (and
    /// backend) that stays valid — and keeps that database alive — across
    /// any number of [`ServingEngine::reload_backend`] calls. Front-ends
    /// that read the database directly (candidate mode, metadata checks)
    /// pin per request instead of caching a borrow.
    pub fn pin_epoch(&self) -> Arc<Epoch> {
        self.shared.epochs.pin()
    }

    /// The current database generation (0 until the first reload).
    pub fn generation(&self) -> u64 {
        self.shared.epochs.generation()
    }

    /// Hot-swap the engine's backend (and database): publish `backend` as
    /// the next generation and return it. Zero downtime — batches already
    /// being classified finish on the old epoch (their results carry its
    /// generation tag), every batch popped after the swap observes the new
    /// one, and idle workers wake to release the old epoch immediately, so
    /// the old `Arc<Database>` is freed as soon as the last in-flight batch
    /// of the old generation completes.
    pub fn reload_backend<B>(&self, backend: B) -> u64
    where
        B: Backend + 'static,
    {
        let generation = self.shared.epochs.swap(Arc::new(backend));
        self.shared.queue.note_reload(generation);
        generation
    }

    /// Open a client session with the engine's default shape. Sessions are
    /// cheap (one registry entry + one channel): open one per request
    /// stream, from any thread.
    pub fn session(&self) -> Session<'_> {
        self.session_with(SessionConfig::default())
    }

    /// Open a client session with explicit overrides.
    pub fn session_with(&self, config: SessionConfig) -> Session<'_> {
        self.session_inner(config, None)
    }

    /// Open a client session whose result deliveries additionally invoke
    /// `notify` (after the result is in the session's channel). This is the
    /// hook for non-blocking front-ends: park a poll-loop waker in `notify`
    /// and use [`Session::try_drain_owned`] when it fires, instead of
    /// blocking in the `classify_*` entry points. `notify` runs on worker
    /// threads and must never block.
    pub fn session_with_notify(
        &self,
        config: SessionConfig,
        notify: Arc<dyn Fn() + Send + Sync>,
    ) -> Session<'_> {
        self.session_inner(config, Some(notify))
    }

    fn session_inner(
        &self,
        config: SessionConfig,
        notify: Option<Arc<dyn Fn() + Send + Sync>>,
    ) -> Session<'_> {
        let id = self.shared.next_session.fetch_add(1, Ordering::Relaxed);
        let batch_records = if config.batch_records > 0 {
            config.batch_records
        } else {
            self.config.batch_records
        };
        let max_in_flight = if config.max_in_flight > 0 {
            config.max_in_flight
        } else {
            self.config.effective_session_in_flight()
        }
        .min(MAX_SESSION_IN_FLIGHT);
        let (out_tx, out_rx) = mpsc::sync_channel(max_in_flight);
        self.shared.queue.set_class(id, config.class);
        self.shared
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, Arc::new(SessionState { out_tx, notify }));
        self.shared
            .counters
            .sessions_opened
            .fetch_add(1, Ordering::Relaxed);
        Session {
            engine: self,
            id,
            out_rx,
            pending: BTreeMap::new(),
            next_submit_seq: 0,
            next_emit_seq: 0,
            in_flight: 0,
            peak_in_flight: 0,
            batch_records,
            max_in_flight,
            last_generation: self.shared.epochs.generation(),
        }
    }

    /// Register a callback fired every time shared-queue capacity frees
    /// (a batch popped or purged). The non-blocking counterpart of the
    /// blocking `push`: an event-loop front-end whose
    /// [`Session::try_submit_owned`] hit a full queue parks its waker here
    /// and retries on the callback. Watchers live for the engine's
    /// lifetime, run on worker threads, and must never block.
    pub fn watch_queue_space(&self, watcher: Arc<dyn Fn() + Send + Sync>) {
        self.shared.queue.watch_space(watcher);
    }

    /// Sessions currently registered (created and not yet dropped) — the
    /// front-end's leak gauge: after every connection of a drained server
    /// has closed, this must be back to its pre-traffic value.
    pub fn live_sessions(&self) -> usize {
        self.shared
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// The fair queue's high-water admission check for `session` (see
    /// [`Session::over_high_water`]): `true` while the shared queue is at
    /// capacity and the session has no queued work of its own. A serving
    /// front-end sheds such a request (answering "busy, retry later")
    /// instead of queueing it unboundedly behind established streams.
    pub fn over_high_water(&self, session: u64) -> bool {
        self.shared.queue.over_high_water(session)
    }

    /// Snapshot the engine's lifetime counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            workers: self.workers.len() as u64,
            sessions_opened: self.shared.counters.sessions_opened.load(Ordering::Relaxed),
            batches_classified: self.shared.counters.batches.load(Ordering::Relaxed),
            records_classified: self.shared.counters.records.load(Ordering::Relaxed),
            worker_panics: self.shared.counters.panics.load(Ordering::Relaxed),
            peak_queue_batches: self.shared.queue.peak_queued(),
        }
    }

    /// Gracefully shut the engine down: close the submission queue, let the
    /// workers drain everything already queued (idle drain) and join them.
    /// Consumes the engine — and because sessions borrow it, all sessions
    /// must have been dropped first, so nothing can be lost mid-stream.
    pub fn shutdown(mut self) -> EngineStats {
        let workers = self.workers.len() as u64;
        self.teardown();
        EngineStats {
            workers,
            ..self.stats()
        }
    }

    fn teardown(&mut self) {
        // Closing the queue ends the workers once they have drained it;
        // sessions borrow the engine, so none can still be submitting.
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ServingEngine {
    fn drop(&mut self) {
        self.teardown();
    }
}

/// One client stream multiplexed over a [`ServingEngine`].
///
/// A session is single-owner (`&mut self` entry points) and cheap; its
/// borrow of the engine guarantees the worker pool outlives it. Batches are
/// submitted with per-session sequence numbers and the session restores its
/// own input order in a client-side reorder buffer, releasing one credit per
/// emitted batch — the per-stream analogue of the PR 2 pipeline's credit
/// scheme, with identical guarantees (exact order, bit-identical results,
/// `max_in_flight` resident batches).
///
/// Dropping a session (including mid-panic of the caller's sink) removes
/// its routing entry and purges its still-queued batches from the fair
/// queue: workers never waste time on orphaned work, the freed capacity
/// immediately unblocks other sessions' producers, and batches already on
/// a worker are discarded on completion — one misbehaving client cannot
/// stall the pool or other sessions.
///
/// # Example
///
/// ```
/// # use std::sync::Arc;
/// # use metacache::{MetaCacheConfig, build::CpuBuilder};
/// # use metacache::serving::ServingEngine;
/// # use mc_seqio::SequenceRecord;
/// # use mc_taxonomy::{Rank, Taxonomy};
/// # let mut taxonomy = Taxonomy::with_root();
/// # taxonomy.add_node(100, 1, Rank::Species, "Species A").unwrap();
/// # let mut state = 9u64;
/// # let genome: Vec<u8> = (0..8000).map(|_| {
/// #     state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
/// #     b"ACGT"[(state >> 33) as usize % 4]
/// # }).collect();
/// # let mut builder = CpuBuilder::new(MetaCacheConfig::default(), taxonomy);
/// # builder.add_target(SequenceRecord::new("refA", genome.clone()), 100).unwrap();
/// # let engine = ServingEngine::host(Arc::new(builder.finish()));
/// let mut session = engine.session();
/// // Request-shaped: one call per request, results in input order.
/// let reads = vec![SequenceRecord::new("r0", genome[100..250].to_vec())];
/// let classifications = session.classify_batch(&reads);
/// assert_eq!(classifications[0].taxon, 100);
/// // Stream-shaped: the sink sees (index, read, classification) in exact
/// // input order while the warm pool classifies concurrently.
/// let summary = session
///     .classify_stream(
///         (0..5).map(|i| {
///             Ok::<_, std::convert::Infallible>(SequenceRecord::new(
///                 format!("s{i}"),
///                 genome[i * 50..i * 50 + 150].to_vec(),
///             ))
///         }),
///         |index, _read, c| assert!(index < 5 && c.taxon == 100),
///     )
///     .unwrap();
/// assert_eq!(summary.records, 5);
/// ```
pub struct Session<'e> {
    engine: &'e ServingEngine,
    id: u64,
    out_rx: mpsc::Receiver<WorkerResult>,
    pending: BTreeMap<u64, WorkerResult>,
    next_submit_seq: u64,
    next_emit_seq: u64,
    in_flight: usize,
    peak_in_flight: u64,
    batch_records: usize,
    max_in_flight: usize,
    last_generation: u64,
}

impl Session<'_> {
    /// The session's engine-unique id (the tag its batches carry).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The database generation of the most recently drained batch (the
    /// engine's generation at session open until the first drain). A client
    /// streaming across a [`ServingEngine::reload_backend`] watches this to
    /// detect the mid-stream upgrade.
    pub fn database_generation(&self) -> u64 {
        self.last_generation
    }

    /// The engine this session is served by.
    pub fn engine(&self) -> &ServingEngine {
        self.engine
    }

    /// The high-water admission check for this session: `true` while the
    /// engine's shared queue is full and this session has nothing queued —
    /// the moment a load-shedding front-end answers "busy" instead of
    /// submitting. Sessions with queued work are exempt (they hold a lane
    /// and drain it), so established streams keep their throughput while
    /// a flood of newcomers is shed.
    pub fn over_high_water(&self) -> bool {
        self.engine.shared.queue.over_high_water(self.id)
    }

    /// Stream a fallible record source through the engine, calling `sink`
    /// with `(record_index, record, classification)` in exact input order —
    /// the serving-path equivalent of
    /// [`StreamingClassifier::classify_stream`][crate::pipeline::StreamingClassifier::classify_stream].
    ///
    /// The caller's thread parses and assembles batches while the engine's
    /// resident workers classify concurrently; the session never holds more
    /// than its `max_in_flight` batches anywhere in the engine. On a source
    /// error, everything already submitted still drains to the sink, then
    /// the error is returned. A session can run any number of streams back
    /// to back — the warm worker pool is reused across all of them — and a
    /// stream abandoned mid-flight (sink panic, re-raised worker failure)
    /// is fully discarded before the next one starts, so stale batches
    /// never leak into a later sink.
    pub fn classify_stream<I, E, F>(
        &mut self,
        records: I,
        mut sink: F,
    ) -> std::result::Result<StreamingSummary, E>
    where
        I: IntoIterator<Item = std::result::Result<SequenceRecord, E>>,
        F: FnMut(u64, &SequenceRecord, &Classification),
    {
        // A previous stream on this session may have been abandoned
        // mid-flight (sink panic unwinding through us, or the panic re-raised
        // for a failed batch): its leftover batches must never leak into this
        // stream's sink.
        self.discard_stale();

        let mut summary = StreamingSummary::default();
        let mut record_index: u64 = 0;
        let mut error: Option<E> = None;
        // Cap the eager allocation: batch_records is caller-configured and
        // may be huge; the vector grows past this only if records really
        // arrive.
        let prealloc = self.batch_records.min(64 * 1024);
        let mut current: Vec<SequenceRecord> = Vec::with_capacity(prealloc);
        let start_peak = self.peak_in_flight;
        self.peak_in_flight = self.in_flight as u64;

        for item in records {
            match item {
                Ok(record) => {
                    current.push(record);
                    if current.len() >= self.batch_records {
                        let batch = std::mem::replace(&mut current, Vec::with_capacity(prealloc));
                        self.submit(batch, &mut summary, &mut sink, &mut record_index);
                    }
                }
                Err(e) => {
                    error = Some(e);
                    break;
                }
            }
        }
        if !current.is_empty() {
            self.submit(current, &mut summary, &mut sink, &mut record_index);
        }
        // Drain everything still in flight — also the prefix before a source
        // error, matching the streaming pipeline's semantics.
        while self.in_flight > 0 {
            self.drain_one(&mut summary, &mut sink, &mut record_index);
        }

        summary.peak_resident_batches = self.peak_in_flight;
        self.peak_in_flight = start_peak.max(self.peak_in_flight);
        // The queue gauge is engine-wide (all sessions share the queue).
        summary.peak_queue_batches = self.engine.shared.queue.peak_queued();
        match error {
            Some(e) => Err(e),
            None => Ok(summary),
        }
    }

    /// Stream an infallible record source and collect the classifications in
    /// input order. Convenience form of [`Session::classify_stream`].
    pub fn classify_iter<I>(&mut self, records: I) -> (Vec<Classification>, StreamingSummary)
    where
        I: IntoIterator<Item = SequenceRecord>,
    {
        let mut out = Vec::new();
        let result = self.classify_stream(
            records.into_iter().map(Ok::<_, std::convert::Infallible>),
            |_, _, c| out.push(*c),
        );
        let summary = match result {
            Ok(summary) => summary,
            Err(infallible) => match infallible {},
        };
        (out, summary)
    }

    /// Classify a slice of reads through the engine, returning one
    /// classification per read in input order — the request-shaped entry
    /// point for serving front-ends.
    pub fn classify_batch(&mut self, records: &[SequenceRecord]) -> Vec<Classification> {
        let mut out = Vec::with_capacity(records.len());
        self.classify_owned(records.to_vec(), &mut out);
        out
    }

    /// Classify an **owned** batch of reads without cloning a single record:
    /// the records travel through the engine by move and come back out. One
    /// classification per read is appended to `out` in input order, and the
    /// records are returned — same order, same contents, heap buffers
    /// intact — so a caller that decodes requests into reusable buffers
    /// (the `mc-net` server) can recycle them for the next request.
    ///
    /// Semantically identical to [`Session::classify_batch`] (bit-identical
    /// classifications, a worker panic re-raises here); the only difference
    /// is ownership flow.
    pub fn classify_owned(
        &mut self,
        records: Vec<SequenceRecord>,
        out: &mut Vec<Classification>,
    ) -> Vec<SequenceRecord> {
        self.discard_stale();
        let total = records.len();
        if total == 0 {
            return records;
        }
        out.reserve(total);
        if total <= self.batch_records {
            // One batch: the vector rides to the worker and back untouched.
            self.submit_owned(records);
            let mut returned = Vec::new();
            let mut spines = Vec::new();
            while self.in_flight > 0 {
                if let Some(single) = self.drain_owned(out, &mut returned, &mut spines, true) {
                    return single;
                }
            }
            unreachable!("single-batch drain always yields the batch back");
        }
        // Multiple batches: records are *moved* (never cloned) into
        // per-batch chunks; drained chunk spines are reused for later
        // chunks, and the records reassemble into `returned` in order.
        let mut returned: Vec<SequenceRecord> = Vec::with_capacity(total);
        let mut spines: Vec<Vec<SequenceRecord>> = Vec::new();
        let mut source = records.into_iter();
        loop {
            let mut chunk = spines
                .pop()
                .unwrap_or_else(|| Vec::with_capacity(self.batch_records.min(64 * 1024)));
            chunk.extend(source.by_ref().take(self.batch_records));
            if chunk.is_empty() {
                break;
            }
            while self.in_flight >= self.max_in_flight {
                self.drain_owned(out, &mut returned, &mut spines, false);
            }
            self.submit_owned(chunk);
        }
        while self.in_flight > 0 {
            self.drain_owned(out, &mut returned, &mut spines, false);
        }
        returned
    }

    /// Records per engine batch this session was opened with.
    pub fn batch_records(&self) -> usize {
        self.batch_records
    }

    /// The session's credit bound (resident batches).
    pub fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    /// Batches currently in flight (submitted, not yet drained).
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Whether a credit is free, i.e. [`Session::try_submit_owned`] could
    /// accept a batch (queue capacity permitting).
    pub fn can_submit(&self) -> bool {
        self.in_flight < self.max_in_flight
    }

    /// Non-blocking submit of one owned batch: `Err(records)` hands the
    /// batch straight back when the session is out of credits or the shared
    /// queue is at capacity. Credits free via [`Session::try_drain_owned`];
    /// queue capacity frees via [`ServingEngine::watch_queue_space`] — an
    /// event-loop caller parks on those signals instead of blocking here.
    ///
    /// Must not be interleaved with the blocking `classify_*` entry points
    /// on the same session (both consume the same in-flight credits and
    /// result channel; the blocking paths assume exclusive use).
    pub fn try_submit_owned(
        &mut self,
        records: Vec<SequenceRecord>,
    ) -> Result<(), Vec<SequenceRecord>> {
        if self.in_flight >= self.max_in_flight {
            return Err(records);
        }
        let batch = SequenceBatch::for_session(self.id, self.next_submit_seq, records);
        match self.engine.shared.queue.try_push(batch) {
            Ok(()) => {
                self.next_submit_seq += 1;
                self.in_flight += 1;
                self.peak_in_flight = self.peak_in_flight.max(self.in_flight as u64);
                Ok(())
            }
            Err(batch) => Err(batch.records),
        }
    }

    /// Non-blocking drain: the next completed batch in submission order, if
    /// it has arrived. Never blocks and never panics on a failed batch —
    /// the [`CompletedBatch::panicked`] flag carries worker failure out to
    /// the caller instead (unlike the blocking paths, which re-raise).
    /// Returns `None` while the next-in-order batch is still in flight,
    /// even if later batches have already finished (they wait in the
    /// reorder buffer).
    pub fn try_drain_owned(&mut self) -> Option<CompletedBatch> {
        while let Ok(result) = self.out_rx.try_recv() {
            self.pending.insert(result.seq, result);
        }
        let done = self.pending.remove(&self.next_emit_seq)?;
        self.next_emit_seq += 1;
        self.in_flight -= 1;
        self.last_generation = done.generation;
        Some(CompletedBatch {
            records: done.records,
            classifications: done.classifications,
            panicked: done.panicked,
            generation: done.generation,
        })
    }

    /// Enqueue one owned batch under this session's next sequence number.
    fn submit_owned(&mut self, records: Vec<SequenceRecord>) {
        let batch = SequenceBatch::for_session(self.id, self.next_submit_seq, records);
        self.engine
            .shared
            .queue
            .push(batch)
            .unwrap_or_else(|_| panic!("serving engine queue closed while session alive"));
        self.next_submit_seq += 1;
        self.in_flight += 1;
        self.peak_in_flight = self.peak_in_flight.max(self.in_flight as u64);
    }

    /// Receive one completed batch and emit every contiguous batch from the
    /// reorder buffer: classifications append to `out`, records move into
    /// `returned` (their emptied spines into `spines` for reuse). With
    /// `single`, the first emitted batch's record vector is handed back
    /// whole instead.
    fn drain_owned(
        &mut self,
        out: &mut Vec<Classification>,
        returned: &mut Vec<SequenceRecord>,
        spines: &mut Vec<Vec<SequenceRecord>>,
        single: bool,
    ) -> Option<Vec<SequenceRecord>> {
        let result = self
            .out_rx
            .recv()
            .expect("serving engine workers gone while session in flight");
        self.pending.insert(result.seq, result);
        while let Some(done) = self.pending.remove(&self.next_emit_seq) {
            self.next_emit_seq += 1;
            self.in_flight -= 1;
            self.last_generation = done.generation;
            if done.panicked {
                panic!(
                    "serving engine worker panicked while classifying \
                     session {} batch {}",
                    self.id,
                    self.next_emit_seq - 1
                );
            }
            out.extend(done.classifications);
            if single {
                return Some(done.records);
            }
            let mut records = done.records;
            returned.append(&mut records);
            spines.push(records);
        }
        None
    }

    /// Discard every in-flight batch of an abandoned previous stream:
    /// purge what is still queued (so no worker wastes time on it), receive
    /// (and drop) the results owed for batches already being classified,
    /// clear the reorder buffer and resynchronise the emit cursor. Safe to
    /// block: a registered session's outstanding batches either get purged
    /// here or always complete (the sized result channel means workers
    /// never block delivering them).
    fn discard_stale(&mut self) {
        if self.in_flight == 0 && self.pending.is_empty() {
            return;
        }
        let purged = self.engine.shared.queue.purge_session(self.id);
        // Results already received sit in `pending`; purged batches will
        // never produce one; the rest are with workers or in our channel.
        let mut to_recv = self.in_flight.saturating_sub(self.pending.len() + purged);
        while to_recv > 0 {
            if self.out_rx.recv().is_err() {
                break;
            }
            to_recv -= 1;
        }
        self.pending.clear();
        self.in_flight = 0;
        self.next_emit_seq = self.next_submit_seq;
    }

    /// Submit one assembled batch: block on this session's credit bound
    /// (draining our own completed batches while waiting), then enqueue.
    fn submit<F>(
        &mut self,
        records: Vec<SequenceRecord>,
        summary: &mut StreamingSummary,
        sink: &mut F,
        record_index: &mut u64,
    ) where
        F: FnMut(u64, &SequenceRecord, &Classification),
    {
        while self.in_flight >= self.max_in_flight {
            self.drain_one(summary, sink, record_index);
        }
        self.submit_owned(records);
    }

    /// Receive one completed batch and emit every contiguous batch from the
    /// reorder buffer to the sink, releasing their credits.
    fn drain_one<F>(&mut self, summary: &mut StreamingSummary, sink: &mut F, record_index: &mut u64)
    where
        F: FnMut(u64, &SequenceRecord, &Classification),
    {
        let result = self
            .out_rx
            .recv()
            .expect("serving engine workers gone while session in flight");
        self.pending.insert(result.seq, result);
        while let Some(done) = self.pending.remove(&self.next_emit_seq) {
            self.next_emit_seq += 1;
            self.in_flight -= 1;
            self.last_generation = done.generation;
            if done.panicked {
                panic!(
                    "serving engine worker panicked while classifying \
                     session {} batch {}",
                    self.id,
                    self.next_emit_seq - 1
                );
            }
            for (record, classification) in done.records.iter().zip(&done.classifications) {
                sink(*record_index, record, classification);
                summary.bases += record.total_len() as u64;
                *record_index += 1;
            }
            summary.records += done.records.len() as u64;
            summary.batches += 1;
        }
    }
}

impl Drop for Session<'_> {
    fn drop(&mut self) {
        // Unregister first so workers stop routing to our channel; anything
        // a worker already holds is discarded on completion.
        self.engine
            .shared
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&self.id);
        // Then purge what never reached a worker: a dead session must not
        // burn backend time on orphaned batches or hold queue capacity
        // hostage against live sessions.
        self.engine.shared.queue.purge_session(self.id);
        // Finally forget the scheduling class (kept across mid-life purges,
        // released only here).
        self.engine.shared.queue.forget_session(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::CpuBuilder;
    use crate::config::MetaCacheConfig;
    use crate::query::Classifier;
    use mc_taxonomy::{Rank, Taxonomy};

    fn make_seq(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                b"ACGT"[(state >> 33) as usize % 4]
            })
            .collect()
    }

    fn serving_db() -> (Arc<Database>, Vec<SequenceRecord>) {
        let mut taxonomy = Taxonomy::with_root();
        taxonomy.add_node(100, 1, Rank::Species, "a").unwrap();
        taxonomy.add_node(101, 1, Rank::Species, "b").unwrap();
        let genome_a = make_seq(12_000, 1);
        let genome_b = make_seq(12_000, 2);
        let mut builder = CpuBuilder::new(MetaCacheConfig::for_tests(), taxonomy);
        builder
            .add_target(SequenceRecord::new("a", genome_a.clone()), 100)
            .unwrap();
        builder
            .add_target(SequenceRecord::new("b", genome_b.clone()), 101)
            .unwrap();
        let reads = (0..40)
            .map(|i| {
                let g = if i % 2 == 0 { &genome_a } else { &genome_b };
                SequenceRecord::new(
                    format!("r{i}"),
                    g[100 + i * 37..100 + i * 37 + 120].to_vec(),
                )
            })
            .collect();
        (Arc::new(builder.finish()), reads)
    }

    #[test]
    fn single_session_matches_classify_batch() {
        let (db, reads) = serving_db();
        let expected = Classifier::new(Arc::clone(&db)).classify_batch(&reads);
        let engine = ServingEngine::host_with_config(
            Arc::clone(&db),
            EngineConfig {
                workers: 3,
                queue_capacity: 2,
                batch_records: 4,
                session_max_in_flight: 0,
                ..EngineConfig::default()
            },
        );
        let mut session = engine.session();
        let (got, summary) = session.classify_iter(reads.iter().cloned());
        assert_eq!(got, expected);
        assert_eq!(summary.records, reads.len() as u64);
        assert_eq!(summary.batches, (reads.len() as u64).div_ceil(4));
        assert!(summary.peak_resident_batches <= 2 + 3);
        drop(session);
        let stats = engine.shutdown();
        assert_eq!(stats.records_classified, reads.len() as u64);
        assert_eq!(stats.sessions_opened, 1);
        assert_eq!(stats.worker_panics, 0);
    }

    #[test]
    fn session_reuse_across_requests_keeps_order() {
        let (db, reads) = serving_db();
        let expected = Classifier::new(Arc::clone(&db)).classify_batch(&reads);
        let engine = ServingEngine::host_with_config(
            Arc::clone(&db),
            EngineConfig {
                workers: 2,
                queue_capacity: 2,
                batch_records: 3,
                session_max_in_flight: 0,
                ..EngineConfig::default()
            },
        );
        let mut session = engine.session();
        // Many small "requests" through one warm session.
        for chunk in reads.chunks(7) {
            let expected_chunk: Vec<_> = chunk
                .iter()
                .map(|r| Classifier::new(Arc::clone(&db)).classify(r))
                .collect();
            let got = session.classify_batch(chunk);
            assert_eq!(got, expected_chunk);
        }
        // One big request on the same session still matches.
        let (got, _) = session.classify_iter(reads.iter().cloned());
        assert_eq!(got, expected);
    }

    #[test]
    fn sink_sees_exact_input_order_with_tiny_batches() {
        let (db, reads) = serving_db();
        let engine = ServingEngine::host_with_config(
            Arc::clone(&db),
            EngineConfig {
                workers: 4,
                queue_capacity: 2,
                batch_records: 1,
                session_max_in_flight: 0,
                ..EngineConfig::default()
            },
        );
        let mut session = engine.session();
        let mut seen = Vec::new();
        let summary = session
            .classify_stream(
                reads.iter().cloned().map(Ok::<_, std::convert::Infallible>),
                |index, record, _| seen.push((index, record.header.clone())),
            )
            .unwrap();
        assert_eq!(seen.len(), reads.len());
        for (i, (index, header)) in seen.iter().enumerate() {
            assert_eq!(*index, i as u64);
            assert_eq!(header, &reads[i].header);
        }
        assert!(summary.bases > 0);
    }

    #[test]
    fn source_error_drains_prefix_and_propagates() {
        let (db, reads) = serving_db();
        let engine = ServingEngine::host(Arc::clone(&db));
        let mut session = engine.session_with(SessionConfig {
            batch_records: 3,
            max_in_flight: 2,
            ..SessionConfig::default()
        });
        let mut emitted = 0u64;
        let source =
            reads
                .iter()
                .cloned()
                .enumerate()
                .map(|(i, r)| if i < 10 { Ok(r) } else { Err("boom") });
        let err = session
            .classify_stream(source, |_, _, _| emitted += 1)
            .unwrap_err();
        assert_eq!(err, "boom");
        assert_eq!(emitted, 10);
    }

    #[test]
    fn empty_stream_is_a_noop() {
        let (db, _) = serving_db();
        let engine = ServingEngine::host(Arc::clone(&db));
        let mut session = engine.session();
        let (out, summary) = session.classify_iter(std::iter::empty());
        assert!(out.is_empty());
        assert_eq!(summary.records, 0);
        assert_eq!(summary.batches, 0);
    }

    #[test]
    fn session_in_flight_stays_within_bound() {
        let (db, reads) = serving_db();
        let engine = ServingEngine::host_with_config(
            Arc::clone(&db),
            EngineConfig {
                workers: 2,
                queue_capacity: 1,
                batch_records: 1,
                session_max_in_flight: 3,
                ..EngineConfig::default()
            },
        );
        let mut session = engine.session();
        let (_, summary) = session.classify_iter(reads.iter().cloned());
        assert!(
            summary.peak_resident_batches <= 3,
            "peak {} exceeds session bound 3",
            summary.peak_resident_batches
        );
    }

    #[test]
    fn drop_without_shutdown_joins_workers() {
        let (db, reads) = serving_db();
        let engine = ServingEngine::host(Arc::clone(&db));
        let mut session = engine.session();
        let _ = session.classify_iter(reads.iter().cloned());
        drop(session);
        drop(engine); // Drop impl must join without hanging.
    }

    fn batch_of(session: u64, seq: u64, records: usize) -> SequenceBatch {
        SequenceBatch::for_session(
            session,
            seq,
            (0..records)
                .map(|i| SequenceRecord::new(format!("s{session}b{seq}r{i}"), b"ACGT".to_vec()))
                .collect(),
        )
    }

    /// Test shim over the epoch-aware pop: pops as a worker pinned at the
    /// queue's current reload generation (so it never sees a reload wake).
    fn pop_batch(queue: &FairQueue) -> Option<SequenceBatch> {
        match queue.pop_pinned(queue.reload_generation.load(Ordering::Acquire)) {
            Popped::Batch(batch) => Some(batch),
            Popped::Reload => panic!("pop at the current generation saw a reload wake"),
            Popped::Closed => None,
        }
    }

    /// The starvation regression test (queue level): with a FIFO pop, a
    /// small session's lone batch submitted behind a big session's backlog
    /// waits for the *entire* backlog. The DRR pop must serve it within one
    /// scheduling round.
    #[test]
    fn drr_pop_does_not_starve_small_sessions_behind_a_backlog() {
        let queue = FairQueue::new(64, [4, 1]);
        // Session 1: a big backlog of 8 batches, 4 records each.
        for seq in 0..8 {
            queue.push(batch_of(1, seq, 4)).unwrap();
        }
        // Session 2: one small batch, queued dead last.
        queue.push(batch_of(2, 0, 2)).unwrap();

        let order: Vec<u64> = (0..9).map(|_| pop_batch(&queue).unwrap().session).collect();
        let small_position = order.iter().position(|&s| s == 2).unwrap();
        assert!(
            small_position <= 2,
            "small session served at position {small_position} of {order:?}; \
             FIFO would serve it last"
        );
        // Per-session FIFO order is preserved by the fair pop.
        queue.push(batch_of(3, 0, 1)).unwrap();
        queue.push(batch_of(3, 1, 1)).unwrap();
        queue.push(batch_of(3, 2, 1)).unwrap();
        let seqs: Vec<u64> = (0..3)
            .map(|_| pop_batch(&queue).unwrap().session_seq)
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    /// Record weighting: a session submitting few large batches and one
    /// submitting many small batches interleave by records, not turns —
    /// the small-batch session is not starved of pops.
    #[test]
    fn drr_pop_interleaves_sessions_with_queued_work() {
        let queue = FairQueue::new(64, [4, 1]);
        for seq in 0..4 {
            queue.push(batch_of(1, seq, 4)).unwrap(); // 16 records in 4 batches
        }
        for seq in 0..8 {
            queue.push(batch_of(2, seq, 2)).unwrap(); // 16 records in 8 batches
        }
        let order: Vec<u64> = (0..12)
            .map(|_| pop_batch(&queue).unwrap().session)
            .collect();
        // Within the first half of the pops, both sessions must appear.
        assert!(
            order[..4].contains(&1) && order[..4].contains(&2),
            "{order:?}"
        );
        // And the queue drains completely and closes cleanly.
        queue.close();
        assert!(pop_batch(&queue).is_none());
        assert!(queue.push(batch_of(9, 0, 1)).is_err());
    }

    /// Satellite regression: purging a dead session's lane frees its queue
    /// capacity immediately and wakes producers blocked on `space`.
    #[test]
    fn purge_session_removes_lane_and_wakes_blocked_producers() {
        let queue = FairQueue::new(4, [1, 1]);
        for seq in 0..4 {
            queue.push(batch_of(1, seq, 1)).unwrap(); // dead session fills the queue
        }
        assert_eq!(queue.queued(), 4);
        // A producer for a live session blocks on the full queue.
        let queue_ref = &queue;
        std::thread::scope(|scope| {
            let blocked = scope.spawn(move || queue_ref.push(batch_of(2, 0, 1)).is_ok());
            std::thread::sleep(std::time::Duration::from_millis(30));
            assert!(!blocked.is_finished(), "push must block on a full queue");
            // Purging the dead session's lane unblocks it without any worker
            // classifying the orphans.
            assert_eq!(queue.purge_session(1), 4);
            assert!(blocked.join().unwrap());
        });
        assert_eq!(queue.queued(), 1);
        // Only the live session's batch remains.
        assert_eq!(pop_batch(&queue).unwrap().session, 2);
        // Purging an unknown session is a no-op.
        assert_eq!(queue.purge_session(99), 0);
    }

    /// High-water admission: a full queue refuses only sessions without a
    /// lane; sessions with queued work are never refused, and capacity
    /// freeing up re-admits newcomers.
    #[test]
    fn over_high_water_spares_established_lanes() {
        let queue = FairQueue::new(3, [1, 1]);
        assert!(!queue.over_high_water(1), "empty queue admits anyone");
        queue.push(batch_of(1, 0, 1)).unwrap();
        queue.push(batch_of(1, 1, 1)).unwrap();
        queue.push(batch_of(2, 0, 1)).unwrap();
        // Full: session 3 (no lane) is over the high water, 1 and 2 are not.
        assert!(queue.over_high_water(3));
        assert!(!queue.over_high_water(1));
        assert!(!queue.over_high_water(2));
        // Draining one batch re-opens admission.
        let _ = pop_batch(&queue).unwrap();
        assert!(!queue.over_high_water(3));
    }

    #[test]
    fn live_sessions_tracks_session_lifetimes() {
        let (db, _) = serving_db();
        let engine = ServingEngine::host(Arc::clone(&db));
        assert_eq!(engine.live_sessions(), 0);
        let a = engine.session();
        let b = engine.session();
        assert_eq!(engine.live_sessions(), 2);
        assert!(!a.over_high_water(), "idle engine is under the high water");
        drop(a);
        assert_eq!(engine.live_sessions(), 1);
        drop(b);
        assert_eq!(engine.live_sessions(), 0);
        engine.shutdown();
    }

    #[test]
    fn fair_queue_close_drains_remaining_batches() {
        let queue = FairQueue::new(8, [1, 1]);
        queue.push(batch_of(1, 0, 1)).unwrap();
        queue.push(batch_of(2, 0, 1)).unwrap();
        queue.close();
        assert!(pop_batch(&queue).is_some());
        assert!(pop_batch(&queue).is_some());
        assert!(pop_batch(&queue).is_none());
        assert_eq!(queue.queued(), 0);
        assert_eq!(queue.peak_queued(), 2);
    }

    /// A backend gate that blocks workers until the test releases them and
    /// records the order in which batches reach the backend.
    struct GatedBackend {
        inner: HostBackend<Arc<Database>>,
        open: Arc<(Mutex<bool>, std::sync::Condvar)>,
        log: Arc<Mutex<Vec<String>>>,
    }

    struct GatedWorker<'b> {
        backend: &'b GatedBackend,
        inner: Box<dyn crate::backend::BackendWorker + 'b>,
    }

    impl Backend for GatedBackend {
        fn database(&self) -> &Database {
            self.inner.database()
        }

        fn name(&self) -> &'static str {
            "gated-host"
        }

        fn worker(&self) -> Box<dyn crate::backend::BackendWorker + '_> {
            Box::new(GatedWorker {
                backend: self,
                inner: self.inner.worker(),
            })
        }
    }

    impl crate::backend::BackendWorker for GatedWorker<'_> {
        fn classify_batch_into(
            &mut self,
            records: &[SequenceRecord],
            out: &mut Vec<Classification>,
        ) {
            let (lock, condvar) = &*self.backend.open;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = condvar.wait(open).unwrap();
            }
            drop(open);
            if let Some(first) = records.first() {
                self.backend.log.lock().unwrap().push(first.header.clone());
            }
            self.inner.classify_batch_into(records, out);
        }
    }

    /// The starvation regression test (engine level): a single worker, a
    /// big session's backlog queued ahead of a small session's lone
    /// request — once the worker runs, the small request must be served
    /// within one DRR round, not after the whole backlog.
    #[test]
    fn small_request_is_not_starved_behind_a_big_stream() {
        let (db, _) = serving_db();
        let open = Arc::new((Mutex::new(false), std::sync::Condvar::new()));
        let log = Arc::new(Mutex::new(Vec::new()));
        let engine = ServingEngine::new(
            GatedBackend {
                inner: HostBackend::new(Arc::clone(&db)),
                open: Arc::clone(&open),
                log: Arc::clone(&log),
            },
            EngineConfig {
                workers: 1,
                queue_capacity: 8,
                batch_records: 1,
                session_max_in_flight: 0,
                ..EngineConfig::default()
            },
        );
        let genome = make_seq(2_000, 99);
        let read = |name: &str| SequenceRecord::new(name, genome[0..150].to_vec());

        let wait_for_queue = |want: u64| {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
            while engine.shared.queue.queued() != want {
                assert!(
                    std::time::Instant::now() < deadline,
                    "queue never reached {want} batches (at {})",
                    engine.shared.queue.queued()
                );
                std::thread::yield_now();
            }
        };

        std::thread::scope(|scope| {
            // Big session: 7 one-record batches. The gated worker takes the
            // first and blocks; 6 remain queued.
            let engine_ref = &engine;
            let big = scope.spawn({
                let reads: Vec<_> = (0..7).map(|i| read(&format!("big{i}"))).collect();
                move || {
                    let mut session = engine_ref.session();
                    session.classify_batch(&reads)
                }
            });
            wait_for_queue(6);
            // Small session: one batch, queued dead last.
            let small = scope.spawn(move || {
                let mut session = engine_ref.session();
                session.classify_batch(&[read("small")])
            });
            wait_for_queue(7);
            // Release the worker and let everything drain.
            {
                let (lock, condvar) = &*open;
                *lock.lock().unwrap() = true;
                condvar.notify_all();
            }
            assert_eq!(big.join().unwrap().len(), 7);
            assert_eq!(small.join().unwrap().len(), 1);
        });

        let order = log.lock().unwrap().clone();
        let position = order
            .iter()
            .position(|h| h == "small")
            .expect("small request classified");
        assert!(
            position <= 3,
            "small request served at position {position} of {order:?}; \
             a FIFO pop would serve it last (position 7)"
        );
        engine.shutdown();
    }

    #[test]
    fn classify_owned_matches_classify_batch_and_returns_records() {
        let (db, reads) = serving_db();
        let expected = Classifier::new(Arc::clone(&db)).classify_batch(&reads);
        let engine = ServingEngine::host_with_config(
            Arc::clone(&db),
            EngineConfig {
                workers: 3,
                queue_capacity: 2,
                batch_records: 4, // multi-batch path: 40 reads → 10 batches
                session_max_in_flight: 3,
                ..EngineConfig::default()
            },
        );
        let mut session = engine.session();
        let mut out = vec![Classification::unclassified()]; // must append
        let returned = session.classify_owned(reads.clone(), &mut out);
        assert_eq!(out[1..], expected[..]);
        assert_eq!(returned, reads, "records must come back in input order");

        // Single-batch fast path: the input vector itself travels through
        // the engine and back.
        let mut session = engine.session_with(SessionConfig {
            batch_records: 1_000,
            max_in_flight: 0,
            ..SessionConfig::default()
        });
        let mut out = Vec::new();
        let returned = session.classify_owned(reads.clone(), &mut out);
        assert_eq!(out, expected);
        assert_eq!(returned, reads);

        // Empty input is a no-op that hands the vector straight back.
        let empty = session.classify_owned(Vec::new(), &mut out);
        assert!(empty.is_empty());
        assert_eq!(out, expected);
    }

    /// A backend whose workers consume one permit per batch and block while
    /// none are available, logging what actually reached the backend.
    struct PermitBackend {
        inner: HostBackend<Arc<Database>>,
        permits: Arc<(Mutex<usize>, std::sync::Condvar)>,
        log: Arc<Mutex<Vec<String>>>,
    }

    struct PermitWorker<'b> {
        backend: &'b PermitBackend,
        inner: Box<dyn crate::backend::BackendWorker + 'b>,
    }

    impl Backend for PermitBackend {
        fn database(&self) -> &Database {
            self.inner.database()
        }

        fn name(&self) -> &'static str {
            "permit-host"
        }

        fn worker(&self) -> Box<dyn crate::backend::BackendWorker + '_> {
            Box::new(PermitWorker {
                backend: self,
                inner: self.inner.worker(),
            })
        }
    }

    impl crate::backend::BackendWorker for PermitWorker<'_> {
        fn classify_batch_into(
            &mut self,
            records: &[SequenceRecord],
            out: &mut Vec<Classification>,
        ) {
            let (lock, condvar) = &*self.backend.permits;
            let mut permits = lock.lock().unwrap();
            while *permits == 0 {
                permits = condvar.wait(permits).unwrap();
            }
            *permits -= 1;
            drop(permits);
            if let Some(first) = records.first() {
                self.backend.log.lock().unwrap().push(first.header.clone());
            }
            self.inner.classify_batch_into(records, out);
        }
    }

    /// Satellite regression (engine level): a session abandoned with
    /// batches still queued must not keep its lane alive — the orphans are
    /// purged on unregister (no wasted backend work), the queue capacity
    /// frees up immediately, and other sessions keep going.
    #[test]
    fn dropping_a_session_purges_its_queued_batches() {
        let (db, _) = serving_db();
        let permits = Arc::new((Mutex::new(1usize), std::sync::Condvar::new()));
        let log = Arc::new(Mutex::new(Vec::new()));
        let engine = ServingEngine::new(
            PermitBackend {
                inner: HostBackend::new(Arc::clone(&db)),
                permits: Arc::clone(&permits),
                log: Arc::clone(&log),
            },
            EngineConfig {
                workers: 1,
                queue_capacity: 8,
                batch_records: 1,
                session_max_in_flight: 0,
                ..EngineConfig::default()
            },
        );
        let genome = make_seq(2_000, 7);
        let read = |name: &str| SequenceRecord::new(name, genome[0..150].to_vec());

        let deadline = || std::time::Instant::now() + std::time::Duration::from_secs(20);
        std::thread::scope(|scope| {
            let engine_ref = &engine;
            // The abandoned session: 6 one-record batches; the single
            // permit lets the worker classify a0 only, then the sink panic
            // on a0's result drops the session with a2..a5 still queued
            // (the worker sits blocked holding a1).
            let abandoned = scope.spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut session = engine_ref.session();
                    let reads: Vec<_> = (0..6).map(|i| read(&format!("a{i}"))).collect();
                    session
                        .classify_stream(
                            reads.into_iter().map(Ok::<_, std::convert::Infallible>),
                            |_, _, _| panic!("sink abandons the stream"),
                        )
                        .ok();
                }));
                assert!(result.is_err(), "sink panic must propagate");
            });
            abandoned.join().unwrap();

            // The purge must empty the queue *without* any further permits:
            // no worker may classify the orphaned batches.
            let stop = deadline();
            while engine.shared.queue.queued() > 0 {
                assert!(
                    std::time::Instant::now() < stop,
                    "orphaned batches were not purged (queued {})",
                    engine.shared.queue.queued()
                );
                std::thread::yield_now();
            }

            // Free the worker (it still holds a1) and serve another session.
            {
                let (lock, condvar) = &*permits;
                *lock.lock().unwrap() = 1_000;
                condvar.notify_all();
            }
            let small = scope.spawn(move || {
                let mut session = engine_ref.session();
                session.classify_batch(&[read("b0")])
            });
            assert_eq!(small.join().unwrap().len(), 1);
        });
        engine.shutdown();

        let classified = log.lock().unwrap().clone();
        assert!(classified.contains(&"a0".to_string()));
        assert!(classified.contains(&"b0".to_string()));
        for orphan in ["a2", "a3", "a4", "a5"] {
            assert!(
                !classified.contains(&orphan.to_string()),
                "purged batch {orphan} still reached the backend: {classified:?}"
            );
        }
    }

    #[test]
    fn config_normalization_and_defaults() {
        let config = EngineConfig {
            workers: 0,
            queue_capacity: 0,
            batch_records: 0,
            session_max_in_flight: 0,
            interactive_quantum: 0,
            bulk_quantum: 0,
        }
        .normalized();
        assert_eq!(config.workers, 1);
        assert_eq!(config.queue_capacity, 1);
        assert_eq!(config.batch_records, 1);
        assert_eq!(config.effective_session_in_flight(), 2);
        assert_eq!(config.class_quanta(), [1, 1]);
        let explicit = EngineConfig {
            session_max_in_flight: 7,
            ..EngineConfig::default()
        };
        assert_eq!(explicit.effective_session_in_flight(), 7);
        // Quanta defaults: interactive = batch_records, bulk = a quarter.
        let quanta = EngineConfig {
            batch_records: 64,
            ..EngineConfig::default()
        };
        assert_eq!(quanta.class_quanta(), [64, 16]);
        let quanta = EngineConfig {
            batch_records: 64,
            interactive_quantum: 100,
            bulk_quantum: 3,
            ..EngineConfig::default()
        };
        assert_eq!(quanta.class_quanta(), [100, 3]);
    }

    /// Priority lanes, deterministic pop order: with quanta `[4, 1]` and
    /// two equally backlogged one-record-batch lanes, the weighted DRR must
    /// serve interactive and bulk in exactly the 4:1 pattern the deficits
    /// dictate — nothing probabilistic about it.
    #[test]
    fn weighted_lanes_pop_in_exact_quanta_ratio() {
        let queue = FairQueue::new(64, [4, 1]);
        queue.set_class(1, QueueClass::Interactive);
        queue.set_class(2, QueueClass::Bulk);
        for seq in 0..8 {
            queue.push(batch_of(1, seq, 1)).unwrap();
        }
        for seq in 0..8 {
            queue.push(batch_of(2, seq, 1)).unwrap();
        }
        let order: Vec<u64> = (0..16)
            .map(|_| pop_batch(&queue).unwrap().session)
            .collect();
        // Walked by hand: both lanes start at deficit 0; the first visit
        // grants 4 to interactive and 1 to bulk, then each grant buys that
        // many one-record batches before the rotation moves on.
        assert_eq!(order, vec![1, 1, 1, 1, 2, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2]);

        // The mirror image: swap the classes. Rotation order still follows
        // arrival order (bulk lane 1 entered first, so it heads the round),
        // but its visits grant 1 while interactive's grant 4.
        let queue = FairQueue::new(64, [4, 1]);
        queue.set_class(1, QueueClass::Bulk);
        queue.set_class(2, QueueClass::Interactive);
        for seq in 0..8 {
            queue.push(batch_of(1, seq, 1)).unwrap();
        }
        for seq in 0..8 {
            queue.push(batch_of(2, seq, 1)).unwrap();
        }
        let order: Vec<u64> = (0..16)
            .map(|_| pop_batch(&queue).unwrap().session)
            .collect();
        assert_eq!(order, vec![1, 2, 2, 2, 2, 1, 2, 2, 2, 2, 1, 1, 1, 1, 1, 1]);

        // A purge must not erase the class: after a mid-life purge the
        // session's next backlog still schedules under its lane's quantum.
        let queue = FairQueue::new(64, [4, 1]);
        queue.set_class(1, QueueClass::Bulk);
        queue.push(batch_of(1, 0, 1)).unwrap();
        assert_eq!(queue.purge_session(1), 1);
        queue.push(batch_of(1, 1, 1)).unwrap();
        queue.set_class(2, QueueClass::Interactive);
        for seq in 0..4 {
            queue.push(batch_of(2, seq, 1)).unwrap();
        }
        let order: Vec<u64> = (0..5).map(|_| pop_batch(&queue).unwrap().session).collect();
        assert_eq!(order, vec![1, 2, 2, 2, 2], "bulk visited first grants 1");
        queue.forget_session(1);
        queue.forget_session(2);
    }

    /// Priority lanes, engine level: a bulk session's backlog queued ahead
    /// of an interactive session's request cannot delay the interactive
    /// batches beyond the quanta ratio — they ride past most of the
    /// backlog instead of waiting behind all of it.
    #[test]
    fn bulk_backlog_cannot_starve_interactive_beyond_its_weight() {
        let (db, _) = serving_db();
        let open = Arc::new((Mutex::new(false), std::sync::Condvar::new()));
        let log = Arc::new(Mutex::new(Vec::new()));
        let engine = ServingEngine::new(
            GatedBackend {
                inner: HostBackend::new(Arc::clone(&db)),
                open: Arc::clone(&open),
                log: Arc::clone(&log),
            },
            EngineConfig {
                workers: 1,
                queue_capacity: 16,
                batch_records: 1,
                session_max_in_flight: 0,
                interactive_quantum: 4,
                bulk_quantum: 1,
            },
        );
        let genome = make_seq(2_000, 42);
        let read = |name: &str| SequenceRecord::new(name, genome[0..150].to_vec());

        let wait_for_queue = |want: u64| {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
            while engine.shared.queue.queued() != want {
                assert!(
                    std::time::Instant::now() < deadline,
                    "queue never reached {want} batches (at {})",
                    engine.shared.queue.queued()
                );
                std::thread::yield_now();
            }
        };

        std::thread::scope(|scope| {
            let engine_ref = &engine;
            // Bulk session: 9 one-record batches. The gated worker takes the
            // first and blocks; 8 remain queued.
            let bulk = scope.spawn({
                let reads: Vec<_> = (0..9).map(|i| read(&format!("bulk{i}"))).collect();
                move || {
                    let mut session = engine_ref.session_with(SessionConfig {
                        class: QueueClass::Bulk,
                        ..SessionConfig::default()
                    });
                    session.classify_batch(&reads)
                }
            });
            wait_for_queue(8);
            // Interactive session: 4 batches, queued dead last.
            let interactive = scope.spawn({
                let reads: Vec<_> = (0..4).map(|i| read(&format!("inter{i}"))).collect();
                move || {
                    let mut session = engine_ref.session_with(SessionConfig {
                        class: QueueClass::Interactive,
                        ..SessionConfig::default()
                    });
                    session.classify_batch(&reads)
                }
            });
            wait_for_queue(12);
            {
                let (lock, condvar) = &*open;
                *lock.lock().unwrap() = true;
                condvar.notify_all();
            }
            assert_eq!(bulk.join().unwrap().len(), 9);
            assert_eq!(interactive.join().unwrap().len(), 4);
        });

        let order = log.lock().unwrap().clone();
        let last_interactive = order
            .iter()
            .rposition(|h| h.starts_with("inter"))
            .expect("interactive batches classified");
        // 13 batches total; with quanta [4, 1] all four interactive batches
        // must land within the first six backend calls (one bulk head + at
        // most one bulk batch per granted round). A FIFO (or unweighted
        // quantum-1 DRR) would spread them to position ~9.
        assert!(
            last_interactive <= 5,
            "interactive served as late as position {last_interactive} of {order:?}"
        );
        engine.shutdown();
    }

    /// The non-blocking session API: `try_submit_owned` refuses instead of
    /// blocking (no credit / full queue), `try_drain_owned` hands back
    /// completed batches in submission order without blocking, the
    /// session-notify and queue-space watchers fire, and the results are
    /// bit-identical to the blocking path.
    #[test]
    fn try_submit_and_try_drain_are_nonblocking_and_in_order() {
        let (db, reads) = serving_db();
        let expected = Classifier::new(Arc::clone(&db)).classify_batch(&reads);
        let engine = ServingEngine::host_with_config(
            Arc::clone(&db),
            EngineConfig {
                workers: 2,
                queue_capacity: 2,
                batch_records: 4,
                session_max_in_flight: 3,
                ..EngineConfig::default()
            },
        );
        let space_wakes = Arc::new(AtomicU64::new(0));
        engine.watch_queue_space({
            let space_wakes = Arc::clone(&space_wakes);
            Arc::new(move || {
                space_wakes.fetch_add(1, Ordering::Relaxed);
            })
        });
        let notifies = Arc::new(AtomicU64::new(0));
        let mut session = engine.session_with_notify(
            SessionConfig::default(),
            Arc::new({
                let notifies = Arc::clone(&notifies);
                move || {
                    notifies.fetch_add(1, Ordering::Relaxed);
                }
            }),
        );

        assert!(session.can_submit());
        assert_eq!(session.in_flight(), 0);
        assert_eq!(session.batch_records(), 4);
        assert_eq!(session.max_in_flight(), 3);

        // Submit every 4-read chunk; park on refusal and drain instead of
        // blocking. The credit bound (3) is below chunk count (10), so
        // refusals are guaranteed along the way.
        let mut chunks: std::collections::VecDeque<Vec<SequenceRecord>> =
            reads.chunks(4).map(<[SequenceRecord]>::to_vec).collect();
        let total_batches = chunks.len() as u64;
        let mut got: Vec<Classification> = Vec::new();
        let mut refusals = 0u64;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        while got.len() < reads.len() {
            assert!(
                std::time::Instant::now() < deadline,
                "nonblocking pump wedged at {} of {} results",
                got.len(),
                reads.len()
            );
            if let Some(chunk) = chunks.pop_front() {
                if let Err(back) = session.try_submit_owned(chunk) {
                    refusals += 1;
                    chunks.push_front(back); // refused: records come back intact
                }
            }
            while let Some(done) = session.try_drain_owned() {
                assert!(!done.panicked);
                assert_eq!(done.records.len(), done.classifications.len());
                got.extend(done.classifications);
            }
        }
        assert_eq!(got, expected, "nonblocking path must stay bit-identical");
        assert!(refusals > 0, "credit bound 3 over 10 chunks must refuse");
        assert!(session.try_drain_owned().is_none());
        assert!(session.can_submit());
        assert_eq!(session.in_flight(), 0);
        assert_eq!(notifies.load(Ordering::Relaxed), total_batches);
        assert!(space_wakes.load(Ordering::Relaxed) >= total_batches);
        drop(session);
        engine.shutdown();
    }
}
