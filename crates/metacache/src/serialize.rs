//! Database serialization: the `.meta` / `.cache` file layout.
//!
//! "After database construction has finished, the taxonomic meta information
//! as well as the hash table are written to the file system" (§4.1), and on
//! load "a condensed form of the hash table is used where all buckets of
//! target locations are loaded into one large contiguous array" (§4.2).
//! Figure 2 names the files `database.meta` (metadata), `database.cache0`,
//! `database.cache1`, … (one per partition). We keep exactly that layout:
//!
//! * `<name>.meta` — JSON: configuration, target table, taxonomy,
//! * `<name>.cache<i>` — binary: for every feature of partition `i`, the
//!   feature, its bucket length and the packed locations.

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use mc_kmer::{Feature, Location};
use mc_taxonomy::Taxonomy;

use crate::config::MetaCacheConfig;
use crate::database::{CondensedStore, Database, Partition, PartitionStore, TargetInfo};
use crate::error::MetaCacheError;

/// Magic bytes at the start of every `.cache` partition file.
const CACHE_MAGIC: &[u8; 8] = b"MCCACHE1";

/// The JSON metadata stored in `<name>.meta`.
#[derive(Debug, Serialize, Deserialize)]
struct MetaFile {
    config: MetaCacheConfig,
    targets: Vec<TargetInfo>,
    taxonomy: Taxonomy,
    partition_targets: Vec<Vec<u32>>,
    partition_count: usize,
}

/// Report of a completed save: file paths and sizes (the "DB size" column of
/// Table 3 is the sum of these sizes).
#[derive(Debug, Clone, Default)]
pub struct SaveReport {
    /// Paths of all written files (`.meta` first).
    pub files: Vec<PathBuf>,
    /// Total bytes written.
    pub total_bytes: u64,
}

/// Save a database into `dir` under the base name `name`.
pub fn save(
    db: &Database,
    dir: impl AsRef<Path>,
    name: &str,
) -> Result<SaveReport, MetaCacheError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let mut report = SaveReport::default();

    // Metadata file.
    let meta = MetaFile {
        config: db.config,
        targets: db.targets.clone(),
        taxonomy: db.taxonomy.clone(),
        partition_targets: db.partitions.iter().map(|p| p.targets.clone()).collect(),
        partition_count: db.partitions.len(),
    };
    let meta_path = dir.join(format!("{name}.meta"));
    let meta_json = serde_json::to_vec(&meta)
        .map_err(|e| MetaCacheError::Format(format!("metadata serialization failed: {e}")))?;
    std::fs::write(&meta_path, &meta_json)?;
    report.total_bytes += meta_json.len() as u64;
    report.files.push(meta_path);

    // One cache file per partition.
    for (i, partition) in db.partitions.iter().enumerate() {
        let path = dir.join(format!("{name}.cache{i}"));
        let file = std::fs::File::create(&path)?;
        let mut writer = BufWriter::new(file);
        writer.write_all(CACHE_MAGIC)?;
        let buckets = collect_buckets(partition);
        writer.write_all(&(buckets.len() as u64).to_le_bytes())?;
        let mut bytes_written = 16u64;
        for (feature, bucket) in buckets {
            writer.write_all(&feature.to_le_bytes())?;
            writer.write_all(&(bucket.len() as u32).to_le_bytes())?;
            bytes_written += 8;
            for loc in bucket {
                writer.write_all(&loc.pack().to_le_bytes())?;
                bytes_written += 8;
            }
        }
        writer.flush()?;
        report.total_bytes += bytes_written;
        report.files.push(path);
    }
    Ok(report)
}

/// Extract every (feature, bucket) pair of a partition, regardless of its
/// back-end table type. Shared with the sharding splitter
/// ([`crate::shard::ShardedDatabase::from_database`]).
pub(crate) fn collect_buckets(partition: &Partition) -> Vec<(Feature, Vec<Location>)> {
    match &partition.store {
        PartitionStore::Host(table) => {
            let mut out = Vec::new();
            table.for_each_bucket(|feature, bucket| out.push((feature, bucket.to_vec())));
            out.sort_by_key(|(f, _)| *f);
            out
        }
        PartitionStore::MultiBucket(table) => {
            // The multi-bucket table has no bucket iterator (slots of one key
            // are scattered); rebuild buckets by querying every distinct
            // feature found in a full scan via the FeatureStore interface.
            // To avoid adding a scan API only for serialization we recover the
            // features from the partition's stored locations through the
            // targets: this information is not tracked, so instead we walk the
            // feature space lazily — in practice the GPU pipeline serialises
            // through `to_condensed`, which snapshots insertions. Here we fall
            // back to a direct export provided by the table.
            table_export(table)
        }
        PartitionStore::Condensed(store) => {
            let mut out = Vec::new();
            store.for_each_bucket(|feature, bucket| out.push((feature, bucket.to_vec())));
            out.sort_by_key(|(f, _)| *f);
            out
        }
    }
}

/// Export every (feature, bucket) pair of a multi-bucket table by scanning
/// its slots.
fn table_export(table: &mc_warpcore::MultiBucketHashTable) -> Vec<(Feature, Vec<Location>)> {
    let mut out: std::collections::BTreeMap<Feature, Vec<Location>> = Default::default();
    table.for_each_slot(|feature, locations| {
        out.entry(feature).or_default().extend_from_slice(locations);
    });
    out.into_iter().collect()
}

/// Load a database saved with [`save`]. All partitions are loaded into the
/// condensed read-only layout of §4.2.
///
/// The database is returned behind an [`Arc`]: a loaded database is the
/// shared, read-only artefact the serving stack multiplexes over
/// (classifiers, backends and the [`crate::serving::ServingEngine`] all
/// co-own it), so ownership starts shared at the load boundary.
pub fn load(dir: impl AsRef<Path>, name: &str) -> Result<Arc<Database>, MetaCacheError> {
    let dir = dir.as_ref();
    let meta_path = dir.join(format!("{name}.meta"));
    let meta_json = std::fs::read(&meta_path)?;
    let meta: MetaFile = serde_json::from_slice(&meta_json)
        .map_err(|e| MetaCacheError::Format(format!("metadata parse error: {e}")))?;

    let mut partitions = Vec::with_capacity(meta.partition_count);
    for i in 0..meta.partition_count {
        let path = dir.join(format!("{name}.cache{i}"));
        let file = std::fs::File::open(&path)?;
        let mut reader = BufReader::new(file);
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != CACHE_MAGIC {
            return Err(MetaCacheError::Format(format!(
                "{} is not a MetaCache cache file",
                path.display()
            )));
        }
        let mut count_bytes = [0u8; 8];
        reader.read_exact(&mut count_bytes)?;
        let bucket_count = u64::from_le_bytes(count_bytes);
        let mut buckets = Vec::with_capacity(bucket_count as usize);
        for _ in 0..bucket_count {
            let mut feature_bytes = [0u8; 4];
            reader.read_exact(&mut feature_bytes)?;
            let feature = Feature::from_le_bytes(feature_bytes);
            let mut len_bytes = [0u8; 4];
            reader.read_exact(&mut len_bytes)?;
            let len = u32::from_le_bytes(len_bytes);
            let mut bucket = Vec::with_capacity(len as usize);
            for _ in 0..len {
                let mut loc_bytes = [0u8; 8];
                reader.read_exact(&mut loc_bytes)?;
                bucket.push(Location::unpack(u64::from_le_bytes(loc_bytes)));
            }
            buckets.push((feature, bucket));
        }
        partitions.push(Partition {
            store: PartitionStore::Condensed(CondensedStore::from_buckets(buckets)),
            targets: meta.partition_targets.get(i).cloned().unwrap_or_default(),
        });
    }

    let lineages = meta.taxonomy.lineage_cache();
    Ok(Arc::new(Database {
        config: meta.config,
        targets: meta.targets,
        taxonomy: meta.taxonomy,
        lineages,
        partitions,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::CpuBuilder;
    use crate::query::Classifier;
    use mc_seqio::SequenceRecord;
    use mc_taxonomy::Rank;

    fn make_seq(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                b"ACGT"[(state >> 33) as usize % 4]
            })
            .collect()
    }

    fn build_db() -> (Database, Vec<u8>) {
        let mut taxonomy = Taxonomy::with_root();
        taxonomy.add_node(10, 1, Rank::Genus, "G").unwrap();
        taxonomy.add_node(100, 10, Rank::Species, "G a").unwrap();
        taxonomy.add_node(101, 10, Rank::Species, "G b").unwrap();
        let genome_a = make_seq(12_000, 1);
        let mut builder = CpuBuilder::new(MetaCacheConfig::for_tests(), taxonomy);
        builder
            .add_target(SequenceRecord::new("a", genome_a.clone()), 100)
            .unwrap();
        builder
            .add_target(SequenceRecord::new("b", make_seq(9_000, 2)), 101)
            .unwrap();
        (builder.finish(), genome_a)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("metacache_serialize_{tag}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_creates_meta_and_cache_files() {
        let (db, _) = build_db();
        let dir = temp_dir("save");
        let report = save(&db, &dir, "testdb").unwrap();
        assert_eq!(report.files.len(), 1 + db.partition_count());
        assert!(report.files[0].ends_with("testdb.meta"));
        assert!(report.total_bytes > 1000);
        for f in &report.files {
            assert!(f.exists());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn roundtrip_preserves_classification_behaviour() {
        let (db, genome_a) = build_db();
        let dir = temp_dir("roundtrip");
        save(&db, &dir, "db").unwrap();
        let loaded = load(&dir, "db").unwrap();
        assert_eq!(loaded.target_count(), db.target_count());
        assert_eq!(loaded.total_locations(), db.total_locations());
        assert_eq!(loaded.partitions[0].store.kind(), "condensed");
        assert_eq!(loaded.taxonomy.len(), db.taxonomy.len());

        // Classifications must be identical between the in-memory (OTF) and
        // the loaded (condensed) database.
        let original = Classifier::new(&db);
        let reloaded = Classifier::new(Arc::clone(&loaded));
        for offset in [100usize, 2_000, 7_333] {
            let read = SequenceRecord::new("r", genome_a[offset..offset + 120].to_vec());
            assert_eq!(original.classify(&read), reloaded.classify(&read));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loading_missing_or_corrupt_files_errors() {
        let dir = temp_dir("corrupt");
        assert!(load(&dir, "missing").is_err());
        // Write a meta file with a partition whose cache file is garbage.
        let (db, _) = build_db();
        save(&db, &dir, "bad").unwrap();
        std::fs::write(dir.join("bad.cache0"), b"not a cache file").unwrap();
        assert!(matches!(
            load(&dir, "bad"),
            Err(MetaCacheError::Format(_)) | Err(MetaCacheError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
