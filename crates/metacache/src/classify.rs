//! The classification rule and accuracy evaluation.
//!
//! "If the difference of the highest and second highest count is above a
//! threshold, the read is labeled as belonging to the taxon of the genome
//! corresponding to the maximum count. Otherwise, all targets with counts
//! close to the maximum are considered, the lowest common ancestor of the
//! corresponding taxa is calculated and used to label the read." (§4.2)
//!
//! The evaluation helpers reproduce the precision / sensitivity metrics of
//! Table 6 at arbitrary ranks (the paper reports species and genus).

use mc_kmer::TargetId;
use mc_taxonomy::{Rank, TaxonId, NO_TAXON};

use crate::candidate::CandidateList;
use crate::config::MetaCacheConfig;
use crate::database::Database;

/// The classification of one read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Classification {
    /// The assigned taxon ([`NO_TAXON`] if the read could not be classified).
    pub taxon: TaxonId,
    /// Rank of the assigned taxon, if any.
    pub rank: Option<Rank>,
    /// The best candidate's target (the mapping location MetaCache can
    /// report for downstream analysis), if any.
    pub best_target: Option<TargetId>,
    /// Hit count of the best candidate.
    pub best_hits: u32,
}

impl Classification {
    /// An unclassified result.
    pub fn unclassified() -> Self {
        Self {
            taxon: NO_TAXON,
            rank: None,
            best_target: None,
            best_hits: 0,
        }
    }

    /// Whether the read received a taxon.
    pub fn is_classified(&self) -> bool {
        self.taxon != NO_TAXON
    }
}

/// Apply the classification rule to a read's candidate list.
pub fn classify_candidates(
    db: &Database,
    config: &MetaCacheConfig,
    candidates: &CandidateList,
) -> Classification {
    let Some(best) = candidates.best() else {
        return Classification::unclassified();
    };
    if best.hits < config.min_hits {
        return Classification::unclassified();
    }
    let best_taxon = db.taxon_of_target(best.target);
    let decided_taxon = match candidates.second() {
        None => best_taxon,
        Some(second) if best.hits.saturating_sub(second.hits) >= config.hit_diff_threshold => {
            best_taxon
        }
        Some(_) => {
            // Ambiguous: take the LCA of all candidates whose hit count is
            // within `lca_hit_window` of the maximum.
            let near_best = candidates
                .as_slice()
                .iter()
                .filter(|c| best.hits - c.hits <= config.lca_hit_window)
                .map(|c| db.taxon_of_target(c.target));
            db.lineages.lca_of_all(near_best)
        }
    };
    if decided_taxon == NO_TAXON {
        return Classification::unclassified();
    }
    Classification {
        taxon: decided_taxon,
        rank: db.lineages.rank_of(decided_taxon),
        best_target: Some(best.target),
        best_hits: best.hits,
    }
}

/// Aggregate precision / sensitivity of a set of classifications at one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankAccuracy {
    /// Reads whose assignment, projected to the rank, matches the truth.
    pub correct: usize,
    /// Reads assigned at (or below) the rank whose projection differs from
    /// the truth.
    pub wrong: usize,
    /// Reads not assigned at the rank (unclassified or assigned above it).
    pub unassigned: usize,
}

impl RankAccuracy {
    /// Precision: correct / (correct + wrong).
    pub fn precision(&self) -> f64 {
        let assigned = self.correct + self.wrong;
        if assigned == 0 {
            0.0
        } else {
            self.correct as f64 / assigned as f64
        }
    }

    /// Sensitivity (recall): correct / all reads.
    pub fn sensitivity(&self) -> f64 {
        let total = self.correct + self.wrong + self.unassigned;
        if total == 0 {
            0.0
        } else {
            self.correct as f64 / total as f64
        }
    }
}

/// Evaluation of classifications against per-read ground truth at the ranks
/// reported in Table 6.
#[derive(Debug, Clone, Default)]
pub struct ClassificationEvaluation {
    /// Accuracy at species level.
    pub species: RankAccuracy,
    /// Accuracy at genus level.
    pub genus: RankAccuracy,
    /// Number of evaluated reads.
    pub total_reads: usize,
    /// Number of classified reads (any rank).
    pub classified_reads: usize,
}

impl ClassificationEvaluation {
    /// Evaluate `classifications` against `truth` (the true species-level
    /// taxon of each read) using the database's lineage cache.
    pub fn evaluate(db: &Database, classifications: &[Classification], truth: &[TaxonId]) -> Self {
        assert_eq!(
            classifications.len(),
            truth.len(),
            "one truth label per classification required"
        );
        let mut eval = Self {
            total_reads: truth.len(),
            ..Default::default()
        };
        for (c, &true_taxon) in classifications.iter().zip(truth) {
            if c.is_classified() {
                eval.classified_reads += 1;
            }
            for (rank, acc) in [
                (Rank::Species, &mut eval.species),
                (Rank::Genus, &mut eval.genus),
            ] {
                let truth_at_rank = db.lineages.ancestor_at(true_taxon, rank);
                let assigned_at_rank = if c.is_classified() {
                    db.lineages.ancestor_at(c.taxon, rank)
                } else {
                    NO_TAXON
                };
                if assigned_at_rank == NO_TAXON || truth_at_rank == NO_TAXON {
                    acc.unassigned += 1;
                } else if assigned_at_rank == truth_at_rank {
                    acc.correct += 1;
                } else {
                    acc.wrong += 1;
                }
            }
        }
        eval
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::Candidate;
    use crate::database::{Partition, PartitionStore, TargetInfo};
    use mc_taxonomy::Taxonomy;
    use mc_warpcore::HostHashTable;

    /// Database with two genera, three species, four targets.
    fn db() -> Database {
        let mut taxonomy = Taxonomy::with_root();
        taxonomy.add_node(10, 1, Rank::Genus, "GenusA").unwrap();
        taxonomy.add_node(11, 1, Rank::Genus, "GenusB").unwrap();
        taxonomy.add_node(100, 10, Rank::Species, "A one").unwrap();
        taxonomy.add_node(101, 10, Rank::Species, "A two").unwrap();
        taxonomy.add_node(110, 11, Rank::Species, "B one").unwrap();
        let lineages = taxonomy.lineage_cache();
        let targets = vec![(0u32, 100u32), (1, 100), (2, 101), (3, 110)]
            .into_iter()
            .map(|(id, taxon)| TargetInfo {
                id,
                name: format!("t{id}"),
                taxon,
                length: 1000,
                num_windows: 9,
            })
            .collect();
        Database {
            config: MetaCacheConfig::default(),
            targets,
            taxonomy,
            lineages,
            partitions: vec![Partition {
                store: PartitionStore::Host(HostHashTable::new(Default::default())),
                targets: vec![0, 1, 2, 3],
            }],
        }
    }

    fn candidates(pairs: &[(TargetId, u32)]) -> CandidateList {
        let mut list = CandidateList::new(4);
        for &(target, hits) in pairs {
            list.insert(Candidate {
                target,
                window_begin: 0,
                window_end: 1,
                hits,
            });
        }
        list
    }

    #[test]
    fn clear_winner_gets_its_taxon() {
        let db = db();
        let cfg = MetaCacheConfig::default();
        let c = classify_candidates(&db, &cfg, &candidates(&[(0, 20), (3, 5)]));
        assert_eq!(c.taxon, 100);
        assert_eq!(c.rank, Some(Rank::Species));
        assert_eq!(c.best_target, Some(0));
        assert_eq!(c.best_hits, 20);
    }

    #[test]
    fn ambiguous_same_genus_falls_back_to_genus_lca() {
        let db = db();
        let cfg = MetaCacheConfig::default();
        // Targets 0 (species 100) and 2 (species 101) share genus 10.
        let c = classify_candidates(&db, &cfg, &candidates(&[(0, 10), (2, 9)]));
        assert_eq!(c.taxon, 10);
        assert_eq!(c.rank, Some(Rank::Genus));
    }

    #[test]
    fn ambiguous_cross_genus_goes_to_root() {
        let db = db();
        let cfg = MetaCacheConfig::default();
        let c = classify_candidates(&db, &cfg, &candidates(&[(0, 10), (3, 10)]));
        assert_eq!(c.taxon, 1, "cross-genus ambiguity resolves to the root");
        assert_eq!(c.rank, Some(Rank::Root));
    }

    #[test]
    fn ambiguous_same_species_targets_stay_species() {
        let db = db();
        let cfg = MetaCacheConfig::default();
        // Targets 0 and 1 both belong to species 100.
        let c = classify_candidates(&db, &cfg, &candidates(&[(0, 10), (1, 10)]));
        assert_eq!(c.taxon, 100);
    }

    #[test]
    fn weak_evidence_is_unclassified() {
        let db = db();
        let cfg = MetaCacheConfig::default(); // min_hits = 4
        let c = classify_candidates(&db, &cfg, &candidates(&[(0, 3)]));
        assert!(!c.is_classified());
        let none = classify_candidates(&db, &cfg, &CandidateList::new(4));
        assert!(!none.is_classified());
    }

    #[test]
    fn evaluation_counts_species_and_genus_levels() {
        let db = db();
        let classifications = vec![
            // Correct species.
            Classification {
                taxon: 100,
                rank: Some(Rank::Species),
                best_target: Some(0),
                best_hits: 10,
            },
            // Wrong species, same genus -> wrong at species, correct at genus.
            Classification {
                taxon: 101,
                rank: Some(Rank::Species),
                best_target: Some(2),
                best_hits: 10,
            },
            // Genus-level assignment -> unassigned at species, correct at genus.
            Classification {
                taxon: 10,
                rank: Some(Rank::Genus),
                best_target: None,
                best_hits: 8,
            },
            // Unclassified.
            Classification::unclassified(),
        ];
        let truth = vec![100, 100, 100, 110];
        let eval = ClassificationEvaluation::evaluate(&db, &classifications, &truth);
        assert_eq!(eval.total_reads, 4);
        assert_eq!(eval.classified_reads, 3);
        assert_eq!(eval.species.correct, 1);
        assert_eq!(eval.species.wrong, 1);
        assert_eq!(eval.species.unassigned, 2);
        assert_eq!(eval.genus.correct, 3);
        assert_eq!(eval.genus.wrong, 0);
        assert_eq!(eval.genus.unassigned, 1);
        assert!((eval.species.precision() - 0.5).abs() < 1e-12);
        assert!((eval.species.sensitivity() - 0.25).abs() < 1e-12);
        assert!((eval.genus.precision() - 1.0).abs() < 1e-12);
        assert!((eval.genus.sensitivity() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_evaluation_does_not_divide_by_zero() {
        let acc = RankAccuracy::default();
        assert_eq!(acc.precision(), 0.0);
        assert_eq!(acc.sensitivity(), 0.0);
    }
}
