//! Execution backends: one classification interface over the host and GPU
//! paths.
//!
//! The streaming pipeline ([`crate::pipeline::StreamingClassifier`]) and the
//! serving engine ([`crate::serving::ServingEngine`]) are written once
//! against [`Backend`]: a backend owns (or borrows) the database plus any
//! execution substrate and can mint [`BackendWorker`]s — the per-thread
//! execution contexts that hold whatever mutable state the path needs
//! ([`QueryScratch`] for the host path, the round-robin device cursor for the
//! simulated GPU path). Workers are long-lived: a serving worker thread
//! creates one worker and reuses it for every batch it ever classifies, so
//! scratch buffers stay warm across requests.
//!
//! Both backends produce identical classifications for the same database
//! (asserted by `tests/cross_backend.rs` and `tests/serving.rs`); they differ
//! only in scheduling and in the simulated cost model.

use std::ops::Deref;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mc_gpu_sim::MultiGpuSystem;
use mc_seqio::SequenceRecord;

use crate::classify::Classification;
use crate::database::Database;
use crate::gpu::GpuClassifier;
use crate::query::{Classifier, QueryScratch};

/// A classification execution path: the host rayon/scratch path or the
/// simulated multi-GPU path, behind one interface.
///
/// Backends are shared (`&self`) across worker threads; all per-thread
/// mutable state lives in the [`BackendWorker`]s they mint. A backend is
/// generic over how it holds the database (`Deref<Target = Database>`), so
/// the same type serves borrowed one-shot pipelines and `Arc`-owning
/// long-lived engines.
pub trait Backend: Send + Sync {
    /// The database this backend classifies against.
    fn database(&self) -> &Database;

    /// Short label used in reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Mint a fresh worker. Called once per worker thread; the worker then
    /// persists for that thread's lifetime, reusing its scratch state across
    /// every batch. (Also called to replace a worker whose state may have
    /// been poisoned by a panic.)
    fn worker(&self) -> Box<dyn BackendWorker + '_>;
}

/// A per-thread execution context of a [`Backend`]: owns the mutable scratch
/// state one worker thread needs and classifies batches with it.
pub trait BackendWorker: Send {
    /// Classify `records` in order, appending one [`Classification`] per
    /// record to `out`. Must be bit-identical to
    /// [`Classifier::classify_batch`] on the same records.
    fn classify_batch_into(&mut self, records: &[SequenceRecord], out: &mut Vec<Classification>);
}

/// The host execution path: per-worker [`QueryScratch`] over the rayon-style
/// zero-allocation hot path of [`crate::query`].
pub struct HostBackend<D = Arc<Database>>
where
    D: Deref<Target = Database> + Clone + Send + Sync,
{
    db: D,
}

impl<D> HostBackend<D>
where
    D: Deref<Target = Database> + Clone + Send + Sync,
{
    /// Create a host backend over a borrowed or owned database handle.
    pub fn new(db: D) -> Self {
        Self { db }
    }
}

impl<D> Backend for HostBackend<D>
where
    D: Deref<Target = Database> + Clone + Send + Sync,
{
    fn database(&self) -> &Database {
        &self.db
    }

    fn name(&self) -> &'static str {
        "host"
    }

    fn worker(&self) -> Box<dyn BackendWorker + '_> {
        Box::new(HostWorker {
            classifier: Classifier::new(self.db.clone()),
            scratch: QueryScratch::new(),
        })
    }
}

struct HostWorker<D>
where
    D: Deref<Target = Database>,
{
    classifier: Classifier<D>,
    scratch: QueryScratch,
}

impl<D> BackendWorker for HostWorker<D>
where
    D: Deref<Target = Database> + Send + Sync,
{
    fn classify_batch_into(&mut self, records: &[SequenceRecord], out: &mut Vec<Classification>) {
        out.extend(
            records
                .iter()
                .map(|r| self.classifier.classify_with(r, &mut self.scratch)),
        );
    }
}

/// The simulated multi-GPU execution path: batches are issued round-robin
/// across the system's devices (one stream per device, modelling the paper's
/// per-GPU copy/compute overlap), sharing one [`GpuClassifier`] whose
/// partitioned database is resident across all devices.
pub struct GpuBackend<D = Arc<Database>, S = Arc<MultiGpuSystem>>
where
    D: Deref<Target = Database> + Send + Sync,
    S: Deref<Target = MultiGpuSystem> + Send + Sync,
{
    classifier: GpuClassifier<D, S>,
    next_issue: AtomicUsize,
}

impl<D, S> GpuBackend<D, S>
where
    D: Deref<Target = Database> + Send + Sync,
    S: Deref<Target = MultiGpuSystem> + Send + Sync,
{
    /// Create a GPU backend over a database partitioned across the devices
    /// of `system`.
    pub fn new(db: D, system: S) -> Self {
        Self {
            classifier: GpuClassifier::new(db, system),
            next_issue: AtomicUsize::new(0),
        }
    }

    /// The underlying classifier (per-stage breakdown access).
    pub fn classifier(&self) -> &GpuClassifier<D, S> {
        &self.classifier
    }
}

impl<D, S> Backend for GpuBackend<D, S>
where
    D: Deref<Target = Database> + Send + Sync,
    S: Deref<Target = MultiGpuSystem> + Send + Sync,
{
    fn database(&self) -> &Database {
        self.classifier.database()
    }

    fn name(&self) -> &'static str {
        "gpu-sim"
    }

    fn worker(&self) -> Box<dyn BackendWorker + '_> {
        Box::new(GpuWorker { backend: self })
    }
}

struct GpuWorker<'b, D, S>
where
    D: Deref<Target = Database> + Send + Sync,
    S: Deref<Target = MultiGpuSystem> + Send + Sync,
{
    backend: &'b GpuBackend<D, S>,
}

impl<D, S> BackendWorker for GpuWorker<'_, D, S>
where
    D: Deref<Target = Database> + Send + Sync,
    S: Deref<Target = MultiGpuSystem> + Send + Sync,
{
    fn classify_batch_into(&mut self, records: &[SequenceRecord], out: &mut Vec<Classification>) {
        // One shared cursor across all workers: successive batches rotate
        // over the devices, whichever worker issues them.
        let issue = self.backend.next_issue.fetch_add(1, Ordering::Relaxed);
        let (classifications, _) = self.backend.classifier.classify_batch_on(records, issue);
        out.extend(classifications);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::CpuBuilder;
    use crate::config::MetaCacheConfig;
    use mc_taxonomy::{Rank, Taxonomy};

    fn make_seq(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                b"ACGT"[(state >> 33) as usize % 4]
            })
            .collect()
    }

    fn small_db() -> (Database, Vec<SequenceRecord>) {
        let mut taxonomy = Taxonomy::with_root();
        taxonomy.add_node(100, 1, Rank::Species, "a").unwrap();
        taxonomy.add_node(101, 1, Rank::Species, "b").unwrap();
        let genome_a = make_seq(12_000, 1);
        let genome_b = make_seq(12_000, 2);
        let mut builder = CpuBuilder::new(MetaCacheConfig::for_tests(), taxonomy);
        builder
            .add_target(SequenceRecord::new("a", genome_a.clone()), 100)
            .unwrap();
        builder
            .add_target(SequenceRecord::new("b", genome_b.clone()), 101)
            .unwrap();
        let reads = (0..30)
            .map(|i| {
                let g = if i % 2 == 0 { &genome_a } else { &genome_b };
                SequenceRecord::new(
                    format!("r{i}"),
                    g[100 + i * 37..100 + i * 37 + 120].to_vec(),
                )
            })
            .collect();
        (builder.finish(), reads)
    }

    #[test]
    fn host_backend_worker_matches_classify_batch() {
        let (db, reads) = small_db();
        let expected = Classifier::new(&db).classify_batch(&reads);
        let backend = HostBackend::new(&db);
        let mut worker = backend.worker();
        let mut out = Vec::new();
        // Two batches through one persistent worker (scratch reuse).
        worker.classify_batch_into(&reads[..11], &mut out);
        worker.classify_batch_into(&reads[11..], &mut out);
        assert_eq!(out, expected);
        assert_eq!(backend.name(), "host");
        assert_eq!(backend.database().target_count(), 2);
    }

    #[test]
    fn gpu_backend_rotates_issue_devices_and_matches_host() {
        let (db, reads) = small_db();
        let expected = Classifier::new(&db).classify_batch(&reads);
        let system = MultiGpuSystem::dgx1(2);
        let backend = GpuBackend::new(&db, &system);
        let mut out = Vec::new();
        let mut worker = backend.worker();
        for chunk in reads.chunks(7) {
            worker.classify_batch_into(chunk, &mut out);
        }
        assert_eq!(out, expected);
        // The cursor advanced once per batch.
        assert_eq!(
            backend.next_issue.load(Ordering::Relaxed),
            reads.chunks(7).count()
        );
        assert_eq!(backend.name(), "gpu-sim");
    }

    #[test]
    fn arc_backends_are_static() {
        // An Arc-owning backend can outlive the scope that built the
        // database — the property the serving engine relies on.
        let (db, reads) = small_db();
        let expected = Classifier::new(&db).classify_batch(&reads);
        let db = Arc::new(db);
        let backend: Box<dyn Backend> = Box::new(HostBackend::new(Arc::clone(&db)));
        let handle = std::thread::spawn({
            let db = Arc::clone(&db);
            move || {
                let backend = HostBackend::new(db);
                let mut out = Vec::new();
                backend.worker().classify_batch_into(&reads, &mut out);
                out
            }
        });
        assert_eq!(handle.join().unwrap(), expected);
        assert_eq!(backend.name(), "host");
    }
}
