//! Minhash sketching.
//!
//! A window's sketch is the set of the `s` smallest *distinct* hash values of
//! its canonical k-mers (§4.1). Reads are sketched the same way after being
//! split into windows of the database's window length (§4.2). The host
//! implementation here is the reference; the warp-kernel version in
//! [`crate::gpu`] produces identical sketches (asserted by tests) while
//! modelling the device execution of §5.3.

use mc_kmer::{hash64, CanonicalKmerIter, Feature};
use mc_kmer::window::{num_windows, window_range, WindowParams};

use crate::config::MetaCacheConfig;

/// A minhash sketch: up to `s` features, sorted ascending by hash value.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Sketch {
    features: Vec<Feature>,
}

impl Sketch {
    /// The sketch features (ascending, distinct).
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// Number of features in the sketch.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the sketch is empty (window had no valid k-mer).
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }
}

/// The sketch of one read (or read pair): the sketches of all its windows.
#[derive(Debug, Clone, Default)]
pub struct ReadSketch {
    /// One sketch per read window (mate windows appended after mate-1 windows).
    pub windows: Vec<Sketch>,
    /// Total length (both mates) of the read, used to size the sliding window
    /// during candidate generation.
    pub total_len: usize,
}

impl ReadSketch {
    /// Total number of features over all windows.
    pub fn feature_count(&self) -> usize {
        self.windows.iter().map(|s| s.len()).sum()
    }

    /// Iterate over all features of all windows.
    pub fn all_features(&self) -> impl Iterator<Item = Feature> + '_ {
        self.windows.iter().flat_map(|s| s.features().iter().copied())
    }
}

/// Sketcher bound to a configuration.
#[derive(Debug, Clone, Copy)]
pub struct Sketcher {
    params: WindowParams,
    sketch_size: usize,
}

impl Sketcher {
    /// Create a sketcher from a validated configuration.
    pub fn new(config: &MetaCacheConfig) -> crate::Result<Self> {
        Ok(Self {
            params: config.window_params()?,
            sketch_size: config.sketch_size,
        })
    }

    /// The window parameters used by this sketcher.
    pub fn window_params(&self) -> WindowParams {
        self.params
    }

    /// The sketch size `s`.
    pub fn sketch_size(&self) -> usize {
        self.sketch_size
    }

    /// Sketch one window (an arbitrary subsequence): hash all canonical
    /// k-mers with `h1` and keep the `s` smallest distinct values, truncated
    /// to 32-bit features.
    pub fn sketch_window(&self, window: &[u8]) -> Sketch {
        let mut hashes: Vec<u64> = CanonicalKmerIter::new(window, self.params.kmer())
            .map(|k| hash64(k.value()))
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        hashes.truncate(self.sketch_size);
        Sketch {
            features: hashes.into_iter().map(|h| (h >> 32) as Feature).collect(),
        }
    }

    /// Number of windows a reference sequence of `len` bases produces.
    pub fn num_windows(&self, len: usize) -> u32 {
        num_windows(len, self.params)
    }

    /// Sketch every window of a reference sequence; returns `(window_id,
    /// sketch)` pairs for non-empty sketches.
    pub fn sketch_reference(&self, sequence: &[u8]) -> Vec<(u32, Sketch)> {
        let n = self.num_windows(sequence.len());
        (0..n)
            .filter_map(|w| {
                let (start, end) = window_range(w, sequence.len(), self.params);
                let sketch = self.sketch_window(&sequence[start..end]);
                if sketch.is_empty() {
                    None
                } else {
                    Some((w, sketch))
                }
            })
            .collect()
    }

    /// Split a read into windows of the database window length and sketch
    /// each window. Short reads (the common case: read length ≤ window
    /// length) produce a single window.
    pub fn sketch_read(&self, sequence: &[u8]) -> Vec<Sketch> {
        if sequence.len() < self.params.k() as usize {
            return Vec::new();
        }
        let window_len = self.params.window_len() as usize;
        if sequence.len() <= window_len {
            let s = self.sketch_window(sequence);
            return if s.is_empty() { Vec::new() } else { vec![s] };
        }
        let n = self.num_windows(sequence.len());
        (0..n)
            .filter_map(|w| {
                let (start, end) = window_range(w, sequence.len(), self.params);
                let s = self.sketch_window(&sequence[start..end]);
                if s.is_empty() {
                    None
                } else {
                    Some(s)
                }
            })
            .collect()
    }

    /// Sketch a read and (if present) its mate into one [`ReadSketch`].
    pub fn sketch_record(&self, record: &mc_seqio::SequenceRecord) -> ReadSketch {
        let mut windows = self.sketch_read(&record.sequence);
        if let Some(mate) = &record.mate {
            windows.extend(self.sketch_read(&mate.sequence));
        }
        ReadSketch {
            windows,
            total_len: record.total_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_seqio::SequenceRecord;

    fn make_seq(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                b"ACGT"[(state >> 33) as usize % 4]
            })
            .collect()
    }

    fn sketcher() -> Sketcher {
        Sketcher::new(&MetaCacheConfig::default()).unwrap()
    }

    #[test]
    fn sketch_has_at_most_s_distinct_sorted_features() {
        let s = sketcher();
        let window = make_seq(127, 1);
        let sketch = s.sketch_window(&window);
        assert!(sketch.len() <= 16);
        assert!(sketch.len() > 0);
        let f = sketch.features();
        assert!(f.windows(2).all(|p| p[0] < p[1]), "features must be sorted distinct");
    }

    #[test]
    fn sketch_is_smallest_hashes() {
        let s = sketcher();
        let window = make_seq(127, 2);
        let sketch = s.sketch_window(&window);
        // Recompute all hashes; the sketch must equal the s smallest distinct,
        // truncated to 32 bits.
        let mut hashes: Vec<u64> = CanonicalKmerIter::new(&window, s.window_params().kmer())
            .map(|k| hash64(k.value()))
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        let expected: Vec<Feature> = hashes.iter().take(16).map(|h| (h >> 32) as Feature).collect();
        assert_eq!(sketch.features(), expected.as_slice());
    }

    #[test]
    fn identical_windows_share_sketch_mutated_windows_share_some_features() {
        let s = sketcher();
        let a = make_seq(127, 3);
        let mut b = a.clone();
        // Mutate 4 bases.
        for i in [10usize, 40, 80, 120] {
            b[i] = if b[i] == b'A' { b'C' } else { b'A' };
        }
        let sa = s.sketch_window(&a);
        let sb = s.sketch_window(&b);
        assert_eq!(sa, s.sketch_window(&a));
        let shared = sa
            .features()
            .iter()
            .filter(|f| sb.features().contains(f))
            .count();
        assert!(shared >= 4, "mutated window shares only {shared} features");
        assert!(shared < 16, "mutation should change some features");
    }

    #[test]
    fn window_shorter_than_k_yields_empty() {
        let s = sketcher();
        assert!(s.sketch_window(b"ACGTACGT").is_empty());
        assert!(s.sketch_read(b"ACGTACGT").is_empty());
    }

    #[test]
    fn all_n_window_yields_empty_sketch() {
        let s = sketcher();
        let window = vec![b'N'; 127];
        assert!(s.sketch_window(&window).is_empty());
    }

    #[test]
    fn reference_sketching_covers_all_windows() {
        let s = sketcher();
        let genome = make_seq(10_000, 7);
        let sketches = s.sketch_reference(&genome);
        let expected_windows = s.num_windows(genome.len());
        assert_eq!(sketches.len(), expected_windows as usize);
        assert_eq!(sketches[0].0, 0);
        assert_eq!(sketches.last().unwrap().0, expected_windows - 1);
    }

    #[test]
    fn short_read_is_single_window_long_read_splits() {
        let s = sketcher();
        let short = make_seq(100, 9);
        assert_eq!(s.sketch_read(&short).len(), 1);
        let long = make_seq(250, 9);
        // 250 bases at stride 112 -> 3 windows (paper: MiSeq reads split into
        // two or more windows).
        assert!(s.sketch_read(&long).len() >= 2);
    }

    #[test]
    fn paired_record_combines_both_mates() {
        let s = sketcher();
        let r = SequenceRecord::new("r/1", make_seq(101, 11))
            .with_mate(SequenceRecord::new("r/2", make_seq(101, 12)));
        let sketch = s.sketch_record(&r);
        assert_eq!(sketch.windows.len(), 2);
        assert_eq!(sketch.total_len, 202);
        assert!(sketch.feature_count() > 16);
        assert_eq!(sketch.all_features().count(), sketch.feature_count());
    }

    #[test]
    fn read_and_its_source_window_share_features() {
        // The core minhash property the classifier relies on: a read drawn
        // from a reference window shares most sketch features with it.
        let s = sketcher();
        let genome = make_seq(5_000, 21);
        let read = &genome[1_120..1_220]; // aligned with window 10 (stride 112)
        let read_sketch = s.sketch_read(read);
        assert_eq!(read_sketch.len(), 1);
        let ref_sketches = s.sketch_reference(&genome);
        let best_overlap = ref_sketches
            .iter()
            .map(|(_, sk)| {
                read_sketch[0]
                    .features()
                    .iter()
                    .filter(|f| sk.features().contains(f))
                    .count()
            })
            .max()
            .unwrap();
        assert!(best_overlap >= 8, "best window overlap only {best_overlap}/16");
    }
}
