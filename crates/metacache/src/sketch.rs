//! Minhash sketching.
//!
//! A window's sketch is the set of the `s` smallest *distinct* hash values of
//! its canonical k-mers (§4.1). Reads are sketched the same way after being
//! split into windows of the database's window length (§4.2). The host
//! implementation here is the reference; the warp-kernel version in
//! [`crate::gpu`] produces identical sketches (asserted by tests) while
//! modelling the device execution of §5.3.
//!
//! # The zero-allocation hot path
//!
//! The paper's GPU pipeline never touches the heap per read: hashes live in
//! warp registers and sketches are written into pre-allocated device buffers
//! (§5.2–§5.3). The host path mirrors that with a two-part API:
//!
//! * [`SketchScratch`] — caller-owned scratch state holding the bounded
//!   top-`s` selection buffer (a small sorted insertion buffer with on-the-fly
//!   dedup, `s ≤ 64` in practice) plus a per-window feature buffer. Creating
//!   one costs a couple of allocations; *reusing* one costs none.
//! * [`Sketcher::sketch_window_into`] / [`Sketcher::sketch_record_into`] /
//!   [`Sketcher::for_each_window_sketch`] — sketch into caller-owned buffers.
//!   After warm-up these perform **zero heap allocations**: the selector
//!   rejects most hashes with a single branch (a hash ≥ the current `s`-th
//!   smallest cannot enter the sketch) instead of collecting and sorting all
//!   ~`w − k + 1` hashes per window.
//!
//! The original collect→sort→dedup→truncate formulation is retained as
//! [`Sketcher::sketch_window_baseline`]: it is the reference oracle the
//! property tests compare against bit-for-bit, and the baseline the
//! `sketch` / `query_throughput` criterion benches measure speedups over.
//! The convenience APIs ([`Sketcher::sketch_window`], `sketch_record`, …)
//! allocate fresh buffers per call and are kept for tests, examples and
//! one-off use.

use mc_kmer::window::{num_windows, window_range, WindowParams};
use mc_kmer::{hash64, Feature};

use crate::config::MetaCacheConfig;

/// A minhash sketch: up to `s` features, sorted ascending by hash value.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Sketch {
    features: Vec<Feature>,
}

impl Sketch {
    /// The sketch features (ascending, distinct).
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// Number of features in the sketch.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the sketch is empty (window had no valid k-mer).
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }
}

/// The sketch of one read (or read pair): the sketches of all its windows.
#[derive(Debug, Clone, Default)]
pub struct ReadSketch {
    /// One sketch per read window (mate windows appended after mate-1 windows).
    pub windows: Vec<Sketch>,
    /// Total length (both mates) of the read, used to size the sliding window
    /// during candidate generation.
    pub total_len: usize,
}

impl ReadSketch {
    /// Total number of features over all windows.
    pub fn feature_count(&self) -> usize {
        self.windows.iter().map(|s| s.len()).sum()
    }

    /// Iterate over all features of all windows.
    pub fn all_features(&self) -> impl Iterator<Item = Feature> + '_ {
        self.windows
            .iter()
            .flat_map(|s| s.features().iter().copied())
    }
}

/// Reusable scratch state for allocation-free sketching.
///
/// Holds the bounded top-`s` selection buffer and a per-window feature
/// buffer. One scratch serves any number of sequential sketching calls (its
/// buffers are cleared, not reallocated, between windows); create one per
/// worker thread and reuse it for every read — `rayon`'s `map_init` in
/// [`crate::query::Classifier::classify_batch`] does exactly that via
/// [`crate::query::QueryScratch`].
#[derive(Debug, Clone, Default)]
pub struct SketchScratch {
    /// The current ≤ `s` smallest distinct hashes, sorted ascending.
    hashes: Vec<u64>,
    /// Selection bound `s` of the sketch in progress.
    sketch_size: usize,
    /// Fast-reject bound: the current `s`-th smallest hash once the selector
    /// is full, `u64::MAX` before that. Any offered hash strictly above it is
    /// rejected with a single comparison.
    threshold: u64,
    /// Per-window feature buffer used by [`Sketcher::for_each_window_sketch`].
    features: Vec<Feature>,
}

impl SketchScratch {
    /// Create an empty scratch. Buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a scratch pre-sized for sketches of `sketch_size` features.
    pub fn with_capacity(sketch_size: usize) -> Self {
        Self {
            hashes: Vec::with_capacity(sketch_size),
            sketch_size: 0,
            threshold: u64::MAX,
            features: Vec::with_capacity(sketch_size),
        }
    }

    /// Start selecting the `s` smallest distinct hashes of a new window.
    #[inline]
    fn begin(&mut self, sketch_size: usize) {
        debug_assert!(sketch_size > 0, "validated by MetaCacheConfig");
        self.sketch_size = sketch_size;
        self.threshold = u64::MAX;
        self.hashes.clear();
        // `reserve` is relative to the (now zero) length and a no-op when the
        // capacity already suffices, so this never reallocates in steady state.
        self.hashes.reserve(sketch_size);
    }

    /// Offer one hash to the bounded selector.
    ///
    /// The common case — a hash that cannot enter a full sketch — is rejected
    /// with a single comparison against the threshold (the current `s`-th
    /// smallest hash; `u64::MAX` while the selector is filling, so nothing is
    /// wrongly rejected). Otherwise a binary search finds the insertion point
    /// (or detects a duplicate) and the ≤ `s`-element buffer shifts at most
    /// `s − 1` slots.
    #[inline]
    fn offer(&mut self, hash: u64) {
        if hash > self.threshold {
            return;
        }
        match self.hashes.binary_search(&hash) {
            Ok(_) => {} // duplicate hash: sketches keep distinct values only
            Err(pos) => {
                if self.hashes.len() == self.sketch_size {
                    self.hashes.pop();
                }
                self.hashes.insert(pos, hash);
                if self.hashes.len() == self.sketch_size {
                    self.threshold = *self.hashes.last().expect("selector is full");
                }
            }
        }
    }

    /// Append the selected sketch (hashes truncated to 32-bit features, in
    /// ascending hash order) to `out`; returns the number appended.
    #[inline]
    fn emit_into(&self, out: &mut Vec<Feature>) -> usize {
        out.extend(self.hashes.iter().map(|&h| (h >> 32) as Feature));
        self.hashes.len()
    }
}

/// Sketcher bound to a configuration.
#[derive(Debug, Clone, Copy)]
pub struct Sketcher {
    params: WindowParams,
    sketch_size: usize,
}

impl Sketcher {
    /// Create a sketcher from a validated configuration.
    pub fn new(config: &MetaCacheConfig) -> crate::Result<Self> {
        Ok(Self {
            params: config.window_params()?,
            sketch_size: config.sketch_size,
        })
    }

    /// The window parameters used by this sketcher.
    pub fn window_params(&self) -> WindowParams {
        self.params
    }

    /// The sketch size `s`.
    pub fn sketch_size(&self) -> usize {
        self.sketch_size
    }

    /// Sketch one window into a caller-owned buffer — the allocation-free hot
    /// path. Appends the window's features (ascending, distinct) to `out` and
    /// returns the number appended. Reuses `scratch`; after warm-up this
    /// performs no heap allocation.
    pub fn sketch_window_into(
        &self,
        window: &[u8],
        scratch: &mut SketchScratch,
        out: &mut Vec<Feature>,
    ) -> usize {
        scratch.begin(self.sketch_size);
        mc_kmer::for_each_canonical_kmer(window, self.params.kmer(), |_, packed| {
            scratch.offer(hash64(packed));
        });
        scratch.emit_into(out)
    }

    /// Reference oracle: sketch one window with the seed implementation,
    /// retained verbatim — per-k-mer canonicalisation (`O(k)` reverse
    /// complement per position) followed by collect → sort → dedup →
    /// truncate (two heap allocations and an `O(n log n)` sort per window).
    ///
    /// Retained for three purposes: the property tests assert the bounded
    /// selector is bit-identical to it, the `sketch` / `query_throughput`
    /// benches measure the hot path's speedup against it, and it documents
    /// the §4.1 definition directly.
    pub fn sketch_window_baseline(&self, window: &[u8]) -> Sketch {
        let mut hashes: Vec<u64> = mc_kmer::KmerIter::new(window, self.params.kmer())
            .map(|k| hash64(k.canonical().value()))
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        hashes.truncate(self.sketch_size);
        Sketch {
            features: hashes.into_iter().map(|h| (h >> 32) as Feature).collect(),
        }
    }

    /// Sketch one window (an arbitrary subsequence): hash all canonical
    /// k-mers with `h1` and keep the `s` smallest distinct values, truncated
    /// to 32-bit features. Convenience form of [`Self::sketch_window_into`]
    /// that allocates its own buffers.
    pub fn sketch_window(&self, window: &[u8]) -> Sketch {
        let mut scratch = SketchScratch::with_capacity(self.sketch_size);
        let mut features = Vec::with_capacity(self.sketch_size);
        self.sketch_window_into(window, &mut scratch, &mut features);
        Sketch { features }
    }

    /// Number of windows a reference sequence of `len` bases produces.
    pub fn num_windows(&self, len: usize) -> u32 {
        num_windows(len, self.params)
    }

    /// Visit every non-empty window sketch of a reference sequence: calls
    /// `f(window_id, features)` per window, reusing `scratch` so the whole
    /// reference is sketched without per-window allocation. Returning
    /// [`std::ops::ControlFlow::Break`] from the visitor stops the walk early (e.g. the
    /// build path aborts on a fatal table error without sketching the rest of
    /// the genome). This is the build path of [`crate::build::CpuBuilder`].
    pub fn for_each_window_sketch(
        &self,
        sequence: &[u8],
        scratch: &mut SketchScratch,
        mut f: impl FnMut(u32, &[Feature]) -> std::ops::ControlFlow<()>,
    ) {
        let mut features = std::mem::take(&mut scratch.features);
        for w in 0..self.num_windows(sequence.len()) {
            let (start, end) = window_range(w, sequence.len(), self.params);
            features.clear();
            self.sketch_window_into(&sequence[start..end], scratch, &mut features);
            if !features.is_empty() {
                if let std::ops::ControlFlow::Break(()) = f(w, &features) {
                    break;
                }
            }
        }
        scratch.features = features;
    }

    /// Sketch every window of a reference sequence; returns `(window_id,
    /// sketch)` pairs for non-empty sketches. Convenience form of
    /// [`Self::for_each_window_sketch`] that allocates per window.
    pub fn sketch_reference(&self, sequence: &[u8]) -> Vec<(u32, Sketch)> {
        let mut scratch = SketchScratch::with_capacity(self.sketch_size);
        let mut out = Vec::new();
        self.for_each_window_sketch(sequence, &mut scratch, |w, features| {
            out.push((
                w,
                Sketch {
                    features: features.to_vec(),
                },
            ));
            std::ops::ControlFlow::Continue(())
        });
        out
    }

    /// Sketch every window of one read sequence into `out` (flat, windows
    /// concatenated in order), returning the number of windows that produced
    /// a non-empty sketch. Short reads (length ≤ window length) form a single
    /// window; reads shorter than `k` produce nothing.
    fn sketch_sequence_into(
        &self,
        sequence: &[u8],
        scratch: &mut SketchScratch,
        out: &mut Vec<Feature>,
    ) -> usize {
        if sequence.len() < self.params.k() as usize {
            return 0;
        }
        let window_len = self.params.window_len() as usize;
        if sequence.len() <= window_len {
            let appended = self.sketch_window_into(sequence, scratch, out);
            return usize::from(appended > 0);
        }
        let mut windows = 0;
        for w in 0..self.num_windows(sequence.len()) {
            let (start, end) = window_range(w, sequence.len(), self.params);
            if self.sketch_window_into(&sequence[start..end], scratch, out) > 0 {
                windows += 1;
            }
        }
        windows
    }

    /// Sketch a read and (if present) its mate into a caller-owned flat
    /// feature buffer — the query hot path. Features of all windows are
    /// appended to `out` in window order; returns the number of non-empty
    /// windows. Zero heap allocations after warm-up.
    ///
    /// The flat layout is sufficient for classification: candidate generation
    /// consumes the multiset of all window features plus the read's total
    /// length (see [`crate::query::Classifier::candidates`]).
    pub fn sketch_record_into(
        &self,
        record: &mc_seqio::SequenceRecord,
        scratch: &mut SketchScratch,
        out: &mut Vec<Feature>,
    ) -> usize {
        let mut windows = self.sketch_sequence_into(&record.sequence, scratch, out);
        if let Some(mate) = &record.mate {
            windows += self.sketch_sequence_into(&mate.sequence, scratch, out);
        }
        windows
    }

    /// Split a read into windows of the database window length and sketch
    /// each window. Convenience form that allocates per window.
    pub fn sketch_read(&self, sequence: &[u8]) -> Vec<Sketch> {
        if sequence.len() < self.params.k() as usize {
            return Vec::new();
        }
        let window_len = self.params.window_len() as usize;
        if sequence.len() <= window_len {
            let s = self.sketch_window(sequence);
            return if s.is_empty() { Vec::new() } else { vec![s] };
        }
        let n = self.num_windows(sequence.len());
        (0..n)
            .filter_map(|w| {
                let (start, end) = window_range(w, sequence.len(), self.params);
                let s = self.sketch_window(&sequence[start..end]);
                if s.is_empty() {
                    None
                } else {
                    Some(s)
                }
            })
            .collect()
    }

    /// Sketch a read and (if present) its mate into one [`ReadSketch`].
    /// Convenience form of [`Self::sketch_record_into`] that allocates.
    pub fn sketch_record(&self, record: &mc_seqio::SequenceRecord) -> ReadSketch {
        let mut windows = self.sketch_read(&record.sequence);
        if let Some(mate) = &record.mate {
            windows.extend(self.sketch_read(&mate.sequence));
        }
        ReadSketch {
            windows,
            total_len: record.total_len(),
        }
    }

    /// Reference oracle counterpart of [`Self::sketch_record`]: every window
    /// sketched with [`Self::sketch_window_baseline`]. Used by tests and the
    /// `query_throughput` bench's collect-sort baseline.
    pub fn sketch_record_baseline(&self, record: &mc_seqio::SequenceRecord) -> ReadSketch {
        let mut windows = self.sketch_read_baseline(&record.sequence);
        if let Some(mate) = &record.mate {
            windows.extend(self.sketch_read_baseline(&mate.sequence));
        }
        ReadSketch {
            windows,
            total_len: record.total_len(),
        }
    }

    fn sketch_read_baseline(&self, sequence: &[u8]) -> Vec<Sketch> {
        if sequence.len() < self.params.k() as usize {
            return Vec::new();
        }
        let window_len = self.params.window_len() as usize;
        if sequence.len() <= window_len {
            let s = self.sketch_window_baseline(sequence);
            return if s.is_empty() { Vec::new() } else { vec![s] };
        }
        let n = self.num_windows(sequence.len());
        (0..n)
            .filter_map(|w| {
                let (start, end) = window_range(w, sequence.len(), self.params);
                let s = self.sketch_window_baseline(&sequence[start..end]);
                if s.is_empty() {
                    None
                } else {
                    Some(s)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_kmer::CanonicalKmerIter;
    use mc_seqio::SequenceRecord;

    fn make_seq(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                b"ACGT"[(state >> 33) as usize % 4]
            })
            .collect()
    }

    fn sketcher() -> Sketcher {
        Sketcher::new(&MetaCacheConfig::default()).unwrap()
    }

    #[test]
    fn sketch_has_at_most_s_distinct_sorted_features() {
        let s = sketcher();
        let window = make_seq(127, 1);
        let sketch = s.sketch_window(&window);
        assert!(sketch.len() <= 16);
        assert!(!sketch.is_empty());
        let f = sketch.features();
        assert!(
            f.windows(2).all(|p| p[0] < p[1]),
            "features must be sorted distinct"
        );
    }

    #[test]
    fn sketch_is_smallest_hashes() {
        let s = sketcher();
        let window = make_seq(127, 2);
        let sketch = s.sketch_window(&window);
        // Recompute all hashes; the sketch must equal the s smallest distinct,
        // truncated to 32 bits.
        let mut hashes: Vec<u64> = CanonicalKmerIter::new(&window, s.window_params().kmer())
            .map(|k| hash64(k.value()))
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        let expected: Vec<Feature> = hashes
            .iter()
            .take(16)
            .map(|h| (h >> 32) as Feature)
            .collect();
        assert_eq!(sketch.features(), expected.as_slice());
    }

    #[test]
    fn bounded_selector_matches_baseline_oracle() {
        let s = sketcher();
        let mut scratch = SketchScratch::new();
        let mut features = Vec::new();
        for seed in 0..50u64 {
            let window = make_seq(40 + (seed as usize * 13) % 200, seed + 1);
            features.clear();
            s.sketch_window_into(&window, &mut scratch, &mut features);
            assert_eq!(
                features.as_slice(),
                s.sketch_window_baseline(&window).features(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn scratch_reuse_does_not_leak_state_between_windows() {
        let s = sketcher();
        let mut scratch = SketchScratch::new();
        let mut features = Vec::new();
        let a = make_seq(127, 3);
        let b = make_seq(127, 4);
        // Sketch a, then b, then a again with the same scratch.
        s.sketch_window_into(&a, &mut scratch, &mut features);
        let first_a = features.clone();
        features.clear();
        s.sketch_window_into(&b, &mut scratch, &mut features);
        features.clear();
        s.sketch_window_into(&a, &mut scratch, &mut features);
        assert_eq!(features, first_a);
        assert_eq!(first_a.as_slice(), s.sketch_window_baseline(&a).features());
    }

    #[test]
    fn sketch_record_into_is_flat_concatenation_of_window_sketches() {
        let s = sketcher();
        let mut scratch = SketchScratch::new();
        let mut features = Vec::new();
        let r = SequenceRecord::new("r/1", make_seq(250, 11))
            .with_mate(SequenceRecord::new("r/2", make_seq(101, 12)));
        let windows = s.sketch_record_into(&r, &mut scratch, &mut features);
        let reference = s.sketch_record(&r);
        assert_eq!(windows, reference.windows.len());
        let expected: Vec<Feature> = reference.all_features().collect();
        assert_eq!(features, expected);
    }

    #[test]
    fn identical_windows_share_sketch_mutated_windows_share_some_features() {
        let s = sketcher();
        let a = make_seq(127, 3);
        let mut b = a.clone();
        // Mutate 4 bases.
        for i in [10usize, 40, 80, 120] {
            b[i] = if b[i] == b'A' { b'C' } else { b'A' };
        }
        let sa = s.sketch_window(&a);
        let sb = s.sketch_window(&b);
        assert_eq!(sa, s.sketch_window(&a));
        let shared = sa
            .features()
            .iter()
            .filter(|f| sb.features().contains(f))
            .count();
        assert!(shared >= 4, "mutated window shares only {shared} features");
        assert!(shared < 16, "mutation should change some features");
    }

    #[test]
    fn window_shorter_than_k_yields_empty() {
        let s = sketcher();
        assert!(s.sketch_window(b"ACGTACGT").is_empty());
        assert!(s.sketch_read(b"ACGTACGT").is_empty());
        let mut scratch = SketchScratch::new();
        let mut features = Vec::new();
        assert_eq!(
            s.sketch_window_into(b"ACGTACGT", &mut scratch, &mut features),
            0
        );
        assert!(features.is_empty());
    }

    #[test]
    fn all_n_window_yields_empty_sketch() {
        let s = sketcher();
        let window = vec![b'N'; 127];
        assert!(s.sketch_window(&window).is_empty());
        assert!(s.sketch_window_baseline(&window).is_empty());
    }

    #[test]
    fn reference_sketching_covers_all_windows() {
        let s = sketcher();
        let genome = make_seq(10_000, 7);
        let sketches = s.sketch_reference(&genome);
        let expected_windows = s.num_windows(genome.len());
        assert_eq!(sketches.len(), expected_windows as usize);
        assert_eq!(sketches[0].0, 0);
        assert_eq!(sketches.last().unwrap().0, expected_windows - 1);
    }

    #[test]
    fn visitor_and_allocating_reference_sketching_agree() {
        let s = sketcher();
        let genome = make_seq(8_000, 17);
        let allocated = s.sketch_reference(&genome);
        let mut scratch = SketchScratch::new();
        let mut visited: Vec<(u32, Vec<Feature>)> = Vec::new();
        s.for_each_window_sketch(&genome, &mut scratch, |w, features| {
            visited.push((w, features.to_vec()));
            std::ops::ControlFlow::Continue(())
        });
        assert_eq!(allocated.len(), visited.len());
        for ((w_a, sketch), (w_b, features)) in allocated.iter().zip(&visited) {
            assert_eq!(w_a, w_b);
            assert_eq!(sketch.features(), features.as_slice());
        }
    }

    #[test]
    fn short_read_is_single_window_long_read_splits() {
        let s = sketcher();
        let short = make_seq(100, 9);
        assert_eq!(s.sketch_read(&short).len(), 1);
        let long = make_seq(250, 9);
        // 250 bases at stride 112 -> 3 windows (paper: MiSeq reads split into
        // two or more windows).
        assert!(s.sketch_read(&long).len() >= 2);
    }

    #[test]
    fn paired_record_combines_both_mates() {
        let s = sketcher();
        let r = SequenceRecord::new("r/1", make_seq(101, 11))
            .with_mate(SequenceRecord::new("r/2", make_seq(101, 12)));
        let sketch = s.sketch_record(&r);
        assert_eq!(sketch.windows.len(), 2);
        assert_eq!(sketch.total_len, 202);
        assert!(sketch.feature_count() > 16);
        assert_eq!(sketch.all_features().count(), sketch.feature_count());
    }

    #[test]
    fn read_and_its_source_window_share_features() {
        // The core minhash property the classifier relies on: a read drawn
        // from a reference window shares most sketch features with it.
        let s = sketcher();
        let genome = make_seq(5_000, 21);
        let read = &genome[1_120..1_220]; // aligned with window 10 (stride 112)
        let read_sketch = s.sketch_read(read);
        assert_eq!(read_sketch.len(), 1);
        let ref_sketches = s.sketch_reference(&genome);
        let best_overlap = ref_sketches
            .iter()
            .map(|(_, sk)| {
                read_sketch[0]
                    .features()
                    .iter()
                    .filter(|f| sk.features().contains(f))
                    .count()
            })
            .max()
            .unwrap();
        assert!(
            best_overlap >= 8,
            "best window overlap only {best_overlap}/16"
        );
    }
}
