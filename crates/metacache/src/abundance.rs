//! Abundance estimation (paper §6.5).
//!
//! For the KAL_D food sample no per-read ground truth exists — "only the
//! ratio of meat components is known". MetaCache's abundance estimation
//! aggregates the per-read classifications into per-species read fractions;
//! the paper reports the *accumulated deviation* from the true ratios and the
//! *false positive* fraction (reads assigned to species not present in the
//! sample). This module reproduces both metrics.

use std::collections::BTreeMap;

use mc_taxonomy::{Rank, TaxonId, NO_TAXON};

use crate::classify::Classification;
use crate::database::Database;

/// Per-species abundance estimate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AbundanceProfile {
    /// Estimated fraction of (classified) reads per species taxon.
    pub fractions: BTreeMap<TaxonId, f64>,
    /// Number of reads that contributed (classified at species level or
    /// below).
    pub counted_reads: usize,
    /// Number of reads classified only above species level.
    pub above_species: usize,
    /// Number of unclassified reads.
    pub unclassified: usize,
}

impl AbundanceProfile {
    /// Estimate the profile from per-read classifications: every read whose
    /// assignment has a species-level ancestor contributes one count to that
    /// species.
    pub fn estimate(db: &Database, classifications: &[Classification]) -> Self {
        let mut counts: BTreeMap<TaxonId, usize> = BTreeMap::new();
        let mut profile = Self::default();
        for c in classifications {
            if !c.is_classified() {
                profile.unclassified += 1;
                continue;
            }
            let species = db.lineages.ancestor_at(c.taxon, Rank::Species);
            if species == NO_TAXON {
                profile.above_species += 1;
                continue;
            }
            *counts.entry(species).or_default() += 1;
            profile.counted_reads += 1;
        }
        let total = profile.counted_reads.max(1) as f64;
        profile.fractions = counts
            .into_iter()
            .map(|(taxon, n)| (taxon, n as f64 / total))
            .collect();
        profile
    }

    /// Estimated fraction of a species (0 if absent).
    pub fn fraction(&self, taxon: TaxonId) -> f64 {
        self.fractions.get(&taxon).copied().unwrap_or(0.0)
    }

    /// Accumulated absolute deviation from a known truth profile, summed over
    /// the species present in the truth (the paper's "accumulated deviation").
    pub fn deviation_from(&self, truth: &[(TaxonId, f64)]) -> f64 {
        truth
            .iter()
            .map(|(taxon, expected)| (self.fraction(*taxon) - expected).abs())
            .sum()
    }

    /// Fraction of counted reads assigned to species *not* present in the
    /// truth profile (the paper's "false positives").
    pub fn false_positive_fraction(&self, truth: &[(TaxonId, f64)]) -> f64 {
        let truth_taxa: std::collections::HashSet<TaxonId> =
            truth.iter().map(|(t, _)| *t).collect();
        self.fractions
            .iter()
            .filter(|(taxon, _)| !truth_taxa.contains(taxon))
            .map(|(_, fraction)| fraction)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MetaCacheConfig;
    use crate::database::{Partition, PartitionStore, TargetInfo};
    use mc_taxonomy::Taxonomy;
    use mc_warpcore::HostHashTable;

    fn db() -> Database {
        let mut taxonomy = Taxonomy::with_root();
        taxonomy.add_node(10, 1, Rank::Genus, "G").unwrap();
        taxonomy.add_node(100, 10, Rank::Species, "beef").unwrap();
        taxonomy.add_node(101, 10, Rank::Species, "pork").unwrap();
        taxonomy.add_node(102, 10, Rank::Species, "horse").unwrap();
        let lineages = taxonomy.lineage_cache();
        Database {
            config: MetaCacheConfig::default(),
            targets: vec![TargetInfo {
                id: 0,
                name: "t".into(),
                taxon: 100,
                length: 100,
                num_windows: 1,
            }],
            taxonomy,
            lineages,
            partitions: vec![Partition {
                store: PartitionStore::Host(HostHashTable::new(Default::default())),
                targets: vec![0],
            }],
        }
    }

    fn classified(taxon: TaxonId) -> Classification {
        Classification {
            taxon,
            rank: None,
            best_target: Some(0),
            best_hits: 10,
        }
    }

    #[test]
    fn estimates_fractions_from_classifications() {
        let db = db();
        let mut classifications = Vec::new();
        classifications.extend(std::iter::repeat_n(classified(100), 60)); // beef
        classifications.extend(std::iter::repeat_n(classified(101), 30)); // pork
        classifications.extend(std::iter::repeat_n(classified(102), 10)); // horse
        classifications.extend(std::iter::repeat_n(classified(10), 5)); // genus only
        classifications.extend(std::iter::repeat_n(Classification::unclassified(), 5));
        let profile = AbundanceProfile::estimate(&db, &classifications);
        assert_eq!(profile.counted_reads, 100);
        assert_eq!(profile.above_species, 5);
        assert_eq!(profile.unclassified, 5);
        assert!((profile.fraction(100) - 0.6).abs() < 1e-12);
        assert!((profile.fraction(101) - 0.3).abs() < 1e-12);
        assert!((profile.fraction(102) - 0.1).abs() < 1e-12);
        assert_eq!(profile.fraction(999), 0.0);
    }

    #[test]
    fn deviation_and_false_positives() {
        let db = db();
        let mut classifications = Vec::new();
        classifications.extend(std::iter::repeat_n(classified(100), 55));
        classifications.extend(std::iter::repeat_n(classified(101), 35));
        classifications.extend(std::iter::repeat_n(classified(102), 10));
        let profile = AbundanceProfile::estimate(&db, &classifications);
        // Truth: 60% beef, 40% pork, horse not present.
        let truth = vec![(100, 0.6), (101, 0.4)];
        let dev = profile.deviation_from(&truth);
        assert!((dev - (0.05 + 0.05)).abs() < 1e-9, "deviation {dev}");
        let fp = profile.false_positive_fraction(&truth);
        assert!((fp - 0.1).abs() < 1e-9, "false positives {fp}");
        // Perfect truth gives zero deviation and zero false positives.
        let exact = vec![(100, 0.55), (101, 0.35), (102, 0.10)];
        assert!(profile.deviation_from(&exact) < 1e-9);
        assert!(profile.false_positive_fraction(&exact) < 1e-9);
    }

    #[test]
    fn empty_classifications() {
        let db = db();
        let profile = AbundanceProfile::estimate(&db, &[]);
        assert_eq!(profile.counted_reads, 0);
        assert!(profile.fractions.is_empty());
        assert_eq!(profile.deviation_from(&[(100, 1.0)]), 1.0);
    }
}
