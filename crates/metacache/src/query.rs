//! The host query path: sketch → table lookup → window count statistic →
//! top candidates → classification.
//!
//! This is the CPU MetaCache query phase of §4.2. The GPU pipeline in
//! [`crate::gpu`] runs the same algorithm batched over simulated devices; the
//! two paths produce identical classifications (asserted by integration
//! tests), differing only in how the work is scheduled and costed.
//!
//! # The zero-allocation hot path
//!
//! Mirroring the paper's device pipeline — which keeps hashes in warp
//! registers and compacts location lists in pre-allocated device buffers
//! (§5.2–§5.5) — the host path performs no steady-state heap allocation:
//!
//! * every per-read buffer (sketch selector, flat feature list, gathered
//!   locations, merge buffer, window count statistic, candidate list) lives
//!   in a reusable [`QueryScratch`];
//! * [`Classifier::classify_batch`] threads one scratch per worker through
//!   `rayon`'s `map_init`, so a batch of millions of reads allocates a
//!   handful of scratches total;
//! * the gathered location list is a concatenation of per-bucket sorted runs
//!   (buckets store locations in insertion order, which is ascending
//!   `(target, window)` during the sequential build), so instead of a global
//!   `sort_unstable` the hot path detects the natural runs in one O(n) scan
//!   and merges them bottom-up in the scratch's ping-pong buffer — O(n log r)
//!   for `r` runs, and a plain pass-through when the list is already sorted.
//!   Lists with more than `MAX_MERGE_RUNS` runs (heavily fragmented location
//!   lists of repetitive references) fall back to an LSD radix sort over the
//!   packed `(target, window)` keys in the same ping-pong buffer — the CPU
//!   analogue of the paper's segmented device sort (§5.5), O(n) per varying
//!   key byte instead of O(n log n) comparisons.
//!
//! # Database ownership
//!
//! [`Classifier`] is generic over *how it holds the database*: any
//! `Deref<Target = Database>` works. Borrow for one-shot use
//! (`Classifier::new(&db)`), or hand it an `Arc<Database>` (the default type
//! parameter) so long-lived serving components — the
//! [`ServingEngine`][crate::serving::ServingEngine] worker pool, backends
//! shared across threads — can co-own the database without a borrow tying
//! them to a caller's stack frame.

use std::ops::Deref;
use std::sync::Arc;

use rayon::prelude::*;

use mc_kmer::Location;
use mc_seqio::SequenceRecord;

use crate::candidate::{accumulate_locations_into, top_candidates_into, CandidateList};
use crate::classify::{classify_candidates, Classification};
use crate::database::Database;
use crate::sketch::{SketchScratch, Sketcher};

/// Location lists with more natural runs than this are radix-sorted instead
/// of merged (each merge pass costs one full copy over the list; beyond ~64
/// runs the fixed number of radix passes wins).
const MAX_MERGE_RUNS: usize = 64;

/// Reusable per-worker scratch state for allocation-free classification.
///
/// Create one per worker (or reuse one across a sequential read stream) and
/// pass it to [`Classifier::classify_with`] / [`Classifier::candidates_with`].
/// All buffers grow to the high-water mark of the workload and are then
/// reused; steady-state classification performs zero heap allocations.
#[derive(Debug, Clone, Default)]
pub struct QueryScratch {
    /// Bounded top-`s` sketch selector.
    sketch: SketchScratch,
    /// Flat feature list of the read's windows.
    features: Vec<mc_kmer::Feature>,
    /// Locations gathered from all partitions for all features.
    locations: Vec<Location>,
    /// Ping-pong buffer for the natural-run merge.
    merge_buf: Vec<Location>,
    /// Natural-run boundaries detected in `locations`.
    run_bounds: Vec<usize>,
    /// The sparse window count statistic.
    counts: Vec<(Location, u32)>,
    /// The read's candidate list.
    candidates: CandidateList,
}

impl QueryScratch {
    /// Create an empty scratch; buffers size themselves on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-read classifier bound to a database.
///
/// The entry points trade convenience against allocation control:
/// [`Classifier::classify`] allocates a fresh [`QueryScratch`] per call,
/// [`Classifier::classify_with`] reuses a caller-owned scratch (the
/// zero-allocation hot path), and [`Classifier::classify_batch`] fans a slice
/// of reads across rayon workers with one scratch per worker. For inputs too
/// large to materialise, use
/// [`StreamingClassifier`][crate::pipeline::StreamingClassifier], which
/// produces bit-identical results.
///
/// # Example
///
/// ```
/// use metacache::{MetaCacheConfig, build::CpuBuilder, query::{Classifier, QueryScratch}};
/// use mc_seqio::SequenceRecord;
/// use mc_taxonomy::{Rank, Taxonomy};
///
/// let mut taxonomy = Taxonomy::with_root();
/// taxonomy.add_node(100, 1, Rank::Species, "Species A").unwrap();
/// let mut state = 5u64;
/// let genome: Vec<u8> = (0..6000)
///     .map(|_| {
///         state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
///         b"ACGT"[(state >> 33) as usize % 4]
///     })
///     .collect();
/// let mut builder = CpuBuilder::new(MetaCacheConfig::default(), taxonomy);
/// builder.add_target(SequenceRecord::new("refA", genome.clone()), 100).unwrap();
/// let db = builder.finish();
///
/// let classifier = Classifier::new(&db);
/// let mut scratch = QueryScratch::new();
/// let read = SequenceRecord::new("read", genome[500..650].to_vec());
/// let result = classifier.classify_with(&read, &mut scratch);
/// assert_eq!(result.taxon, 100);
///
/// // A read shorter than k sketches to nothing and stays unclassified.
/// let tiny = SequenceRecord::new("tiny", genome[..8].to_vec());
/// assert!(!classifier.classify_with(&tiny, &mut scratch).is_classified());
/// ```
pub struct Classifier<D = Arc<Database>>
where
    D: Deref<Target = Database>,
{
    db: D,
    sketcher: Sketcher,
}

impl<D> Classifier<D>
where
    D: Deref<Target = Database>,
{
    /// Create a classifier for a database. `db` can be a borrow
    /// (`&Database`) for one-shot use or an owning handle (`Arc<Database>`)
    /// for long-lived serving components.
    pub fn new(db: D) -> Self {
        let sketcher = Sketcher::new(&db.config).expect("database config was validated at build");
        Self { db, sketcher }
    }

    /// The database this classifier queries.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The sketcher used by this classifier.
    pub fn sketcher(&self) -> &Sketcher {
        &self.sketcher
    }

    /// Compute the candidate list of one read (or read pair) into
    /// `scratch.candidates`, reusing every buffer — the allocation-free hot
    /// path. Returns a reference to the computed list.
    pub fn candidates_with<'s>(
        &self,
        record: &SequenceRecord,
        scratch: &'s mut QueryScratch,
    ) -> &'s CandidateList {
        scratch.candidates.reset(self.db.config.top_candidates);

        // Sketch all windows of the read (and mate) into one flat feature list.
        scratch.features.clear();
        self.sketcher
            .sketch_record_into(record, &mut scratch.sketch, &mut scratch.features);

        // Query the whole sketch against all partitions in one batched call
        // per partition (amortises the store's per-lookup overhead).
        scratch.locations.clear();
        self.db
            .query_features_into(&scratch.features, &mut scratch.locations);

        // Order the gathered locations: merge the per-bucket sorted runs
        // (fall back to sorting when the runs are too fragmented).
        sort_location_runs(
            &mut scratch.locations,
            &mut scratch.merge_buf,
            &mut scratch.run_bounds,
        );

        // Accumulate into the window count statistic and scan for candidates.
        accumulate_locations_into(&scratch.locations, &mut scratch.counts);
        let sws = self.db.config.sliding_window_size(record.total_len());
        top_candidates_into(&scratch.counts, sws, &mut scratch.candidates);
        &scratch.candidates
    }

    /// Compute the candidate list of one read (or read pair). Convenience
    /// form of [`Self::candidates_with`] that allocates a fresh scratch.
    pub fn candidates(&self, record: &SequenceRecord) -> CandidateList {
        let mut scratch = QueryScratch::new();
        self.candidates_with(record, &mut scratch);
        scratch.candidates
    }

    /// Classify one read (or read pair) reusing `scratch` — the hot path.
    pub fn classify_with(
        &self,
        record: &SequenceRecord,
        scratch: &mut QueryScratch,
    ) -> Classification {
        self.candidates_with(record, scratch);
        classify_candidates(&self.db, &self.db.config, &scratch.candidates)
    }

    /// Classify one read (or read pair).
    pub fn classify(&self, record: &SequenceRecord) -> Classification {
        let mut scratch = QueryScratch::new();
        self.classify_with(record, &mut scratch)
    }

    /// Classify reads sequentially with a single reused scratch (useful for
    /// deterministic profiling).
    pub fn classify_all_sequential(&self, records: &[SequenceRecord]) -> Vec<Classification> {
        let mut scratch = QueryScratch::new();
        records
            .iter()
            .map(|r| self.classify_with(r, &mut scratch))
            .collect()
    }
}

impl<D> Classifier<D>
where
    D: Deref<Target = Database> + Sync,
{
    /// Classify a batch of reads in parallel. One [`QueryScratch`] is created
    /// per rayon worker and reused for every read that worker processes.
    pub fn classify_batch(&self, records: &[SequenceRecord]) -> Vec<Classification> {
        records
            .par_iter()
            .map_init(QueryScratch::new, |scratch, r| {
                self.classify_with(r, scratch)
            })
            .collect()
    }
}

/// Sort `locations` by packed `(target, window)` key using its natural sorted
/// runs: detect run boundaries in one scan, then merge adjacent runs
/// bottom-up, ping-ponging between `locations` and `buf`. Falls back to an
/// LSD radix sort in the same ping-pong buffer when more than
/// [`MAX_MERGE_RUNS`] runs are found.
///
/// `buf` and `bounds` are caller-owned so repeated calls reuse their
/// allocations.
pub(crate) fn sort_location_runs(
    locations: &mut [Location],
    buf: &mut Vec<Location>,
    bounds: &mut Vec<usize>,
) {
    bounds.clear();
    if locations.len() < 2 {
        return;
    }
    bounds.push(0);
    for i in 1..locations.len() {
        if locations[i].pack() < locations[i - 1].pack() {
            bounds.push(i);
        }
    }
    bounds.push(locations.len());
    if bounds.len() == 2 {
        return; // already sorted — the common case for single-window reads
    }
    if bounds.len() - 1 > MAX_MERGE_RUNS {
        radix_sort_locations(locations, buf);
        return;
    }

    // Size the ping-pong buffer without clearing first: every merge pass
    // overwrites all `n` slots, so stale contents never leak, and skipping
    // the clear avoids re-filling the whole buffer on every call.
    buf.resize(locations.len(), Location::new(0, 0));
    let mut in_main = true;
    while bounds.len() > 2 {
        if in_main {
            merge_pass(locations, buf, bounds);
        } else {
            merge_pass(buf, locations, bounds);
        }
        in_main = !in_main;
    }
    if !in_main {
        locations.copy_from_slice(buf);
    }
}

/// LSD radix sort of `locations` by packed `(target, window)` key,
/// ping-ponging between `locations` and the caller's scratch `buf` — the
/// fragmented-list fallback of [`sort_location_runs`] and the CPU analogue
/// of the paper's segmented device sort (§5.5).
///
/// One counting pass per *varying* key byte (a pre-scan XORs every key
/// against the first, so lists whose locations share the high target bytes —
/// the common case — run in two or three passes instead of eight). Each pass
/// is a stable counting sort, so processing bytes least-significant first
/// yields a total order over the full 64-bit key.
pub(crate) fn radix_sort_locations(locations: &mut [Location], buf: &mut Vec<Location>) {
    if locations.len() < 2 {
        return;
    }
    // Like the merge path: every executed pass overwrites all `n` slots of
    // the destination, so the buffer is resized without clearing.
    buf.resize(locations.len(), Location::new(0, 0));
    let first = locations[0].pack();
    let mut varying = 0u64;
    for l in locations.iter() {
        varying |= l.pack() ^ first;
    }
    let mut in_main = true;
    for shift in (0..64).step_by(8) {
        if (varying >> shift) & 0xFF == 0 {
            continue; // all keys share this byte — the pass is the identity
        }
        if in_main {
            radix_pass(locations, buf, shift);
        } else {
            radix_pass(buf, locations, shift);
        }
        in_main = !in_main;
    }
    if !in_main {
        locations.copy_from_slice(buf);
    }
}

/// One stable counting-sort pass of the LSD radix sort: scatter `src` into
/// `dst` ordered by the key byte at `shift`.
fn radix_pass(src: &[Location], dst: &mut [Location], shift: usize) {
    let mut counts = [0usize; 256];
    for l in src {
        counts[((l.pack() >> shift) & 0xFF) as usize] += 1;
    }
    let mut offset = 0usize;
    for c in counts.iter_mut() {
        let n = *c;
        *c = offset;
        offset += n;
    }
    for l in src {
        let d = ((l.pack() >> shift) & 0xFF) as usize;
        dst[counts[d]] = *l;
        counts[d] += 1;
    }
}

/// One bottom-up merge pass: adjacent run pairs of `src` are merged into
/// `dst` and `bounds` is compacted to the surviving boundaries.
fn merge_pass(src: &[Location], dst: &mut [Location], bounds: &mut Vec<usize>) {
    let mut write = 0usize;
    let mut pair = 0usize;
    let mut kept = 1usize; // bounds[0] == 0 stays
    while pair + 2 < bounds.len() {
        let (a, b, c) = (bounds[pair], bounds[pair + 1], bounds[pair + 2]);
        let (mut i, mut j) = (a, b);
        while i < b && j < c {
            if src[j].pack() < src[i].pack() {
                dst[write] = src[j];
                j += 1;
            } else {
                dst[write] = src[i];
                i += 1;
            }
            write += 1;
        }
        while i < b {
            dst[write] = src[i];
            i += 1;
            write += 1;
        }
        while j < c {
            dst[write] = src[j];
            j += 1;
            write += 1;
        }
        bounds[kept] = c;
        kept += 1;
        pair += 2;
    }
    if pair + 2 == bounds.len() {
        // Odd run count: the last run passes through unchanged.
        let (a, b) = (bounds[pair], bounds[pair + 1]);
        dst[write..write + (b - a)].copy_from_slice(&src[a..b]);
        bounds[kept] = b;
        kept += 1;
    }
    bounds.truncate(kept);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::CpuBuilder;
    use crate::config::MetaCacheConfig;
    use mc_taxonomy::{Rank, Taxonomy};

    fn make_seq(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                b"ACGT"[(state >> 33) as usize % 4]
            })
            .collect()
    }

    fn two_species_database() -> (Database, Vec<u8>, Vec<u8>) {
        let mut taxonomy = Taxonomy::with_root();
        taxonomy.add_node(10, 1, Rank::Genus, "G").unwrap();
        taxonomy.add_node(100, 10, Rank::Species, "G a").unwrap();
        taxonomy.add_node(101, 10, Rank::Species, "G b").unwrap();
        let genome_a = make_seq(20_000, 1);
        let genome_b = make_seq(20_000, 2);
        let mut builder = CpuBuilder::new(MetaCacheConfig::for_tests(), taxonomy);
        builder
            .add_target(SequenceRecord::new("refA", genome_a.clone()), 100)
            .unwrap();
        builder
            .add_target(SequenceRecord::new("refB", genome_b.clone()), 101)
            .unwrap();
        (builder.finish(), genome_a, genome_b)
    }

    #[test]
    fn reads_classify_to_their_source_species() {
        let (db, genome_a, genome_b) = two_species_database();
        let classifier = Classifier::new(&db);
        for (start, genome, expected) in [
            (500usize, &genome_a, 100u32),
            (7_000, &genome_b, 101),
            (12_345, &genome_a, 100),
        ] {
            let read = SequenceRecord::new("read", genome[start..start + 120].to_vec());
            let c = classifier.classify(&read);
            assert_eq!(c.taxon, expected, "read from offset {start}");
            assert!(c.best_hits >= db.config.min_hits);
        }
    }

    #[test]
    fn foreign_read_is_unclassified() {
        let (db, _, _) = two_species_database();
        let classifier = Classifier::new(&db);
        let foreign = make_seq(150, 99);
        let c = classifier.classify(&SequenceRecord::new("alien", foreign));
        assert!(
            !c.is_classified(),
            "unrelated read must stay unclassified, got {c:?}"
        );
    }

    #[test]
    fn too_short_read_is_unclassified() {
        let (db, genome_a, _) = two_species_database();
        let classifier = Classifier::new(&db);
        let c = classifier.classify(&SequenceRecord::new("tiny", genome_a[..10].to_vec()));
        assert!(!c.is_classified());
    }

    #[test]
    fn batch_and_sequential_agree() {
        let (db, genome_a, genome_b) = two_species_database();
        let classifier = Classifier::new(&db);
        let reads: Vec<SequenceRecord> = (0..40)
            .map(|i| {
                let (genome, offset) = if i % 2 == 0 {
                    (&genome_a, 100 + i * 37)
                } else {
                    (&genome_b, 200 + i * 41)
                };
                SequenceRecord::new(format!("r{i}"), genome[offset..offset + 110].to_vec())
            })
            .collect();
        let parallel = classifier.classify_batch(&reads);
        let sequential = classifier.classify_all_sequential(&reads);
        assert_eq!(parallel, sequential);
        let correct = parallel
            .iter()
            .enumerate()
            .filter(|(i, c)| c.taxon == if i % 2 == 0 { 100 } else { 101 })
            .count();
        assert!(
            correct >= 38,
            "only {correct}/40 reads classified correctly"
        );
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch_per_read() {
        let (db, genome_a, genome_b) = two_species_database();
        let classifier = Classifier::new(&db);
        let mut reused = QueryScratch::new();
        for i in 0..30usize {
            let (genome, offset) = if i % 2 == 0 {
                (&genome_a, 150 + i * 53)
            } else {
                (&genome_b, 250 + i * 59)
            };
            let read = SequenceRecord::new(format!("r{i}"), genome[offset..offset + 120].to_vec());
            let with_reuse = classifier.classify_with(&read, &mut reused);
            let fresh = classifier.classify(&read);
            assert_eq!(with_reuse, fresh, "read {i}");
        }
    }

    #[test]
    fn paired_reads_use_both_mates() {
        let (db, genome_a, _) = two_species_database();
        let classifier = Classifier::new(&db);
        let r1 = genome_a[3_000..3_101].to_vec();
        let r2 = mc_kmer::reverse_complement(&genome_a[3_300..3_401]);
        let paired = SequenceRecord::new("p/1", r1).with_mate(SequenceRecord::new("p/2", r2));
        let single_hits = classifier
            .candidates(&SequenceRecord::new("s", genome_a[3_000..3_101].to_vec()))
            .best()
            .unwrap()
            .hits;
        let c = classifier.candidates(&paired);
        assert_eq!(classify_candidates(&db, &db.config, &c).taxon, 100);
        assert!(
            c.best().unwrap().hits > single_hits,
            "paired read should accumulate more hits than a single mate"
        );
    }

    fn pack_locs(pairs: &[(u32, u32)]) -> Vec<Location> {
        pairs.iter().map(|&(t, w)| Location::new(t, w)).collect()
    }

    fn assert_run_sort(input: Vec<Location>) {
        let mut expected = input.clone();
        expected.sort_unstable_by_key(|l| l.pack());
        let mut got = input;
        let mut buf = Vec::new();
        let mut bounds = Vec::new();
        sort_location_runs(&mut got, &mut buf, &mut bounds);
        assert_eq!(got, expected);
    }

    #[test]
    fn run_merge_sorts_arbitrary_run_shapes() {
        // Already sorted.
        assert_run_sort(pack_locs(&[(0, 1), (0, 2), (1, 0), (2, 5)]));
        // Two runs.
        assert_run_sort(pack_locs(&[(1, 0), (1, 5), (0, 0), (0, 9)]));
        // Odd number of runs, with duplicates across runs.
        assert_run_sort(pack_locs(&[(3, 1), (3, 2), (1, 1), (2, 2), (0, 0), (3, 1)]));
        // Empty and singleton.
        assert_run_sort(Vec::new());
        assert_run_sort(pack_locs(&[(7, 7)]));
        // Fully descending (n runs of length 1 — exercises the fallback
        // threshold boundary both below and above MAX_MERGE_RUNS).
        for n in [MAX_MERGE_RUNS - 1, MAX_MERGE_RUNS + 5, 300] {
            let desc: Vec<Location> = (0..n).map(|i| Location::new((n - i) as u32, 0)).collect();
            assert_run_sort(desc);
        }
    }

    #[test]
    fn radix_fallback_matches_global_sort_on_fragmented_lists() {
        // Wide keys (large targets and windows, so all eight key bytes can
        // vary) across many short runs — the shape that triggers the radix
        // fallback in sort_location_runs.
        let mut state = 0xDEAD_BEEFu64;
        let mut next = |bound: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 31) % bound
        };
        for n in [65usize, 200, 1000, 4096] {
            let locs: Vec<Location> = (0..n)
                .map(|_| Location::new(next(u32::MAX as u64) as u32, next(u32::MAX as u64) as u32))
                .collect();
            assert_run_sort(locs);
        }
        // Keys sharing their high bytes (small targets): most radix passes
        // are skipped by the varying-byte pre-scan.
        let locs: Vec<Location> = (0..500)
            .map(|_| Location::new(next(3) as u32, next(100) as u32))
            .collect();
        assert_run_sort(locs);
        // All-equal keys: zero varying bytes, zero passes.
        let mut equal = vec![Location::new(42, 7); 100];
        equal.push(Location::new(42, 6)); // two runs, still one distinct pass shape
        assert_run_sort(equal);
    }

    #[test]
    fn radix_sort_direct_invocation() {
        let mut state = 1u64;
        let mut locs: Vec<Location> = (0..777)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                Location::new((state >> 32) as u32, state as u32)
            })
            .collect();
        let mut expected = locs.clone();
        expected.sort_unstable_by_key(|l| l.pack());
        let mut buf = Vec::new();
        radix_sort_locations(&mut locs, &mut buf);
        assert_eq!(locs, expected);
        // Odd number of executed passes leaves the result in `locations` too.
        let mut one_byte: Vec<Location> = (0..300)
            .map(|i| Location::new(0, (300 - i) % 256))
            .collect();
        let mut expected = one_byte.clone();
        expected.sort_unstable_by_key(|l| l.pack());
        radix_sort_locations(&mut one_byte, &mut buf);
        assert_eq!(one_byte, expected);
    }

    #[test]
    fn run_merge_matches_global_sort_on_random_inputs() {
        let mut state = 0x1234_5678u64;
        for case in 0..200 {
            let len = (case % 37) * 7;
            let locs: Vec<Location> = (0..len)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    Location::new((state >> 33) as u32 % 8, (state >> 20) as u32 % 16)
                })
                .collect();
            assert_run_sort(locs);
        }
    }
}
