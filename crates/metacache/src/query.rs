//! The host query path: sketch → table lookup → window count statistic →
//! top candidates → classification.
//!
//! This is the CPU MetaCache query phase of §4.2. The GPU pipeline in
//! [`crate::gpu`] runs the same algorithm batched over simulated devices; the
//! two paths produce identical classifications (asserted by integration
//! tests), differing only in how the work is scheduled and costed.

use rayon::prelude::*;

use mc_kmer::Location;
use mc_seqio::SequenceRecord;

use crate::candidate::{accumulate_locations, top_candidates, CandidateList};
use crate::classify::{classify_candidates, Classification};
use crate::database::Database;
use crate::sketch::Sketcher;

/// Per-read classifier bound to a database.
pub struct Classifier<'db> {
    db: &'db Database,
    sketcher: Sketcher,
}

impl<'db> Classifier<'db> {
    /// Create a classifier for a database.
    pub fn new(db: &'db Database) -> Self {
        let sketcher = Sketcher::new(&db.config).expect("database config was validated at build");
        Self { db, sketcher }
    }

    /// The sketcher used by this classifier.
    pub fn sketcher(&self) -> &Sketcher {
        &self.sketcher
    }

    /// Compute the candidate list of one read (or read pair).
    pub fn candidates(&self, record: &SequenceRecord) -> CandidateList {
        let read_sketch = self.sketcher.sketch_record(record);
        if read_sketch.windows.is_empty() {
            return CandidateList::new(self.db.config.top_candidates);
        }
        // Query every feature of every window against all partitions.
        let mut locations: Vec<Location> = Vec::new();
        for feature in read_sketch.all_features() {
            self.db.query_feature_into(feature, &mut locations);
        }
        // Sort and accumulate into the window count statistic.
        locations.sort_unstable_by_key(|l| l.pack());
        let counts = accumulate_locations(&locations);
        let sws = self.db.config.sliding_window_size(read_sketch.total_len);
        top_candidates(&counts, sws, self.db.config.top_candidates)
    }

    /// Classify one read (or read pair).
    pub fn classify(&self, record: &SequenceRecord) -> Classification {
        let candidates = self.candidates(record);
        classify_candidates(self.db, &self.db.config, &candidates)
    }

    /// Classify a batch of reads in parallel.
    pub fn classify_batch(&self, records: &[SequenceRecord]) -> Vec<Classification> {
        records.par_iter().map(|r| self.classify(r)).collect()
    }

    /// Classify reads sequentially (useful for deterministic profiling).
    pub fn classify_all_sequential(&self, records: &[SequenceRecord]) -> Vec<Classification> {
        records.iter().map(|r| self.classify(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::CpuBuilder;
    use crate::config::MetaCacheConfig;
    use mc_taxonomy::{Rank, Taxonomy};

    fn make_seq(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                b"ACGT"[(state >> 33) as usize % 4]
            })
            .collect()
    }

    fn two_species_database() -> (Database, Vec<u8>, Vec<u8>) {
        let mut taxonomy = Taxonomy::with_root();
        taxonomy.add_node(10, 1, Rank::Genus, "G").unwrap();
        taxonomy.add_node(100, 10, Rank::Species, "G a").unwrap();
        taxonomy.add_node(101, 10, Rank::Species, "G b").unwrap();
        let genome_a = make_seq(20_000, 1);
        let genome_b = make_seq(20_000, 2);
        let mut builder = CpuBuilder::new(MetaCacheConfig::for_tests(), taxonomy);
        builder
            .add_target(SequenceRecord::new("refA", genome_a.clone()), 100)
            .unwrap();
        builder
            .add_target(SequenceRecord::new("refB", genome_b.clone()), 101)
            .unwrap();
        (builder.finish(), genome_a, genome_b)
    }

    #[test]
    fn reads_classify_to_their_source_species() {
        let (db, genome_a, genome_b) = two_species_database();
        let classifier = Classifier::new(&db);
        for (start, genome, expected) in
            [(500usize, &genome_a, 100u32), (7_000, &genome_b, 101), (12_345, &genome_a, 100)]
        {
            let read = SequenceRecord::new("read", genome[start..start + 120].to_vec());
            let c = classifier.classify(&read);
            assert_eq!(c.taxon, expected, "read from offset {start}");
            assert!(c.best_hits >= db.config.min_hits);
        }
    }

    #[test]
    fn foreign_read_is_unclassified() {
        let (db, _, _) = two_species_database();
        let classifier = Classifier::new(&db);
        let foreign = make_seq(150, 99);
        let c = classifier.classify(&SequenceRecord::new("alien", foreign));
        assert!(!c.is_classified(), "unrelated read must stay unclassified, got {c:?}");
    }

    #[test]
    fn too_short_read_is_unclassified() {
        let (db, genome_a, _) = two_species_database();
        let classifier = Classifier::new(&db);
        let c = classifier.classify(&SequenceRecord::new("tiny", genome_a[..10].to_vec()));
        assert!(!c.is_classified());
    }

    #[test]
    fn batch_and_sequential_agree() {
        let (db, genome_a, genome_b) = two_species_database();
        let classifier = Classifier::new(&db);
        let reads: Vec<SequenceRecord> = (0..40)
            .map(|i| {
                let (genome, offset) = if i % 2 == 0 {
                    (&genome_a, 100 + i * 37)
                } else {
                    (&genome_b, 200 + i * 41)
                };
                SequenceRecord::new(format!("r{i}"), genome[offset..offset + 110].to_vec())
            })
            .collect();
        let parallel = classifier.classify_batch(&reads);
        let sequential = classifier.classify_all_sequential(&reads);
        assert_eq!(parallel, sequential);
        let correct = parallel
            .iter()
            .enumerate()
            .filter(|(i, c)| c.taxon == if i % 2 == 0 { 100 } else { 101 })
            .count();
        assert!(correct >= 38, "only {correct}/40 reads classified correctly");
    }

    #[test]
    fn paired_reads_use_both_mates() {
        let (db, genome_a, _) = two_species_database();
        let classifier = Classifier::new(&db);
        let r1 = genome_a[3_000..3_101].to_vec();
        let r2 = mc_kmer::reverse_complement(&genome_a[3_300..3_401]);
        let paired = SequenceRecord::new("p/1", r1).with_mate(SequenceRecord::new("p/2", r2));
        let single_hits = classifier
            .candidates(&SequenceRecord::new("s", genome_a[3_000..3_101].to_vec()))
            .best()
            .unwrap()
            .hits;
        let c = classifier.candidates(&paired);
        assert_eq!(classify_candidates(&db, &db.config, &c).taxon, 100);
        assert!(
            c.best().unwrap().hits > single_hits,
            "paired read should accumulate more hits than a single mate"
        );
    }
}
