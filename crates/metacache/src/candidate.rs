//! Window count statistics and top-candidate generation.
//!
//! After querying a read's sketch features, the retrieved locations are
//! "merged and identical locations are accumulated. This yields a (sparse)
//! histogram of hit counts per window in the reference genomes (window count
//! statistic) … the window count statistic is scanned with a sliding window
//! approach to find target regions with the highest aggregated hit counts in
//! a contiguous window range. The top m counts (top hits) are then used to
//! classify the read." (§4.2, §5.6)

use mc_kmer::{Location, TargetId};

/// One candidate region: a contiguous window range of a target and the
/// number of feature hits accumulated over that range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The reference target.
    pub target: TargetId,
    /// First window of the candidate range (inclusive).
    pub window_begin: u32,
    /// Last window of the candidate range (inclusive).
    pub window_end: u32,
    /// Total hits accumulated over the range.
    pub hits: u32,
}

/// A bounded, descending-by-hits list of the best candidates of a read.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CandidateList {
    candidates: Vec<Candidate>,
    capacity: usize,
}

impl CandidateList {
    /// Create an empty list keeping at most `capacity` candidates.
    pub fn new(capacity: usize) -> Self {
        Self {
            candidates: Vec::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
        }
    }

    /// The candidates, best first.
    pub fn as_slice(&self) -> &[Candidate] {
        &self.candidates
    }

    /// The best candidate, if any.
    pub fn best(&self) -> Option<&Candidate> {
        self.candidates.first()
    }

    /// The runner-up candidate, if any.
    pub fn second(&self) -> Option<&Candidate> {
        self.candidates.get(1)
    }

    /// Number of candidates kept.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Clear the list and set a new capacity, retaining the allocation —
    /// used to reuse one list across reads on the query hot path.
    pub fn reset(&mut self, capacity: usize) {
        self.candidates.clear();
        self.capacity = capacity.max(1);
    }

    /// Insert a candidate, keeping at most one candidate per target (the best
    /// one) and at most `capacity` candidates overall, ordered by hits
    /// descending.
    pub fn insert(&mut self, candidate: Candidate) {
        if candidate.hits == 0 {
            return;
        }
        if let Some(existing) = self
            .candidates
            .iter_mut()
            .find(|c| c.target == candidate.target)
        {
            if candidate.hits > existing.hits {
                *existing = candidate;
            }
        } else {
            self.candidates.push(candidate);
        }
        self.candidates.sort_by(|a, b| {
            b.hits
                .cmp(&a.hits)
                .then(a.target.cmp(&b.target))
                .then(a.window_begin.cmp(&b.window_begin))
        });
        self.candidates.truncate(self.capacity);
    }

    /// Merge another candidate list into this one (used when combining the
    /// per-partition top hits of a multi-GPU query, Figure 2).
    pub fn merge(&mut self, other: &CandidateList) {
        for c in other.as_slice() {
            self.insert(*c);
        }
    }
}

/// Accumulate a sorted location list into a caller-owned window count
/// statistic buffer (cleared first): runs of identical (target, window)
/// locations become `(location, count)` pairs, preserving order. Reusing
/// `out` across reads keeps the query hot path allocation-free.
pub fn accumulate_locations_into(sorted: &[Location], out: &mut Vec<(Location, u32)>) {
    out.clear();
    for &loc in sorted {
        match out.last_mut() {
            Some((last, count)) if *last == loc => *count += 1,
            _ => out.push((loc, 1)),
        }
    }
}

/// Accumulate a sorted location list into the sparse window count statistic.
/// Convenience form of [`accumulate_locations_into`] that allocates.
pub fn accumulate_locations(sorted: &[Location]) -> Vec<(Location, u32)> {
    let mut out: Vec<(Location, u32)> = Vec::new();
    accumulate_locations_into(sorted, &mut out);
    out
}

/// Scan the window count statistic with a sliding window of `sliding_window`
/// reference windows and return the `max_candidates` best contiguous ranges
/// (at most one per target).
///
/// `counts` must be sorted by location (target-major, window-minor), as
/// produced by [`accumulate_locations`] on a sorted location list.
pub fn top_candidates(
    counts: &[(Location, u32)],
    sliding_window: usize,
    max_candidates: usize,
) -> CandidateList {
    let mut list = CandidateList::new(max_candidates);
    top_candidates_into(counts, sliding_window, &mut list);
    list
}

/// Scan the window count statistic into a caller-owned candidate list (its
/// current capacity is kept; contents are replaced). Reusing `list` across
/// reads keeps the query hot path allocation-free.
pub fn top_candidates_into(
    counts: &[(Location, u32)],
    sliding_window: usize,
    list: &mut CandidateList,
) {
    list.candidates.clear();
    let sliding_window = sliding_window.max(1) as u64;
    let mut start = 0usize;
    while start < counts.len() {
        let (anchor, _) = counts[start];
        // Accumulate all entries of the same target whose window lies within
        // the sliding range starting at the anchor window.
        let mut hits = 0u32;
        let mut end_window = anchor.window;
        let mut i = start;
        while i < counts.len() {
            let (loc, count) = counts[i];
            if loc.target != anchor.target
                || (loc.window as u64) >= anchor.window as u64 + sliding_window
            {
                break;
            }
            hits += count;
            end_window = loc.window;
            i += 1;
        }
        list.insert(Candidate {
            target: anchor.target,
            window_begin: anchor.window,
            window_end: end_window,
            hits,
        });
        start += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(t: u32, w: u32) -> Location {
        Location::new(t, w)
    }

    #[test]
    fn accumulation_counts_runs() {
        let sorted = vec![
            loc(0, 1),
            loc(0, 1),
            loc(0, 2),
            loc(1, 0),
            loc(1, 0),
            loc(1, 0),
        ];
        let counts = accumulate_locations(&sorted);
        assert_eq!(counts, vec![(loc(0, 1), 2), (loc(0, 2), 1), (loc(1, 0), 3)]);
        assert!(accumulate_locations(&[]).is_empty());
    }

    #[test]
    fn top_candidates_prefers_contiguous_regions() {
        // Target 0 has 3+4 hits in adjacent windows; target 1 has 5 hits in a
        // single window; target 2 has 3+3 hits but in windows too far apart to
        // be covered by a sliding window of 2.
        let counts = vec![
            (loc(0, 10), 3),
            (loc(0, 11), 4),
            (loc(1, 5), 5),
            (loc(2, 0), 3),
            (loc(2, 9), 3),
        ];
        let list = top_candidates(&counts, 2, 4);
        assert_eq!(list.len(), 3);
        let best = list.best().unwrap();
        assert_eq!(best.target, 0);
        assert_eq!(best.hits, 7);
        assert_eq!((best.window_begin, best.window_end), (10, 11));
        assert_eq!(list.second().unwrap().target, 1);
        assert_eq!(list.as_slice()[2].hits, 3);
    }

    #[test]
    fn sliding_window_of_one_counts_single_windows() {
        let counts = vec![(loc(0, 10), 3), (loc(0, 11), 4)];
        let list = top_candidates(&counts, 1, 2);
        assert_eq!(list.best().unwrap().hits, 4);
        assert_eq!(list.best().unwrap().window_begin, 11);
    }

    #[test]
    fn one_candidate_per_target() {
        // Two separate high-scoring regions in the same target must collapse
        // to the better one.
        let counts = vec![(loc(7, 0), 5), (loc(7, 100), 9)];
        let list = top_candidates(&counts, 3, 4);
        assert_eq!(list.len(), 1);
        assert_eq!(list.best().unwrap().hits, 9);
        assert_eq!(list.best().unwrap().window_begin, 100);
    }

    #[test]
    fn capacity_limits_candidates() {
        let counts: Vec<(Location, u32)> = (0..10).map(|t| (loc(t, 0), 10 - t)).collect();
        let list = top_candidates(&counts, 2, 3);
        assert_eq!(list.len(), 3);
        assert_eq!(list.as_slice()[0].hits, 10);
        assert_eq!(list.as_slice()[2].hits, 8);
    }

    #[test]
    fn merge_combines_partition_results() {
        let mut a = CandidateList::new(3);
        a.insert(Candidate {
            target: 0,
            window_begin: 0,
            window_end: 1,
            hits: 10,
        });
        a.insert(Candidate {
            target: 1,
            window_begin: 0,
            window_end: 0,
            hits: 4,
        });
        let mut b = CandidateList::new(3);
        b.insert(Candidate {
            target: 2,
            window_begin: 5,
            window_end: 6,
            hits: 8,
        });
        b.insert(Candidate {
            target: 0,
            window_begin: 7,
            window_end: 8,
            hits: 12,
        });
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.best().unwrap().target, 0);
        assert_eq!(a.best().unwrap().hits, 12);
        assert_eq!(a.second().unwrap().target, 2);
    }

    #[test]
    fn zero_hit_candidates_are_ignored() {
        let mut list = CandidateList::new(2);
        list.insert(Candidate {
            target: 0,
            window_begin: 0,
            window_end: 0,
            hits: 0,
        });
        assert!(list.is_empty());
    }

    #[test]
    fn deterministic_tie_break_by_target() {
        let counts = vec![(loc(5, 0), 7), (loc(3, 0), 7)];
        let list = top_candidates(&counts, 2, 2);
        assert_eq!(list.best().unwrap().target, 3);
    }

    // ---- merge oracle ------------------------------------------------
    //
    // `merge` is the keystone of scatter-gather classification: the
    // sharded paths (`crate::shard`, `mc-net`'s router) are bit-identical
    // to the unsharded path only if merging per-shard top-m lists
    // reproduces the global top-m list exactly. The tests below pin that
    // lemma exhaustively on small universes against rebuild-from-scratch
    // oracles, so a future optimized merge (e.g. a sorted two-way merge)
    // cannot drift on ties, truncation or duplicate targets.

    fn cand(target: u32, window_begin: u32, hits: u32) -> Candidate {
        Candidate {
            target,
            window_begin,
            window_end: window_begin + 1,
            hits,
        }
    }

    fn list_of(capacity: usize, cands: &[Candidate]) -> CandidateList {
        let mut list = CandidateList::new(capacity);
        for &c in cands {
            list.insert(c);
        }
        list
    }

    /// `a.merge(&b)` must equal inserting `b`'s entries into `a` one by
    /// one — exhaustively over every pair of sub-multisets of a small
    /// candidate universe and every capacity, including hit ties and
    /// duplicate targets across the two lists.
    #[test]
    fn merge_matches_insert_oracle_exhaustively() {
        // 2 targets × 2 windows × 2 hit values = 8 distinct candidates.
        let universe: Vec<Candidate> = (1..=2u32)
            .flat_map(|t| [0u32, 5].into_iter().map(move |w| (t, w)))
            .flat_map(|(t, w)| [1u32, 2].into_iter().map(move |h| cand(t, w, h)))
            .collect();
        let mut cases = 0usize;
        // Each universe element goes to list A, list B or neither.
        for assignment in 0..3usize.pow(universe.len() as u32) {
            let mut a_items = Vec::new();
            let mut b_items = Vec::new();
            let mut code = assignment;
            for &c in &universe {
                match code % 3 {
                    0 => {}
                    1 => a_items.push(c),
                    _ => b_items.push(c),
                }
                code /= 3;
            }
            for capacity in 1..=3usize {
                let mut merged = list_of(capacity, &a_items);
                let b = list_of(capacity, &b_items);
                merged.merge(&b);
                let mut oracle = list_of(capacity, &a_items);
                for &c in b.as_slice() {
                    oracle.insert(c);
                }
                assert_eq!(merged, oracle, "a={a_items:?} b={b_items:?} cap={capacity}");
                cases += 1;
            }
        }
        assert_eq!(cases, 3usize.pow(8) * 3);
    }

    /// The sharding lemma: when the two lists' target sets are disjoint
    /// (shards partition targets) and both kept the *same* capacity m,
    /// merging the truncated per-shard lists equals building one
    /// capacity-m list from all raw candidates — exhaustively over hit
    /// assignments, so every tie pattern is covered.
    #[test]
    fn disjoint_merge_equals_global_top_m_exhaustively() {
        // One candidate per target (what `top_candidates_into` emits),
        // shard 1 owns targets {1, 2}, shard 2 owns {3, 4}.
        for h1 in 1..=3u32 {
            for h2 in 1..=3u32 {
                for h3 in 1..=3u32 {
                    for h4 in 1..=3u32 {
                        let raw = [
                            cand(1, 2, h1),
                            cand(2, 4, h2),
                            cand(3, 6, h3),
                            cand(4, 8, h4),
                        ];
                        for m in 1..=4usize {
                            let shard1 = list_of(m, &raw[..2]);
                            let shard2 = list_of(m, &raw[2..]);
                            let mut merged = CandidateList::new(m);
                            merged.merge(&shard1);
                            merged.merge(&shard2);
                            let global = list_of(m, &raw);
                            assert_eq!(merged, global, "hits=({h1},{h2},{h3},{h4}) m={m}");
                            // Merge order must not matter for disjoint
                            // targets (shard reply order is arbitrary).
                            let mut flipped = CandidateList::new(m);
                            flipped.merge(&shard2);
                            flipped.merge(&shard1);
                            assert_eq!(flipped, global);
                        }
                    }
                }
            }
        }
    }

    /// Duplicate targets across merged lists collapse to the best entry;
    /// on an exact hit tie the incumbent wins (`insert` replaces only on
    /// strictly more hits). This keep-first rule is why bit-equivalence
    /// needs disjoint shard targets — same-target ties from *different*
    /// lists would be order-dependent — and shard splits guarantee
    /// exactly that.
    #[test]
    fn duplicate_targets_keep_best_and_incumbent_on_ties() {
        let mut a = list_of(4, &[cand(7, 0, 5)]);
        a.merge(&list_of(4, &[cand(7, 9, 8)]));
        assert_eq!(a.as_slice(), &[cand(7, 9, 8)], "higher hits replace");

        let mut tie = list_of(4, &[cand(7, 0, 5)]);
        tie.merge(&list_of(4, &[cand(7, 9, 5)]));
        assert_eq!(tie.as_slice(), &[cand(7, 0, 5)], "ties keep incumbent");

        // With distinct hits the collapse is order-independent.
        let mut rev = list_of(4, &[cand(7, 9, 8)]);
        rev.merge(&list_of(4, &[cand(7, 0, 5)]));
        assert_eq!(rev.as_slice(), &[cand(7, 9, 8)]);
    }

    /// Merging into a smaller-capacity list truncates to the best m with
    /// the full tie order (hits desc, target asc, window asc) applied
    /// before the cut.
    #[test]
    fn merge_truncates_by_full_tie_order() {
        let big = list_of(
            4,
            &[cand(4, 0, 7), cand(2, 0, 7), cand(3, 0, 9), cand(1, 0, 1)],
        );
        let mut small = CandidateList::new(2);
        small.merge(&big);
        assert_eq!(small.as_slice(), &[cand(3, 0, 9), cand(2, 0, 7)]);
        // The tied target 4 lost to target 2 on the target tie-break.
    }
}
