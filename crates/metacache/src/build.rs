//! The build phase: turning reference genomes into a database.
//!
//! Two builders share the same windowing/sketching logic:
//!
//! * [`CpuBuilder`] — the original MetaCache CPU build (§4.1): a single
//!   hash-table inserter thread feeds the open-addressing host table with a
//!   per-feature location cap of 254. A producer–consumer variant
//!   ([`CpuBuilder::build_from_queue`]) reproduces the three-thread pipeline
//!   (parser / sketcher / inserter) of the paper.
//! * [`GpuBuilder`] — the GPU build (§5): reference targets are distributed
//!   over the devices of a [`MultiGpuSystem`] (a target never spans devices),
//!   each device sketches its windows with warp kernels and inserts into its
//!   own multi-bucket hash table, and all data movement / kernel work is
//!   charged to the device clocks so that the simulated build times of
//!   Table 3 can be reproduced.

use std::sync::Arc;

use mc_gpu_sim::{
    launch_warps_into, DeviceBuffer, KernelCost, LaunchConfig, MultiGpuSystem, SimDuration, Warp,
};
use mc_kmer::{Location, TargetId};
use mc_seqio::{BatchReceiver, SequenceRecord};
use mc_taxonomy::{TaxonId, Taxonomy};
use mc_warpcore::{
    FeatureStore, HostHashTable, HostTableConfig, MultiBucketConfig, MultiBucketHashTable,
    TableError,
};

use crate::config::MetaCacheConfig;
use crate::database::{Database, Partition, PartitionStore, TargetInfo};
use crate::error::MetaCacheError;
use crate::gpu::warp_sketch_to_slot;
use crate::sketch::{SketchScratch, Sketcher};

/// Statistics of a finished build.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BuildStats {
    /// Number of reference targets inserted.
    pub targets: usize,
    /// Number of reference windows sketched.
    pub windows: u64,
    /// Number of (feature, location) pairs inserted (after capping).
    pub locations_inserted: u64,
    /// Number of locations dropped by the per-feature cap.
    pub locations_dropped: u64,
    /// Simulated device time of the build (zero for the CPU builder, which
    /// is timed with the wall clock by the caller).
    pub sim_build_time: SimDuration,
    /// Bytes transferred host → device during the build.
    pub bytes_to_device: u64,
}

/// Per-target counters of one [`sketch_target_into`] walk.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SketchCounts {
    pub windows: u64,
    pub inserted: u64,
    pub dropped: u64,
}

/// Sketch one reference target window by window and insert every feature's
/// `(target, window)` location into `store` — the one insertion loop shared
/// by the CPU build path ([`CpuBuilder::add_target`]) and post-load
/// incremental insertion ([`Database::insert_target`]), so both produce
/// bit-identical tables for the same insertion order.
///
/// A [`TableError::ValueLimitReached`] counts as a dropped location (the
/// per-feature cap); any other table error aborts the walk and is returned.
/// `counts` accumulates through the walk, so the locations of a partially
/// sketched target are still accounted for on the error path.
pub(crate) fn sketch_target_into(
    sketcher: &Sketcher,
    scratch: &mut SketchScratch,
    record: &SequenceRecord,
    target_id: TargetId,
    store: &dyn FeatureStore,
    counts: &mut SketchCounts,
) -> Result<(), MetaCacheError> {
    let mut fatal: Option<TableError> = None;
    sketcher.for_each_window_sketch(&record.sequence, scratch, |window, features| {
        counts.windows += 1;
        for &feature in features {
            match store.insert(feature, Location::new(target_id, window)) {
                Ok(()) => counts.inserted += 1,
                Err(TableError::ValueLimitReached) => counts.dropped += 1,
                Err(e) => {
                    fatal = Some(e);
                    return std::ops::ControlFlow::Break(());
                }
            }
        }
        std::ops::ControlFlow::Continue(())
    });
    match fatal {
        Some(e) => Err(e.into()),
        None => Ok(()),
    }
}

/// The CPU builder (single inserter thread, host hash table).
pub struct CpuBuilder {
    config: MetaCacheConfig,
    sketcher: Sketcher,
    taxonomy: Taxonomy,
    targets: Vec<TargetInfo>,
    table: HostHashTable,
    stats: BuildStats,
    /// Reused across targets so reference sketching never allocates per
    /// window (see [`Sketcher::for_each_window_sketch`]).
    scratch: SketchScratch,
}

impl CpuBuilder {
    /// Create a builder with the given configuration and taxonomy.
    pub fn new(config: MetaCacheConfig, taxonomy: Taxonomy) -> Self {
        let sketcher = Sketcher::new(&config).expect("configuration must be valid");
        let table = HostHashTable::new(HostTableConfig {
            max_locations_per_key: config.max_locations_per_feature,
            ..Default::default()
        });
        Self {
            config,
            sketcher,
            taxonomy,
            targets: Vec::new(),
            table,
            stats: BuildStats::default(),
            scratch: SketchScratch::with_capacity(config.sketch_size),
        }
    }

    /// Add one reference target belonging to `taxon`.
    pub fn add_target(
        &mut self,
        record: SequenceRecord,
        taxon: TaxonId,
    ) -> Result<TargetId, MetaCacheError> {
        if !self.taxonomy.contains(taxon) {
            return Err(MetaCacheError::UnknownTaxon(taxon));
        }
        let target_id = self.targets.len() as TargetId;
        // Sketch window by window through the reused scratch (no per-window
        // allocation); table inserts take `&self`, so the sketch visitor can
        // insert directly. A fatal table error aborts the walk — the rest of
        // the genome is not sketched — and is returned here.
        let mut counts = SketchCounts::default();
        let walk = sketch_target_into(
            &self.sketcher,
            &mut self.scratch,
            &record,
            target_id,
            &self.table,
            &mut counts,
        );
        self.stats.locations_inserted += counts.inserted;
        self.stats.locations_dropped += counts.dropped;
        walk?;
        let windows_sketched = counts.windows;
        self.targets.push(TargetInfo {
            id: target_id,
            name: record.id().to_string(),
            taxon,
            length: record.sequence.len(),
            num_windows: self.sketcher.num_windows(record.sequence.len()),
        });
        self.stats.targets += 1;
        self.stats.windows += windows_sketched;
        Ok(target_id)
    }

    /// Add every record of an iterator, resolving each record's taxon with
    /// `taxon_of` (e.g. a lookup from accession to taxid).
    pub fn add_records<I, F>(
        &mut self,
        records: I,
        mut taxon_of: F,
    ) -> Result<usize, MetaCacheError>
    where
        I: IntoIterator<Item = SequenceRecord>,
        F: FnMut(&SequenceRecord) -> TaxonId,
    {
        let mut added = 0;
        for record in records {
            let taxon = taxon_of(&record);
            self.add_target(record, taxon)?;
            added += 1;
        }
        Ok(added)
    }

    /// Consume batches from a producer–consumer queue until the producers
    /// close it — the three-thread build pipeline of §4.1 (parsers produce,
    /// this consumer sketches and inserts).
    pub fn build_from_queue<F>(
        &mut self,
        receiver: BatchReceiver,
        mut taxon_of: F,
    ) -> Result<usize, MetaCacheError>
    where
        F: FnMut(&SequenceRecord) -> TaxonId,
    {
        let mut added = 0;
        for batch in receiver.iter() {
            for record in batch.records {
                let taxon = taxon_of(&record);
                self.add_target(record, taxon)?;
                added += 1;
            }
        }
        Ok(added)
    }

    /// Build statistics so far.
    pub fn stats(&self) -> BuildStats {
        self.stats
    }

    /// Finish the build, producing a single-partition database.
    pub fn finish(self) -> Database {
        let lineages = self.taxonomy.lineage_cache();
        let target_ids: Vec<TargetId> = self.targets.iter().map(|t| t.id).collect();
        Database {
            config: self.config,
            targets: self.targets,
            taxonomy: self.taxonomy,
            lineages,
            partitions: vec![Partition {
                store: PartitionStore::Host(self.table),
                targets: target_ids,
            }],
        }
    }
}

/// The GPU builder: one partition (multi-bucket table) per device.
pub struct GpuBuilder<'sys> {
    config: MetaCacheConfig,
    sketcher: Sketcher,
    taxonomy: Taxonomy,
    system: &'sys MultiGpuSystem,
    targets: Vec<TargetInfo>,
    partitions: Vec<GpuPartitionState>,
    stats: BuildStats,
    next_device: usize,
    /// Flat per-launch feature buffer (one `sketch_size` slot per window),
    /// reused across targets so warp sketching never allocates per window.
    feature_buf: Vec<mc_kmer::Feature>,
}

struct GpuPartitionState {
    table: MultiBucketHashTable,
    targets: Vec<TargetId>,
    /// Keeps the table's bytes charged against the device for the lifetime of
    /// the build.
    _reservation: DeviceBuffer<u8>,
}

impl<'sys> GpuBuilder<'sys> {
    /// Create a GPU builder over `system`, sizing each device's table for
    /// `expected_locations_per_device` (feature, location) pairs.
    pub fn new(
        config: MetaCacheConfig,
        taxonomy: Taxonomy,
        system: &'sys MultiGpuSystem,
        expected_locations_per_device: usize,
    ) -> Result<Self, MetaCacheError> {
        let sketcher = Sketcher::new(&config)?;
        let mut partitions = Vec::with_capacity(system.device_count());
        for device in system.devices() {
            let table_config = MultiBucketConfig {
                max_locations_per_key: config.max_locations_per_feature,
                ..MultiBucketConfig::for_expected_values(
                    expected_locations_per_device.max(1024),
                    0.8,
                )
            };
            let table = MultiBucketHashTable::new(table_config);
            // Charge the (statically allocated, §5.1) table against the
            // device's memory; fails if the database partition does not fit.
            let reservation = DeviceBuffer::<u8>::zeroed(Arc::clone(device), table.bytes())?;
            partitions.push(GpuPartitionState {
                table,
                targets: Vec::new(),
                _reservation: reservation,
            });
        }
        Ok(Self {
            config,
            sketcher,
            taxonomy,
            system,
            targets: Vec::new(),
            partitions,
            stats: BuildStats::default(),
            next_device: 0,
            feature_buf: Vec::new(),
        })
    }

    /// Add one reference target; it is assigned to the least-loaded device
    /// (by bases inserted so far) and never split across devices.
    pub fn add_target(
        &mut self,
        record: SequenceRecord,
        taxon: TaxonId,
    ) -> Result<TargetId, MetaCacheError> {
        if !self.taxonomy.contains(taxon) {
            return Err(MetaCacheError::UnknownTaxon(taxon));
        }
        let device_count = self.partitions.len().max(1);
        let device_idx = self.next_device % device_count;
        self.next_device += 1;
        let target_id = self.targets.len() as TargetId;

        // Host -> device transfer of the raw sequence batch.
        let stream = mc_gpu_sim::Stream::new(Arc::clone(self.system.device(device_idx)));
        stream.transfer(record.sequence.len() as u64);
        self.stats.bytes_to_device += record.sequence.len() as u64;

        // One warp per window: encode, hash, sort, sketch (steps 1–3), then
        // insert the sketch features into the device's multi-bucket table.
        let params = self.sketcher.window_params();
        let kmer = params.kmer();
        let sketch_size = self.config.sketch_size;
        let windows = self.sketcher.num_windows(record.sequence.len());
        let sequence = &record.sequence;
        // One warp per window, all features written into one flat per-launch
        // buffer (reused across targets) instead of an owned Vec per window.
        let sketches: Vec<(usize, KernelCost)> = launch_warps_into(
            LaunchConfig::new(windows as usize),
            sketch_size,
            &mut self.feature_buf,
            |warp: Warp, slot: &mut [mc_kmer::Feature]| {
                let w = warp.warp_id as u32;
                let (start, end) = mc_kmer::window::window_range(w, sequence.len(), params);
                warp_sketch_to_slot(&warp, &sequence[start..end], kmer, sketch_size, slot)
            },
        );
        let mut kernel_cost = KernelCost {
            launches: 1,
            ..Default::default()
        };
        let partition = &mut self.partitions[device_idx];
        for (window, &(filled, cost)) in (0u32..).zip(&sketches) {
            kernel_cost = kernel_cost.merge(cost);
            let slot = window as usize * sketch_size;
            for &feature in &self.feature_buf[slot..slot + filled] {
                // Warp-aggregated insertion: charge one probe-group traversal
                // plus the value write.
                kernel_cost.ops += 8;
                kernel_cost.bytes_written += 8;
                match partition
                    .table
                    .insert(feature, Location::new(target_id, window))
                {
                    Ok(()) => self.stats.locations_inserted += 1,
                    Err(TableError::ValueLimitReached) => self.stats.locations_dropped += 1,
                    Err(e) => return Err(e.into()),
                }
            }
        }
        kernel_cost.launches = 1;
        stream.launch_kernel(kernel_cost);

        partition.targets.push(target_id);
        self.targets.push(TargetInfo {
            id: target_id,
            name: record.id().to_string(),
            taxon,
            length: record.sequence.len(),
            num_windows: windows,
        });
        self.stats.targets += 1;
        self.stats.windows += sketches.len() as u64;
        Ok(target_id)
    }

    /// Add every record of an iterator (taxon resolved per record).
    pub fn add_records<I, F>(
        &mut self,
        records: I,
        mut taxon_of: F,
    ) -> Result<usize, MetaCacheError>
    where
        I: IntoIterator<Item = SequenceRecord>,
        F: FnMut(&SequenceRecord) -> TaxonId,
    {
        let mut added = 0;
        for record in records {
            let taxon = taxon_of(&record);
            self.add_target(record, taxon)?;
            added += 1;
        }
        Ok(added)
    }

    /// Build statistics so far, with the simulated build time set to the
    /// node's makespan.
    pub fn stats(&self) -> BuildStats {
        BuildStats {
            sim_build_time: self.system.makespan(),
            ..self.stats
        }
    }

    /// Finish the build, producing one partition per device.
    pub fn finish(self) -> Database {
        let lineages = self.taxonomy.lineage_cache();
        let partitions = self
            .partitions
            .into_iter()
            .map(|p| Partition {
                store: PartitionStore::MultiBucket(p.table),
                targets: p.targets,
            })
            .collect();
        Database {
            config: self.config,
            targets: self.targets,
            taxonomy: self.taxonomy,
            lineages,
            partitions,
        }
    }
}

/// Estimate the number of (feature, location) pairs a set of records will
/// insert — used to size the per-device tables before a GPU build.
pub fn estimate_locations(config: &MetaCacheConfig, records: &[SequenceRecord]) -> usize {
    let sketcher = Sketcher::new(config).expect("valid config");
    records
        .iter()
        .map(|r| sketcher.num_windows(r.sequence.len()) as usize * config.sketch_size)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_seqio::BatchQueue;
    use mc_taxonomy::Rank;

    fn make_seq(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                b"ACGT"[(state >> 33) as usize % 4]
            })
            .collect()
    }

    fn taxonomy() -> Taxonomy {
        let mut t = Taxonomy::with_root();
        t.add_node(10, 1, Rank::Genus, "G").unwrap();
        t.add_node(100, 10, Rank::Species, "G a").unwrap();
        t.add_node(101, 10, Rank::Species, "G b").unwrap();
        t
    }

    #[test]
    fn cpu_build_creates_single_partition_database() {
        let mut builder = CpuBuilder::new(MetaCacheConfig::for_tests(), taxonomy());
        builder
            .add_target(SequenceRecord::new("a", make_seq(10_000, 1)), 100)
            .unwrap();
        builder
            .add_target(SequenceRecord::new("b", make_seq(12_000, 2)), 101)
            .unwrap();
        let stats = builder.stats();
        assert_eq!(stats.targets, 2);
        assert!(stats.windows > 0);
        assert!(stats.locations_inserted > 0);
        let db = builder.finish();
        assert_eq!(db.partition_count(), 1);
        assert_eq!(db.target_count(), 2);
        // 10,000 bases at stride 112 -> ceil((10000 - 16 + 1) / 112) = 90 windows.
        assert_eq!(db.targets[0].num_windows, 90);
        assert!(db.total_locations() > 0);
        assert_eq!(db.taxon_of_target(0), 100);
    }

    #[test]
    fn unknown_taxon_is_rejected() {
        let mut builder = CpuBuilder::new(MetaCacheConfig::for_tests(), taxonomy());
        let err = builder
            .add_target(SequenceRecord::new("a", make_seq(1_000, 1)), 999)
            .unwrap_err();
        assert!(matches!(err, MetaCacheError::UnknownTaxon(999)));
    }

    #[test]
    fn queue_based_build_matches_direct_build() {
        let records: Vec<SequenceRecord> = (0..6)
            .map(|i| SequenceRecord::new(format!("r{i}"), make_seq(5_000, i as u64 + 1)))
            .collect();
        // Direct build.
        let mut direct = CpuBuilder::new(MetaCacheConfig::for_tests(), taxonomy());
        direct
            .add_records(records.clone(), |r| {
                if r.id().ends_with(['0', '2', '4']) {
                    100
                } else {
                    101
                }
            })
            .unwrap();
        let direct_db = direct.finish();

        // Producer-consumer build.
        let queue = BatchQueue::new(4, 2);
        let (tx, rx) = queue.split();
        let producer = std::thread::spawn(move || tx.send_all(records).unwrap());
        let mut queued = CpuBuilder::new(MetaCacheConfig::for_tests(), taxonomy());
        let added = queued
            .build_from_queue(rx, |r| {
                if r.id().ends_with(['0', '2', '4']) {
                    100
                } else {
                    101
                }
            })
            .unwrap();
        producer.join().unwrap();
        assert_eq!(added, 6);
        let queued_db = queued.finish();
        assert_eq!(direct_db.target_count(), queued_db.target_count());
        assert_eq!(direct_db.total_locations(), queued_db.total_locations());
    }

    #[test]
    fn cpu_location_cap_drops_repetitive_features() {
        // A highly repetitive reference generates the same features in many
        // windows; the 254-location cap must kick in.
        let config = MetaCacheConfig {
            max_locations_per_feature: 16,
            ..MetaCacheConfig::for_tests()
        };
        let repetitive: Vec<u8> = make_seq(500, 3)
            .iter()
            .cycle()
            .take(100_000)
            .copied()
            .collect();
        let mut builder = CpuBuilder::new(config, taxonomy());
        builder
            .add_target(SequenceRecord::new("rep", repetitive), 100)
            .unwrap();
        assert!(builder.stats().locations_dropped > 0);
    }

    #[test]
    fn gpu_build_partitions_targets_across_devices() {
        let system = MultiGpuSystem::dgx1(4);
        let records: Vec<SequenceRecord> = (0..8)
            .map(|i| SequenceRecord::new(format!("g{i}"), make_seq(8_000, i as u64 + 10)))
            .collect();
        let expected = estimate_locations(&MetaCacheConfig::for_tests(), &records);
        let mut builder = GpuBuilder::new(
            MetaCacheConfig::for_tests(),
            taxonomy(),
            &system,
            expected / 4 + 1024,
        )
        .unwrap();
        builder
            .add_records(records, |r| {
                if r.id().as_bytes()[1] % 2 == 0 {
                    100
                } else {
                    101
                }
            })
            .unwrap();
        let stats = builder.stats();
        assert!(stats.sim_build_time > SimDuration::ZERO);
        assert!(stats.bytes_to_device >= 8 * 8_000);
        let db = builder.finish();
        assert_eq!(db.partition_count(), 4);
        assert_eq!(db.target_count(), 8);
        // Every partition got 2 of the 8 targets (round-robin assignment).
        for p in &db.partitions {
            assert_eq!(p.targets.len(), 2);
        }
        // No target appears in two partitions.
        let mut all: Vec<TargetId> = db
            .partitions
            .iter()
            .flat_map(|p| p.targets.clone())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn gpu_build_fails_when_partition_exceeds_device_memory() {
        // Devices with only 1 MB cannot hold a table sized for millions of
        // locations — mirrors "AFS31+RefSeq202 did not fit in the memory of 4
        // V100 GPUs".
        let system = MultiGpuSystem::new(
            (0..2)
                .map(|i| mc_gpu_sim::DeviceInfo::with_capacity(i, 1 << 20))
                .collect(),
            mc_gpu_sim::Topology::DenseNvlink,
        );
        let result = GpuBuilder::new(
            MetaCacheConfig::for_tests(),
            taxonomy(),
            &system,
            10_000_000,
        );
        assert!(matches!(result, Err(MetaCacheError::Device(_))));
    }

    #[test]
    fn gpu_and_cpu_builds_store_same_location_counts_without_capping() {
        let system = MultiGpuSystem::dgx1(2);
        let records: Vec<SequenceRecord> = (0..4)
            .map(|i| SequenceRecord::new(format!("g{i}"), make_seq(6_000, i as u64 + 30)))
            .collect();
        let config = MetaCacheConfig::for_tests();
        let mut cpu = CpuBuilder::new(config, taxonomy());
        cpu.add_records(records.clone(), |_| 100).unwrap();
        let expected = estimate_locations(&config, &records);
        let mut gpu = GpuBuilder::new(config, taxonomy(), &system, expected).unwrap();
        gpu.add_records(records, |_| 100).unwrap();
        assert_eq!(
            cpu.stats().locations_inserted + cpu.stats().locations_dropped,
            gpu.stats().locations_inserted + gpu.stats().locations_dropped
        );
        let cpu_db = cpu.finish();
        let gpu_db = gpu.finish();
        assert_eq!(cpu_db.total_locations(), gpu_db.total_locations());
    }

    #[test]
    fn estimate_locations_is_close_to_actual() {
        let config = MetaCacheConfig::for_tests();
        let records: Vec<SequenceRecord> = (0..3)
            .map(|i| SequenceRecord::new(format!("e{i}"), make_seq(20_000, i as u64 + 50)))
            .collect();
        let estimate = estimate_locations(&config, &records);
        let mut builder = CpuBuilder::new(config, taxonomy());
        builder.add_records(records, |_| 100).unwrap();
        let actual = builder.stats().locations_inserted + builder.stats().locations_dropped;
        let ratio = estimate as f64 / actual as f64;
        assert!(
            ratio > 0.95 && ratio < 1.3,
            "estimate {estimate} vs actual {actual}"
        );
    }
}
