//! Error type of the metacache crate.

use mc_taxonomy::TaxonId;

/// Errors raised by database construction, serialization and querying.
#[derive(Debug)]
pub enum MetaCacheError {
    /// Invalid configuration parameters.
    Config(String),
    /// A reference target referenced an unknown taxon.
    UnknownTaxon(TaxonId),
    /// Underlying hash-table error (table full).
    Table(mc_warpcore::TableError),
    /// Taxonomy extension failure (duplicate or reserved taxon id).
    Taxonomy(mc_taxonomy::TaxonomyError),
    /// Device memory exhausted while building a partition.
    Device(mc_gpu_sim::DeviceError),
    /// I/O failure while saving or loading a database.
    Io(std::io::Error),
    /// Malformed database file.
    Format(String),
    /// Sequence parsing failure.
    SeqIo(mc_seqio::SeqIoError),
}

impl std::fmt::Display for MetaCacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetaCacheError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            MetaCacheError::UnknownTaxon(id) => write!(f, "unknown taxon {id}"),
            MetaCacheError::Table(e) => write!(f, "hash table error: {e}"),
            MetaCacheError::Taxonomy(e) => write!(f, "taxonomy error: {e}"),
            MetaCacheError::Device(e) => write!(f, "device error: {e}"),
            MetaCacheError::Io(e) => write!(f, "I/O error: {e}"),
            MetaCacheError::Format(msg) => write!(f, "database format error: {msg}"),
            MetaCacheError::SeqIo(e) => write!(f, "sequence I/O error: {e}"),
        }
    }
}

impl std::error::Error for MetaCacheError {}

impl From<mc_warpcore::TableError> for MetaCacheError {
    fn from(e: mc_warpcore::TableError) -> Self {
        MetaCacheError::Table(e)
    }
}

impl From<mc_taxonomy::TaxonomyError> for MetaCacheError {
    fn from(e: mc_taxonomy::TaxonomyError) -> Self {
        MetaCacheError::Taxonomy(e)
    }
}

impl From<mc_gpu_sim::DeviceError> for MetaCacheError {
    fn from(e: mc_gpu_sim::DeviceError) -> Self {
        MetaCacheError::Device(e)
    }
}

impl From<std::io::Error> for MetaCacheError {
    fn from(e: std::io::Error) -> Self {
        MetaCacheError::Io(e)
    }
}

impl From<mc_seqio::SeqIoError> for MetaCacheError {
    fn from(e: mc_seqio::SeqIoError) -> Self {
        MetaCacheError::SeqIo(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = MetaCacheError::Config("sketch size must be positive".into());
        assert!(e.to_string().contains("sketch size"));
        let e = MetaCacheError::UnknownTaxon(42);
        assert!(e.to_string().contains("42"));
        let e: MetaCacheError = mc_warpcore::TableError::TableFull.into();
        assert!(e.to_string().contains("full"));
    }
}
