//! A deterministic fault-injection TCP proxy for torturing the serving
//! stack.
//!
//! [`ChaosProxy`] sits between a client and an upstream server and applies
//! a scripted [`Fault`] to each direction of each proxied connection:
//! delays, byte-dribbling (slow-loris), truncated frames, stalls,
//! connection resets, and one-way half-closes. Plans are per-connection in
//! accept order and every parameter is explicit (or drawn from a seeded
//! generator), so a fault schedule replays identically — chaos tests are
//! regression tests, not flaky ones.
//!
//! Connections beyond the scripted plan list are forwarded verbatim, which
//! is exactly what a convergence test wants: the retry client burns
//! through the faulty connections, then succeeds on a clean one.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Poll granularity of the pump threads: how quickly they notice the stop
/// flag while blocked on a quiet socket.
const TICK: Duration = Duration::from_millis(25);

/// One direction's scripted misbehavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Forward verbatim.
    None,
    /// Forward verbatim after an initial one-off delay.
    Delay(Duration),
    /// Slow-loris: forward in `chunk`-byte pieces with `pause` between
    /// them, stretching every frame over many small writes.
    Dribble { chunk: usize, pause: Duration },
    /// Forward exactly `after` bytes, then cleanly close this direction —
    /// the receiver sees EOF, typically mid-frame.
    Truncate { after: usize },
    /// Forward exactly `after` bytes, then go silent while holding the
    /// connection open — the receiver's deadline, not its parser, must
    /// catch this.
    Stall { after: usize },
    /// Forward exactly `after` bytes, then tear down the whole proxied
    /// connection (both directions, both sockets) at once — the closest a
    /// userspace proxy gets to a crashed peer.
    Reset { after: usize },
    /// Forward exactly `after` bytes, then half-close this direction only;
    /// the opposite direction keeps flowing.
    HalfClose { after: usize },
}

impl Fault {
    /// Draw one fault deterministically from `seed`, covering every class
    /// across a sweep of seeds. Byte counts are chosen small enough to cut
    /// inside handshakes and frame headers.
    pub fn seeded(seed: u64) -> Self {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let r = xorshift(&mut state);
        let after = 3 + (xorshift(&mut state) % 40) as usize;
        match r % 7 {
            0 => Self::None,
            1 => Self::Delay(Duration::from_millis(1 + xorshift(&mut state) % 40)),
            2 => Self::Dribble {
                chunk: 1 + (xorshift(&mut state) % 3) as usize,
                pause: Duration::from_millis(1 + xorshift(&mut state) % 5),
            },
            3 => Self::Truncate { after },
            4 => Self::Stall { after },
            5 => Self::Reset { after },
            _ => Self::HalfClose { after },
        }
    }

    /// Whether this fault eventually kills or wedges its connection (so a
    /// client on it must fail over) rather than merely slowing it down.
    pub fn is_lossy(&self) -> bool {
        matches!(
            self,
            Self::Truncate { .. }
                | Self::Stall { .. }
                | Self::Reset { .. }
                | Self::HalfClose { .. }
        )
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = state.wrapping_add(1);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// The fault script of one proxied connection: independent faults for the
/// client→server (`upstream`) and server→client (`downstream`) directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnPlan {
    /// Applied to bytes flowing client → server.
    pub upstream: Fault,
    /// Applied to bytes flowing server → client.
    pub downstream: Fault,
}

/// Forward both directions verbatim.
pub const PASSTHROUGH: ConnPlan = ConnPlan {
    upstream: Fault::None,
    downstream: Fault::None,
};

impl ConnPlan {
    /// A plan applying `fault` upstream only.
    pub fn upstream(fault: Fault) -> Self {
        Self {
            upstream: fault,
            downstream: Fault::None,
        }
    }

    /// A plan applying `fault` downstream only.
    pub fn downstream(fault: Fault) -> Self {
        Self {
            upstream: Fault::None,
            downstream: fault,
        }
    }

    /// Draw a whole plan from `seed`: one direction gets a seeded fault,
    /// the other stays clean (mirroring how real networks usually break
    /// one way at a time).
    pub fn seeded(seed: u64) -> Self {
        let mut state = seed;
        let fault = Fault::seeded(xorshift(&mut state));
        if xorshift(&mut state).is_multiple_of(2) {
            Self::upstream(fault)
        } else {
            Self::downstream(fault)
        }
    }
}

/// A fault-injecting TCP proxy in front of one upstream address.
///
/// Accepts on an ephemeral loopback port ([`ChaosProxy::local_addr`]); the
/// `n`-th accepted connection runs the `n`-th [`ConnPlan`] (verbatim
/// forwarding once the script runs out). [`ChaosProxy::shutdown`] tears
/// down every proxied connection and joins all pump threads — bounded by
/// the pumps' poll tick, never by a stuck peer.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Start proxying `upstream` with the given per-connection scripts.
    pub fn start(upstream: SocketAddr, plans: Vec<ConnPlan>) -> std::io::Result<Self> {
        let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let acceptor = std::thread::spawn(move || {
            let mut pumps: Vec<std::thread::JoinHandle<()>> = Vec::new();
            let mut index = 0usize;
            loop {
                let Ok((client, _)) = listener.accept() else {
                    break;
                };
                if stop_accept.load(Ordering::SeqCst) {
                    break; // the shutdown wake-up (or a raced late arrival)
                }
                let plan = plans.get(index).copied().unwrap_or(PASSTHROUGH);
                index += 1;
                let Ok(server) = TcpStream::connect(upstream) else {
                    continue; // upstream gone: drop the client on the floor
                };
                let _ = client.set_nodelay(true);
                let _ = server.set_nodelay(true);
                let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else {
                    continue;
                };
                let up_stop = Arc::clone(&stop_accept);
                let down_stop = Arc::clone(&stop_accept);
                pumps.push(std::thread::spawn(move || {
                    pump(client_r, server, plan.upstream, &up_stop);
                }));
                pumps.push(std::thread::spawn(move || {
                    pump(server_r, client, plan.downstream, &down_stop);
                }));
            }
            for pump in pumps {
                let _ = pump.join();
            }
        });
        Ok(Self {
            addr,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The address clients should connect to instead of the upstream.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop proxying: close every proxied connection, join every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor with a throwaway connection (same trick as the
        // server's shutdown); the pumps notice the flag within a tick.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Sleep `total` in stop-aware slices; true if the stop flag fired.
fn sleep_poll(total: Duration, stop: &AtomicBool) -> bool {
    let mut remaining = total;
    while remaining > Duration::ZERO {
        if stop.load(Ordering::SeqCst) {
            return true;
        }
        let slice = remaining.min(TICK);
        std::thread::sleep(slice);
        remaining -= slice;
    }
    stop.load(Ordering::SeqCst)
}

/// Kill both sockets of a proxied pair outright.
fn teardown(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

/// Pump one direction, applying `fault`. Exits when the source reaches
/// EOF (propagating the half-close), the fault script says so, either
/// socket errors out, or the stop flag fires.
fn pump(mut src: TcpStream, mut dst: TcpStream, fault: Fault, stop: &AtomicBool) {
    // Short read timeouts keep the pump responsive to the stop flag even
    // when the wire is quiet; a bounded write timeout keeps shutdown from
    // waiting on a peer that stopped reading.
    let _ = src.set_read_timeout(Some(TICK));
    let _ = dst.set_write_timeout(Some(Duration::from_secs(5)));
    let mut buf = [0u8; 16 * 1024];
    let mut forwarded = 0usize;
    let mut delayed = false;
    loop {
        if stop.load(Ordering::SeqCst) {
            teardown(&src, &dst);
            return;
        }
        let n = match src.read(&mut buf) {
            Ok(0) => {
                // Source half-closed: propagate the EOF, leave the other
                // direction alone.
                let _ = dst.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => {
                teardown(&src, &dst);
                return;
            }
        };
        let bytes = &buf[..n];
        match fault {
            Fault::None => {
                if dst.write_all(bytes).is_err() {
                    teardown(&src, &dst);
                    return;
                }
            }
            Fault::Delay(before) => {
                if !delayed {
                    delayed = true;
                    if sleep_poll(before, stop) {
                        teardown(&src, &dst);
                        return;
                    }
                }
                if dst.write_all(bytes).is_err() {
                    teardown(&src, &dst);
                    return;
                }
            }
            Fault::Dribble { chunk, pause } => {
                for piece in bytes.chunks(chunk.max(1)) {
                    if dst.write_all(piece).is_err() {
                        teardown(&src, &dst);
                        return;
                    }
                    if sleep_poll(pause, stop) {
                        teardown(&src, &dst);
                        return;
                    }
                }
            }
            Fault::Truncate { after } | Fault::HalfClose { after } => {
                let take = after.saturating_sub(forwarded).min(n);
                if take > 0 && dst.write_all(&bytes[..take]).is_err() {
                    teardown(&src, &dst);
                    return;
                }
                forwarded += take;
                if forwarded >= after {
                    // Close this direction only: receiver sees EOF.
                    let _ = dst.shutdown(Shutdown::Write);
                    let _ = src.shutdown(Shutdown::Read);
                    return;
                }
            }
            Fault::Reset { after } => {
                let take = after.saturating_sub(forwarded).min(n);
                if take > 0 && dst.write_all(&bytes[..take]).is_err() {
                    teardown(&src, &dst);
                    return;
                }
                forwarded += take;
                if forwarded >= after {
                    teardown(&src, &dst);
                    return;
                }
            }
            Fault::Stall { after } => {
                let take = after.saturating_sub(forwarded).min(n);
                if take > 0 && dst.write_all(&bytes[..take]).is_err() {
                    teardown(&src, &dst);
                    return;
                }
                forwarded += take;
                if forwarded >= after {
                    // Go silent but keep the connection open: stop reading
                    // (TCP backpressure stalls the sender) and park until
                    // shutdown. Only a receiver-side deadline gets out.
                    while !sleep_poll(TICK, stop) {}
                    teardown(&src, &dst);
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An upstream echo server good for one connection at a time.
    fn echo_upstream() -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            while let Ok((mut conn, _)) = listener.accept() {
                let mut buf = [0u8; 1024];
                loop {
                    match conn.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            if conn.write_all(&buf[..n]).is_err() {
                                break;
                            }
                        }
                    }
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn passthrough_and_dribble_deliver_bytes_intact() {
        let (upstream, _echo) = echo_upstream();
        let proxy = ChaosProxy::start(
            upstream,
            vec![
                PASSTHROUGH,
                ConnPlan::upstream(Fault::Dribble {
                    chunk: 1,
                    pause: Duration::from_millis(1),
                }),
            ],
        )
        .unwrap();
        for _ in 0..2 {
            let mut conn = TcpStream::connect(proxy.local_addr()).unwrap();
            conn.write_all(b"hello chaos").unwrap();
            let mut back = [0u8; 11];
            conn.read_exact(&mut back).unwrap();
            assert_eq!(&back, b"hello chaos");
        }
        proxy.shutdown();
    }

    #[test]
    fn truncate_cuts_after_exact_byte_count() {
        let (upstream, _echo) = echo_upstream();
        let proxy = ChaosProxy::start(
            upstream,
            vec![ConnPlan::downstream(Fault::Truncate { after: 5 })],
        )
        .unwrap();
        let mut conn = TcpStream::connect(proxy.local_addr()).unwrap();
        conn.write_all(b"0123456789").unwrap();
        let mut back = Vec::new();
        conn.read_to_end(&mut back).unwrap();
        assert_eq!(back, b"01234");
        proxy.shutdown();
    }

    #[test]
    fn seeded_plans_are_deterministic_and_cover_fault_classes() {
        let a: Vec<ConnPlan> = (0..64).map(ConnPlan::seeded).collect();
        let b: Vec<ConnPlan> = (0..64).map(ConnPlan::seeded).collect();
        assert_eq!(a, b);
        let lossy = a
            .iter()
            .filter(|p| p.upstream.is_lossy() || p.downstream.is_lossy())
            .count();
        assert!(lossy > 8, "seeded sweep must exercise lossy faults");
        assert!(lossy < 64, "seeded sweep must also pass clean traffic");
    }
}
