//! `mc-serve` — serve a MetaCache database over TCP, or talk to a server.
//!
//! ```text
//! Usage:
//!   mc-serve serve --refs <fasta> [--listen <addr>] [--workers N]
//!                  [--batch N] [--queue N]
//!                  [--shard K --shard-count N]
//!       Build a database from a reference FASTA/FASTQ (every record
//!       becomes one species-level target) and serve it until stdin closes,
//!       then drain gracefully. With --shard K --shard-count N, the same
//!       deterministic build is split round-robin into N target shards and
//!       only shard K's slice of the hash table is held and served — run N
//!       such processes (same refs, one per K) behind `mc-serve route`.
//!
//!   mc-serve route --refs <fasta> --shard <addr> [--shard <addr> ...]
//!                  [--listen <addr>] [--workers N] [--batch N] [--queue N]
//!       Scatter-gather router over N shard servers: every classify batch
//!       fans out to all shards as candidate queries, the per-shard top-hit
//!       lists merge losslessly, and the final classification step runs on
//!       the router. Clients speak the ordinary protocol — a routed
//!       topology is indistinguishable from a single server (and
//!       bit-identical to it). --refs must name the same reference file the
//!       shard servers were built from (the router rebuilds the shared
//!       metadata deterministically; its hash table is dropped).
//!
//!   mc-serve classify --addr <host:port> <reads-file>
//!       Stream a FASTA/FASTQ file through a running server and print one
//!       TSV line per read: id, taxon, rank, best hit count.
//!
//!   mc-serve reload --addr <host:port>
//!       Hot-swap a running server's database with zero downtime (protocol
//!       v5): the server re-reads its --refs file, builds the next database
//!       epoch, and swaps it in while in-flight batches finish on the old
//!       one. Against a router, the swap propagates to every shard server
//!       (router metadata first, then each shard). Prints the new database
//!       generation on success.
//!
//!   mc-serve smoke [--reads N] [--swarm N] [--chaos]
//!       Self-contained loopback round-trip on a synthetic database:
//!       starts a server on an ephemeral port, classifies N reads through
//!       a NetClient, verifies the results against the in-process session
//!       bit for bit, shuts down cleanly. With --swarm N, additionally
//!       parks N idle handshaken connections on the server, asserts the
//!       process thread count stays O(workers) (the event loop serves
//!       connections, threads serve compute), and classifies a full pass
//!       amid the swarm. With --chaos, adds a pass through
//!       a fault-injecting proxy (truncation, reset, dribble, stall) driven
//!       by the backoff-retry client — results must still be bit-identical.
//!       Exit code 0 = pass (CI smoke).
//!
//!   mc-serve chaos --upstream <host:port> [--seed N] [--conns N]
//!       Fault-injection proxy for manual torture: listens on an ephemeral
//!       loopback port and forwards to the upstream server, applying a
//!       seeded fault script to the first N connections (later ones pass
//!       through verbatim). Runs until stdin closes.
//! ```

use std::sync::Arc;
use std::time::Duration;

use mc_net::{
    ChaosProxy, ClientConfig, ConnPlan, Fault, NetClient, NetServer, ReloadHook, RetryClient,
    RetryPolicy, RouterBackend, RouterConfig,
};
use mc_seqio::{SequenceReader, SequenceRecord};
use mc_taxonomy::{Rank, Taxonomy, NO_TAXON};
use metacache::build::CpuBuilder;
use metacache::query::Classifier;
use metacache::serving::{EngineConfig, ServingEngine};
use metacache::MetaCacheConfig;

fn usage() -> ! {
    eprintln!(
        "usage: mc-serve serve --refs <file> [--listen <addr>] [--workers N] [--batch N] [--queue N] [--shard K --shard-count N]\n       mc-serve route --refs <file> --shard <host:port> [--shard <host:port> ...] [--listen <addr>] [--workers N] [--batch N] [--queue N]\n       mc-serve classify --addr <host:port> <reads-file>\n       mc-serve reload --addr <host:port>\n       mc-serve smoke [--reads N] [--swarm N] [--chaos]\n       mc-serve chaos --upstream <host:port> [--seed N] [--conns N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("route") => route(&args[1..]),
        Some("classify") => classify(&args[1..]),
        Some("reload") => reload(&args[1..]),
        Some("smoke") => smoke(&args[1..]),
        Some("chaos") => chaos(&args[1..]),
        _ => usage(),
    };
    std::process::exit(code);
}

/// Pull `--flag value` out of an argument list; returns the remainder.
fn parse_flags(args: &[String], flags: &[&str]) -> (Vec<(String, String)>, Vec<String>) {
    let mut values = Vec::new();
    let mut rest = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if flags.contains(&arg.as_str()) {
            let Some(value) = iter.next() else { usage() };
            values.push((arg.clone(), value.clone()));
        } else if arg.starts_with('-') {
            usage();
        } else {
            rest.push(arg.clone());
        }
    }
    (values, rest)
}

fn flag<'a>(values: &'a [(String, String)], name: &str) -> Option<&'a str> {
    values
        .iter()
        .rev()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn parsed<T: std::str::FromStr>(values: &[(String, String)], name: &str, default: T) -> T {
    match flag(values, name) {
        None => default,
        Some(text) => text.parse().unwrap_or_else(|_| {
            eprintln!("mc-serve: invalid value for {name}: {text}");
            std::process::exit(2);
        }),
    }
}

/// Build a database from a reference file: each record becomes one target
/// under its own species taxon. The build is deterministic, so every
/// process given the same file agrees on target ids — the property the
/// sharded topology rests on (shard servers answer with global target ids
/// the router resolves against its own build of the same file).
fn build_from_refs(path: &str) -> Result<metacache::Database, String> {
    let mut taxonomy = Taxonomy::with_root();
    let stream = SequenceReader::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let mut records = Vec::new();
    for record in stream {
        records.push(record.map_err(|e| format!("parse {path}: {e}"))?);
    }
    if records.is_empty() {
        return Err(format!("{path}: no reference sequences"));
    }
    let mut builder = CpuBuilder::new(MetaCacheConfig::default(), {
        for (i, record) in records.iter().enumerate() {
            let taxon = 100 + i as u32;
            taxonomy
                .add_node(taxon, 1, Rank::Species, record.id())
                .map_err(|e| format!("taxonomy: {e}"))?;
        }
        taxonomy
    });
    for (i, record) in records.into_iter().enumerate() {
        let taxon = 100 + i as u32;
        builder
            .add_target(record, taxon)
            .map_err(|e| format!("add target: {e}"))?;
    }
    Ok(builder.finish())
}

/// Resolve the engine shape flags shared by `serve` and `route`.
fn engine_config(flags: &[(String, String)]) -> EngineConfig {
    EngineConfig {
        workers: parsed(flags, "--workers", EngineConfig::default().workers),
        queue_capacity: parsed(flags, "--queue", 4),
        batch_records: parsed(flags, "--batch", 256),
        session_max_in_flight: 0,
        ..EngineConfig::default()
    }
}

/// Bind `engine` on `listen` and run it until stdin closes (or a "quit"
/// line), then drain both the server and the engine — the shared tail of
/// `serve` and `route`. With a `reload` hook, `mc-serve reload` (protocol
/// v5) hot-swaps the database through it.
fn run_engine(
    engine: ServingEngine,
    listen: &str,
    workers: usize,
    reload: Option<ReloadHook>,
) -> i32 {
    let server = match NetServer::bind(&engine, listen) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("mc-serve: bind {listen}: {e}");
            return 1;
        }
    };
    let server = match reload {
        Some(hook) => server.with_reload(hook),
        None => server,
    };
    let handle = server.handle();
    eprintln!(
        "mc-serve: listening on {} ({} workers); close stdin to stop",
        handle.local_addr(),
        workers
    );

    let stats = std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run());
        // Drain stdin; EOF (or a "quit" line) triggers the graceful stop.
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::stdin().read_line(&mut line) {
                Ok(0) => break,
                Ok(_) if line.trim() == "quit" => break,
                Ok(_) => {}
                Err(_) => break,
            }
        }
        handle.shutdown();
        runner.join().expect("server thread")
    });
    match stats {
        Ok(stats) => {
            let engine_stats = engine.shutdown();
            eprintln!(
                "mc-serve: drained; {} connections, {} requests, {} reads ({} protocol errors); engine classified {} records",
                stats.connections,
                stats.requests,
                stats.reads,
                stats.protocol_errors,
                engine_stats.records_classified
            );
            0
        }
        Err(e) => {
            eprintln!("mc-serve: server error: {e}");
            1
        }
    }
}

fn serve(args: &[String]) -> i32 {
    let (flags, rest) = parse_flags(
        args,
        &[
            "--refs",
            "--listen",
            "--workers",
            "--batch",
            "--queue",
            "--shard",
            "--shard-count",
        ],
    );
    if !rest.is_empty() {
        usage();
    }
    let Some(refs) = flag(&flags, "--refs") else {
        usage()
    };
    let listen = flag(&flags, "--listen").unwrap_or("127.0.0.1:7878");
    let config = engine_config(&flags);
    let shard_count: usize = parsed(&flags, "--shard-count", 1);
    let shard: usize = parsed(&flags, "--shard", 0);
    let sharded = flag(&flags, "--shard").is_some() || flag(&flags, "--shard-count").is_some();
    if sharded && shard >= shard_count {
        eprintln!("mc-serve: --shard {shard} out of range for --shard-count {shard_count}");
        return 2;
    }

    let db = match build_from_refs(refs) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("mc-serve: {e}");
            return 1;
        }
    };
    let db = if sharded {
        // Build the full table first, then keep only this shard's slice:
        // splitting one finished build (instead of building per shard)
        // keeps the per-feature location cap global, which is what makes
        // the scatter-gather merge bit-identical (see metacache::shard).
        let split = match metacache::ShardedDatabase::round_robin(db, shard_count) {
            Ok(split) => split,
            Err(e) => {
                eprintln!("mc-serve: shard split: {e}");
                return 1;
            }
        };
        let slice = Arc::clone(&split.shards()[shard]);
        eprintln!(
            "mc-serve: serving shard {shard}/{shard_count}: {} of {} targets, {} of {} table bytes",
            slice.partitions[0].targets.len(),
            slice.target_count(),
            slice.table_bytes(),
            split.table_bytes(),
        );
        slice
    } else {
        Arc::new(db)
    };
    eprintln!(
        "mc-serve: database ready ({} targets, {} features)",
        db.target_count(),
        db.total_features()
    );
    // The reload hook re-runs the exact build pipeline of startup — same
    // refs path, same deterministic build, same shard split — and swaps
    // the result in as the next epoch. In-flight batches finish on the old
    // database; the swap is the moment new batches observe the new one.
    let refs_path = refs.to_string();
    let hook: ReloadHook = Arc::new(move |engine: &ServingEngine| {
        let db = build_from_refs(&refs_path)?;
        let db = if sharded {
            let split = metacache::ShardedDatabase::round_robin(db, shard_count)
                .map_err(|e| format!("shard split: {e}"))?;
            Arc::clone(&split.shards()[shard])
        } else {
            Arc::new(db)
        };
        eprintln!(
            "mc-serve: reloading {} ({} targets, {} features)",
            refs_path,
            db.target_count(),
            db.total_features()
        );
        Ok(engine.reload_backend(metacache::HostBackend::new(db)))
    });
    let engine = ServingEngine::host_with_config(db, config);
    run_engine(engine, listen, config.workers, Some(hook))
}

/// Scatter-gather router over N shard servers (see the module docs and
/// [`mc_net::router`]).
fn route(args: &[String]) -> i32 {
    let (flags, rest) = parse_flags(
        args,
        &[
            "--refs",
            "--listen",
            "--workers",
            "--batch",
            "--queue",
            "--shard",
        ],
    );
    if !rest.is_empty() {
        usage();
    }
    let Some(refs) = flag(&flags, "--refs") else {
        usage()
    };
    // --shard repeats, one occurrence per shard server, in scatter order.
    let shards: Vec<String> = flags
        .iter()
        .filter(|(k, _)| k == "--shard")
        .map(|(_, v)| v.clone())
        .collect();
    if shards.is_empty() {
        usage();
    }
    let listen = flag(&flags, "--listen").unwrap_or("127.0.0.1:7879");
    let config = engine_config(&flags);

    // The router needs only the shared metadata (targets, taxonomy,
    // lineages) — rebuild it deterministically from the same refs the
    // shard servers use and drop the hash table.
    let meta = match build_from_refs(refs) {
        Ok(db) => Arc::new(db.metadata_view()),
        Err(e) => {
            eprintln!("mc-serve: {e}");
            return 1;
        }
    };
    eprintln!(
        "mc-serve: routing {} targets across {} shard servers",
        meta.target_count(),
        shards.len()
    );
    let router_config = RouterConfig {
        client: ClientConfig {
            connect_timeout: Some(Duration::from_secs(5)),
            request_timeout: Some(Duration::from_secs(30)),
            ..ClientConfig::default()
        },
        policy: RetryPolicy::default(),
    };
    let backend = match RouterBackend::new(meta, &shards, router_config.clone()) {
        Ok(backend) => backend,
        Err(e) => {
            eprintln!("mc-serve: resolve shard addresses: {e}");
            return 1;
        }
    };
    // Routed reload: rebuild the router's metadata from the refs and swap
    // it first, then tell every shard server to reload. Order matters —
    // new metadata over old shard tables degrades gracefully (old target
    // ids stay valid in the grown target table), whereas new shard tables
    // over old metadata would answer with target ids the merge step cannot
    // resolve. The router workers' generation-agreement re-query bridges
    // the window in which the shard sweep is mid-propagation.
    let refs_path = refs.to_string();
    let shard_addrs = shards.clone();
    let hook_config = router_config;
    let hook: ReloadHook = Arc::new(move |engine: &ServingEngine| {
        let meta = build_from_refs(&refs_path).map(|db| Arc::new(db.metadata_view()))?;
        let backend = RouterBackend::new(meta, &shard_addrs, hook_config.clone())
            .map_err(|e| format!("resolve shard addresses: {e}"))?;
        let generation = engine.reload_backend(backend);
        for addr in &shard_addrs {
            let mut client = NetClient::connect(addr.as_str())
                .map_err(|e| format!("reload shard {addr}: {e}"))?;
            let shard_generation = client
                .reload()
                .map_err(|e| format!("reload shard {addr}: {e}"))?;
            eprintln!("mc-serve: shard {addr} reloaded to generation {shard_generation}");
        }
        Ok(generation)
    });
    let engine = ServingEngine::new(backend, config);
    run_engine(engine, listen, config.workers, Some(hook))
}

fn classify(args: &[String]) -> i32 {
    let (flags, rest) = parse_flags(args, &["--addr"]);
    let (Some(addr), [reads_file]) = (flag(&flags, "--addr"), rest.as_slice()) else {
        usage()
    };
    let stream = match SequenceReader::open(reads_file) {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("mc-serve: open {reads_file}: {e}");
            return 1;
        }
    };
    let mut client = match NetClient::connect(addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("mc-serve: connect {addr}: {e}");
            return 1;
        }
    };
    // Materialise ids alongside the stream so output lines carry them.
    let mut reads = Vec::new();
    for record in stream {
        match record {
            Ok(record) => reads.push(record),
            Err(e) => {
                eprintln!("mc-serve: parse {reads_file}: {e}");
                return 1;
            }
        }
    }
    let ids: Vec<String> = reads.iter().map(|r| r.id().to_string()).collect();
    match client.classify_iter(reads) {
        Ok((classifications, summary)) => {
            let mut stdout = String::new();
            for (id, c) in ids.iter().zip(&classifications) {
                let rank = c.rank.map_or("-", |r| r.name());
                let taxon = if c.taxon == NO_TAXON {
                    "unclassified".to_string()
                } else {
                    c.taxon.to_string()
                };
                stdout.push_str(&format!("{id}\t{taxon}\t{rank}\t{}\n", c.best_hits));
            }
            print!("{stdout}");
            eprintln!(
                "mc-serve: classified {} reads in {} requests (peak {} in flight)",
                summary.reads, summary.requests, summary.peak_in_flight
            );
            0
        }
        Err(e) => {
            eprintln!("mc-serve: classify: {e}");
            1
        }
    }
}

/// Trigger a zero-downtime database reload on a running server (v5
/// `Reload`/`ReloadAck`): the server's reload hook rebuilds its database
/// and swaps epochs while streams keep flowing.
fn reload(args: &[String]) -> i32 {
    let (flags, rest) = parse_flags(args, &["--addr"]);
    if !rest.is_empty() {
        usage();
    }
    let Some(addr) = flag(&flags, "--addr") else {
        usage()
    };
    let mut client = match NetClient::connect(addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("mc-serve: connect {addr}: {e}");
            return 1;
        }
    };
    match client.reload() {
        Ok(generation) => {
            eprintln!("mc-serve: {addr} reloaded; database generation {generation}");
            0
        }
        Err(e) => {
            eprintln!("mc-serve: reload {addr}: {e}");
            1
        }
    }
}

/// Fault-injection proxy in front of a running server, for manual torture
/// (`mc-serve smoke --chaos` is the scripted CI variant of the same idea).
fn chaos(args: &[String]) -> i32 {
    let (flags, rest) = parse_flags(args, &["--upstream", "--seed", "--conns"]);
    if !rest.is_empty() {
        usage();
    }
    let Some(upstream) = flag(&flags, "--upstream") else {
        usage()
    };
    let seed: u64 = parsed(&flags, "--seed", 1);
    let conns: usize = parsed(&flags, "--conns", 16);
    let upstream_addr = match std::net::ToSocketAddrs::to_socket_addrs(&upstream)
        .ok()
        .and_then(|mut addrs| addrs.next())
    {
        Some(addr) => addr,
        None => {
            eprintln!("mc-serve chaos: cannot resolve upstream {upstream}");
            return 1;
        }
    };
    let plans: Vec<ConnPlan> = (0..conns as u64)
        .map(|i| ConnPlan::seeded(seed ^ i))
        .collect();
    for (i, plan) in plans.iter().enumerate() {
        eprintln!("mc-serve chaos: conn {i}: {plan:?}");
    }
    let proxy = match ChaosProxy::start(upstream_addr, plans) {
        Ok(proxy) => proxy,
        Err(e) => {
            eprintln!("mc-serve chaos: start proxy: {e}");
            return 1;
        }
    };
    eprintln!(
        "mc-serve chaos: proxying {} -> {} ({} scripted conns, then verbatim); close stdin to stop",
        proxy.local_addr(),
        upstream_addr,
        conns
    );
    let mut line = String::new();
    loop {
        line.clear();
        match std::io::stdin().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim() == "quit" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    proxy.shutdown();
    eprintln!("mc-serve chaos: stopped");
    0
}

/// This process's live OS thread count (`Threads:` in /proc/self/status);
/// `None` where procfs is unavailable.
fn os_thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
}

fn synthetic_genome(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b"ACGT"[(state >> 33) as usize % 4]
        })
        .collect()
}

/// Self-contained loopback round-trip: synthetic database, ephemeral-port
/// server, one pipelined client; verifies network ≡ in-process bit for bit.
fn smoke(args: &[String]) -> i32 {
    let mut args: Vec<String> = args.to_vec();
    let with_chaos = match args.iter().position(|a| a == "--chaos") {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    };
    let (flags, rest) = parse_flags(&args, &["--reads", "--swarm"]);
    if !rest.is_empty() {
        usage();
    }
    let read_count: usize = parsed(&flags, "--reads", 200);
    let swarm: usize = parsed(&flags, "--swarm", 0);

    let mut taxonomy = Taxonomy::with_root();
    taxonomy.add_node(100, 1, Rank::Species, "smoke a").unwrap();
    taxonomy.add_node(101, 1, Rank::Species, "smoke b").unwrap();
    let genomes = [synthetic_genome(20_000, 41), synthetic_genome(20_000, 42)];
    let mut builder = CpuBuilder::new(MetaCacheConfig::default(), taxonomy);
    builder
        .add_target(SequenceRecord::new("refA", genomes[0].clone()), 100)
        .unwrap();
    builder
        .add_target(SequenceRecord::new("refB", genomes[1].clone()), 101)
        .unwrap();
    let db = Arc::new(builder.finish());
    let reads: Vec<SequenceRecord> = (0..read_count)
        .map(|i| {
            let genome = &genomes[i % 2];
            let offset = (i * 97) % (genome.len() - 160);
            SequenceRecord::new(format!("r{i}"), genome[offset..offset + 150].to_vec())
        })
        .collect();
    let expected = Classifier::new(Arc::clone(&db)).classify_batch(&reads);

    let engine = ServingEngine::host_with_config(
        Arc::clone(&db),
        EngineConfig {
            workers: 2,
            queue_capacity: 4,
            batch_records: 32,
            session_max_in_flight: 0,
            ..EngineConfig::default()
        },
    );
    let server = match NetServer::bind(&engine, "127.0.0.1:0") {
        Ok(server) => server,
        Err(e) => {
            eprintln!("mc-serve smoke: bind: {e}");
            return 1;
        }
    };
    let handle = server.handle();
    let addr = handle.local_addr();

    let verdict = std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run());
        let result = (|| -> Result<(), String> {
            let mut client =
                NetClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
            let batch = client
                .classify_batch(&reads)
                .map_err(|e| format!("classify_batch: {e}"))?;
            if batch != expected {
                return Err("network classify_batch diverged from in-process results".into());
            }
            let (streamed, summary) = client
                .classify_iter(reads.iter().cloned())
                .map_err(|e| format!("classify_iter: {e}"))?;
            if streamed != expected {
                return Err("network classify_iter diverged from in-process results".into());
            }
            // The packed (v2) and verbatim (v1) encodings must classify
            // bit-identically — a v1 client against this v2 server is the
            // compatibility matrix's hard case.
            let mut v1 = mc_net::NetClient::connect_with(
                addr,
                mc_net::ClientConfig {
                    version: 1,
                    ..mc_net::ClientConfig::default()
                },
            )
            .map_err(|e| format!("v1 connect {addr}: {e}"))?;
            let v1_results = v1
                .classify_batch(&reads)
                .map_err(|e| format!("v1 classify_batch: {e}"))?;
            if v1_results != expected {
                return Err("v1 (verbatim) client diverged from in-process results".into());
            }
            eprintln!(
                "mc-serve smoke: {} reads on {} ≡ in-process, v{} packed ≡ v1 verbatim \
                 ({} requests, peak {} in flight, credits {})",
                reads.len(),
                addr,
                client.protocol_version(),
                summary.requests,
                summary.peak_in_flight,
                client.credits()
            );
            if swarm > 0 {
                // Swarm pass: N idle handshaken connections park on the
                // event loop while a full classify pass runs amid them.
                // Connections must cost fds, not threads — the thread
                // count is O(workers), independent of the swarm size.
                let threads_before = os_thread_count();
                let mut drones = Vec::with_capacity(swarm);
                let hello = mc_net::protocol::Frame::Hello {
                    magic: mc_net::protocol::MAGIC,
                    version: mc_net::protocol::PROTOCOL_VERSION,
                    batch_records: 0,
                    max_in_flight: 0,
                    auth_token: None,
                }
                .encode()
                .map_err(|e| format!("swarm hello encode: {e}"))?;
                for i in 0..swarm {
                    use std::io::Write as _;
                    let mut drone = std::net::TcpStream::connect(addr)
                        .map_err(|e| format!("swarm connect {i}: {e}"))?;
                    drone
                        .write_all(&hello)
                        .map_err(|e| format!("swarm hello {i}: {e}"))?;
                    match mc_net::protocol::read_frame(&mut drone) {
                        Ok(Some(mc_net::protocol::Frame::HelloAck { .. })) => {}
                        other => return Err(format!("swarm handshake {i}: {other:?}")),
                    }
                    drones.push(drone);
                }
                let threads_during = os_thread_count();
                if let (Some(before), Some(during)) = (threads_before, threads_during) {
                    if during > before {
                        return Err(format!(
                            "swarm of {swarm} connections grew the thread count \
                             {before} -> {during}; connections must not cost threads"
                        ));
                    }
                }
                let mut amid =
                    NetClient::connect(addr).map_err(|e| format!("connect amid swarm: {e}"))?;
                let swarmed = amid
                    .classify_batch(&reads)
                    .map_err(|e| format!("classify amid swarm: {e}"))?;
                if swarmed != expected {
                    return Err("results amid the swarm diverged from in-process".into());
                }
                eprintln!(
                    "mc-serve smoke: swarm pass ≡ in-process ({} idle connections, threads {})",
                    swarm,
                    match threads_during {
                        Some(n) => n.to_string(),
                        None => "n/a".into(),
                    }
                );
                drop(drones);
            }
            if with_chaos {
                // Fourth pass, through a fault-injecting proxy: handshake
                // truncation, a mid-stream reset, slow-loris dribble and a
                // stall — the retry client must converge bit-identically.
                let plans = vec![
                    ConnPlan::upstream(Fault::Truncate { after: 9 }),
                    ConnPlan::downstream(Fault::Reset { after: 30 }),
                    ConnPlan::upstream(Fault::Stall { after: 7 }),
                    ConnPlan::upstream(Fault::Dribble {
                        chunk: 16,
                        pause: Duration::from_millis(1),
                    }),
                ];
                let proxy =
                    ChaosProxy::start(addr, plans).map_err(|e| format!("chaos proxy: {e}"))?;
                let mut retry = RetryClient::connect_with(
                    proxy.local_addr(),
                    ClientConfig {
                        connect_timeout: Some(Duration::from_secs(2)),
                        request_timeout: Some(Duration::from_secs(2)),
                        ..ClientConfig::default()
                    },
                    RetryPolicy {
                        max_retries: 12,
                        base_delay: Duration::from_millis(5),
                        max_delay: Duration::from_millis(100),
                        seed: 7,
                    },
                )
                .map_err(|e| format!("chaos connect: {e}"))?;
                let (chaotic, _) = retry
                    .classify_iter(reads.iter().cloned())
                    .map_err(|e| format!("chaos classify_iter: {e}"))?;
                if chaotic != expected {
                    return Err("chaos-pass results diverged from in-process results".into());
                }
                let rstats = retry.stats();
                eprintln!(
                    "mc-serve smoke: chaos pass ≡ in-process \
                     ({} connects, {} retries, {} busy sheds)",
                    rstats.connects, rstats.retries, rstats.busy_sheds
                );
                proxy.shutdown();
            }
            Ok(())
        })();
        handle.shutdown();
        let stats = runner.join().expect("server thread");
        result.and_then(|()| stats.map_err(|e| format!("server: {e}")))
    });

    let engine_stats = engine.shutdown();
    match verdict {
        Ok(stats) => {
            // Three clean passes (v2 classify_batch, v2 classify_iter, v1
            // classify_batch) plus one exact pass amid the swarm; the
            // chaos pass classifies every read at least once more, plus
            // replays of unacknowledged chunks.
            let passes = 3 + u64::from(swarm > 0) + u64::from(with_chaos);
            let floor = passes * reads.len() as u64;
            let exact = !with_chaos;
            if (exact && engine_stats.records_classified != floor)
                || engine_stats.records_classified < floor
            {
                eprintln!(
                    "mc-serve smoke: engine classified {} records, expected {}{}",
                    engine_stats.records_classified,
                    if exact { "" } else { "at least " },
                    floor
                );
                return 1;
            }
            eprintln!(
                "mc-serve smoke: PASS ({} connections, {} requests, clean shutdown)",
                stats.connections, stats.requests
            );
            0
        }
        Err(e) => {
            eprintln!("mc-serve smoke: FAIL: {e}");
            1
        }
    }
}
