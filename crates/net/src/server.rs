//! The TCP serving front-end: connections mapped onto [`ServingEngine`]
//! sessions.
//!
//! One [`NetServer`] wraps one engine. The thread layout is exactly the
//! ISSUE's shape — an acceptor plus a reader/writer pair per connection:
//!
//! ```text
//!                    ┌───────────────┐ accept  ┌──────────────────────────────┐
//!  clients ─────────►│ acceptor      │────────►│ connection (one per client)  │
//!                    │ (run() thread)│         │  reader thread ──► request   │
//!                    └───────────────┘         │   decode frames    channel   │
//!                                              │                      │       │
//!                                              │  writer thread ◄─────┘       │
//!                                              │   owns the Session,          │
//!                                              │   classify_owned per request,│
//!                                              │   encodes Results frames,    │
//!                                              │   recycles record buffers    │
//!                                              └──────────────────────────────┘
//! ```
//!
//! * **Backpressure is credit-based and reuses the engine's bound.** The
//!   session's `max_in_flight` caps batches resident in the engine; the
//!   connection's request channel is small and bounded; once both are full
//!   the reader stops reading and TCP flow control pushes back on the
//!   client. The handshake tells the client its credit
//!   ([`Frame::HelloAck`]`::credits`) so a well-behaved client pipelines
//!   exactly that many requests.
//! * **Errors are frames, not resets.** Malformed input, version mismatch
//!   and internal failures produce a [`Frame::Error`] with a machine-
//!   readable code before the connection closes.
//! * **Failure is isolated per connection.** A client that disconnects
//!   mid-request, sends garbage, or whose request panics a backend worker
//!   only tears down its own session (the engine discards that session's
//!   in-flight batches); every other connection keeps streaming.
//! * **Shutdown drains.** [`ServerHandle::shutdown`] stops the acceptor and
//!   half-closes every live connection's read side: readers see EOF,
//!   already-decoded requests still classify and their results still reach
//!   the client, then [`NetServer::run`] joins every connection thread and
//!   returns. Because the server borrows the engine, a following
//!   [`ServingEngine::shutdown`] is guaranteed to see an idle engine — the
//!   two drains compose.

use std::collections::HashMap;
use std::io::{self, BufWriter, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use mc_seqio::SequenceRecord;
use metacache::serving::{ServingEngine, SessionConfig};
use metacache::{Candidate, Classification, Classifier, Database, QueryScratch};

use crate::protocol::{
    constant_time_eq, decode_classify_into, encode_candidate_results_into, encode_results_into,
    frame_type, read_frame, read_frame_buf, write_frame, ErrorCode, Frame, NetError, ProtocolError,
    BUSY_CONNECTION, CANDIDATES_MIN_VERSION, LIVENESS_MIN_VERSION, MAGIC, MIN_PROTOCOL_VERSION,
    PACKED_MIN_VERSION, PROTOCOL_VERSION,
};

/// Tuning knobs of a [`NetServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-connection session overrides (`0` fields = engine defaults).
    pub session: SessionConfig,
    /// Decoded requests buffered between a connection's reader and writer
    /// threads (in addition to the engine-side credit bound).
    pub pending_requests: usize,
    /// Set `TCP_NODELAY` on accepted connections (request/response traffic
    /// is latency-bound; leave on unless batching huge requests).
    pub nodelay: bool,
    /// Socket write timeout per connection. A client that stops *reading*
    /// while keeping the connection open would otherwise block its writer
    /// thread in `send` forever — and with it the graceful drain of
    /// [`NetServer::run`]. After this long blocked on one write, the
    /// connection is treated as gone and torn down. `None` disables the
    /// bound (not recommended for untrusted clients).
    pub write_timeout: Option<Duration>,
    /// Deadline for completing one frame once its first byte has arrived.
    /// The deadline is fixed at frame start, so a slow-loris peer dribbling
    /// bytes cannot extend it — the whole frame lands within this bound or
    /// the connection is torn down with [`ErrorCode::TimedOut`]. `None`
    /// disables the bound (not recommended for untrusted clients).
    pub read_timeout: Option<Duration>,
    /// Idle reaping: the longest a connection may sit at a frame boundary
    /// with no traffic at all. Any frame resets the clock — an idle-but-
    /// alive v3 client stays off the reaper by sending [`Frame::Ping`]
    /// within this window. `None` keeps idle connections forever.
    pub idle_timeout: Option<Duration>,
    /// Deadline from accept to a complete `Hello` (covers both the wait
    /// for the first byte and a dribbled handshake). `None` disables it.
    pub handshake_timeout: Option<Duration>,
    /// Cap on simultaneously served connections (`0` = unbounded). Past
    /// the cap, an accepted connection is answered with a connection-level
    /// [`Frame::Busy`] and closed instead of being served.
    pub max_connections: usize,
    /// Cap on reads being classified across all connections at once
    /// (`0` = unbounded). A v3 request that would push past it is shed
    /// with a request-level [`Frame::Busy`] instead of queueing; v1/v2
    /// connections are exempt (their protocol has no shed answer) and
    /// block exactly as before. Setting the cap also arms high-water
    /// admission: a brand-new session is shed while the engine's fair
    /// queue is saturated. `0` disables request shedding entirely —
    /// every client keeps the legacy blocking backpressure.
    pub max_inflight_records: usize,
    /// The retry hint carried by every [`Frame::Busy`] this server sends.
    pub retry_after_ms: u32,
    /// Require this pre-shared token in every `Hello` (compared in
    /// constant time); a missing or wrong token is answered with
    /// [`ErrorCode::Unauthorized`]. `None` disables auth.
    pub auth_token: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            session: SessionConfig::default(),
            pending_requests: 2,
            nodelay: true,
            write_timeout: Some(Duration::from_secs(30)),
            read_timeout: Some(Duration::from_secs(30)),
            idle_timeout: Some(Duration::from_secs(300)),
            handshake_timeout: Some(Duration::from_secs(10)),
            max_connections: 0,
            max_inflight_records: 0,
            retry_after_ms: 100,
            auth_token: None,
        }
    }
}

/// Lifetime counters of a server, returned by [`NetServer::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted (including ones that failed the handshake).
    pub connections: u64,
    /// `Classify` requests answered with `Results`.
    pub requests: u64,
    /// Reads classified across all connections.
    pub reads: u64,
    /// Connections terminated with a protocol error frame.
    pub protocol_errors: u64,
    /// Requests lost to an internal failure (backend worker panic).
    pub internal_errors: u64,
    /// Requests refused with a request-level [`Frame::Busy`] (load shed).
    pub shed_requests: u64,
    /// Connections refused with a connection-level [`Frame::Busy`].
    pub shed_connections: u64,
    /// Connections torn down by a read/idle/handshake deadline.
    pub timeouts: u64,
    /// Handshakes rejected for a missing or wrong auth token.
    pub auth_failures: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    reads: AtomicU64,
    protocol_errors: AtomicU64,
    internal_errors: AtomicU64,
    shed_requests: AtomicU64,
    shed_connections: AtomicU64,
    timeouts: AtomicU64,
    auth_failures: AtomicU64,
}

/// State shared between the acceptor, its connections and every
/// [`ServerHandle`].
struct Shared {
    shutting_down: AtomicBool,
    /// Read-half handles of live connections, keyed by connection id, so
    /// shutdown can half-close them and let their streams drain.
    connections: Mutex<HashMap<u64, TcpStream>>,
    next_connection: AtomicU64,
    /// Reads currently being classified across all connections — the gauge
    /// behind [`ServerConfig::max_inflight_records`].
    inflight_records: AtomicU64,
    counters: Counters,
    addr: SocketAddr,
}

/// A cloneable remote control of a running [`NetServer`]: triggers the
/// graceful drain from any thread.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The address the server is listening on (useful with an ephemeral
    /// port bind like `127.0.0.1:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Begin the graceful drain: stop accepting, half-close every live
    /// connection's read side so in-flight requests finish and their
    /// results are delivered, then let [`NetServer::run`] join and return.
    /// Idempotent.
    ///
    /// The acceptor is woken with a loopback connection to its own listen
    /// address; the bound address must therefore be reachable from this
    /// process (always true for loopback and unspecified binds) and one
    /// spare file descriptor must be available — the connect is retried
    /// briefly to ride out transient fd exhaustion.
    pub fn shutdown(&self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Half-close live connections: readers see EOF and drain.
        let connections = self
            .shared
            .connections
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        for stream in connections.values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        drop(connections);
        // Wake the acceptor with a throwaway connection. This is the only
        // thing that unblocks a parked accept(), so retry a few times
        // rather than giving up on one failed connect.
        for _ in 0..5 {
            if TcpStream::connect(connect_addr(self.shared.addr)).is_ok() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }
}

/// An unspecified bind address (0.0.0.0 / ::) is not connectable; aim the
/// shutdown wake-up at loopback instead.
fn connect_addr(addr: SocketAddr) -> SocketAddr {
    match addr.ip() {
        IpAddr::V4(ip) if ip.is_unspecified() => {
            SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), addr.port())
        }
        IpAddr::V6(ip) if ip.is_unspecified() => {
            SocketAddr::new(IpAddr::V6(Ipv6Addr::LOCALHOST), addr.port())
        }
        _ => addr,
    }
}

/// A TCP front-end serving one [`ServingEngine`]: each accepted connection
/// becomes one engine [`Session`](metacache::serving::Session).
///
/// The server borrows the engine, so the borrow checker proves the engine
/// outlives every connection — and that [`ServingEngine::shutdown`] can only
/// run after the server has fully drained.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use mc_net::{NetClient, NetServer};
/// use mc_seqio::SequenceRecord;
/// use mc_taxonomy::{Rank, Taxonomy};
/// use metacache::{build::CpuBuilder, serving::ServingEngine, MetaCacheConfig};
///
/// # let mut taxonomy = Taxonomy::with_root();
/// # taxonomy.add_node(100, 1, Rank::Species, "Species A").unwrap();
/// # let mut state = 5u64;
/// # let genome: Vec<u8> = (0..8000).map(|_| {
/// #     state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
/// #     b"ACGT"[(state >> 33) as usize % 4]
/// # }).collect();
/// # let mut builder = CpuBuilder::new(MetaCacheConfig::default(), taxonomy);
/// # builder.add_target(SequenceRecord::new("refA", genome.clone()), 100).unwrap();
/// let engine = ServingEngine::host(Arc::new(builder.finish()));
/// let server = NetServer::bind(&engine, "127.0.0.1:0").unwrap();
/// let handle = server.handle();
///
/// std::thread::scope(|scope| {
///     scope.spawn(|| server.run());
///     let mut client = NetClient::connect(handle.local_addr()).unwrap();
///     let reads = vec![SequenceRecord::new("r0", genome[200..350].to_vec())];
///     let classifications = client.classify_batch(&reads).unwrap();
///     assert_eq!(classifications[0].taxon, 100);
///     drop(client);
///     handle.shutdown(); // graceful drain; run() returns
/// });
/// let stats = engine.shutdown(); // engine drain composes with the server's
/// assert_eq!(stats.records_classified, 1);
/// ```
pub struct NetServer<'e> {
    engine: &'e ServingEngine,
    listener: TcpListener,
    config: ServerConfig,
    shared: Arc<Shared>,
}

impl<'e> NetServer<'e> {
    /// Bind a server for `engine` on `addr` (use port `0` for an ephemeral
    /// port, then [`ServerHandle::local_addr`]). Default [`ServerConfig`].
    pub fn bind(engine: &'e ServingEngine, addr: impl std::net::ToSocketAddrs) -> io::Result<Self> {
        Self::bind_with(engine, addr, ServerConfig::default())
    }

    /// Bind with an explicit configuration.
    pub fn bind_with(
        engine: &'e ServingEngine,
        addr: impl std::net::ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let shared = Arc::new(Shared {
            shutting_down: AtomicBool::new(false),
            connections: Mutex::new(HashMap::new()),
            next_connection: AtomicU64::new(1),
            inflight_records: AtomicU64::new(0),
            counters: Counters::default(),
            addr: listener.local_addr()?,
        });
        Ok(Self {
            engine,
            listener,
            config,
            shared,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A handle for triggering the graceful drain from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serve until [`ServerHandle::shutdown`] is called: accept connections
    /// on the calling thread, a reader/writer thread pair per connection.
    /// Returns after every live connection has drained and closed.
    pub fn run(self) -> io::Result<ServerStats> {
        let shared = &self.shared;
        let engine = self.engine;
        let config = &self.config;
        std::thread::scope(|scope| {
            loop {
                let (stream, _peer) = match self.listener.accept() {
                    Ok(accepted) => accepted,
                    Err(_) if shared.shutting_down.load(Ordering::SeqCst) => break,
                    // Transient accept failures (per-connection resource
                    // errors, fd exhaustion) must not kill the server — but
                    // must not busy-spin the acceptor either.
                    Err(_) => {
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        continue;
                    }
                };
                if shared.shutting_down.load(Ordering::SeqCst) {
                    // Late arrival (possibly the shutdown wake-up itself):
                    // refuse politely and stop accepting.
                    refuse_shutting_down(stream);
                    break;
                }
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                if config.max_connections > 0 {
                    let live = shared
                        .connections
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .len();
                    if live >= config.max_connections {
                        // Shed at the door: a connection-level Busy instead
                        // of an unbounded accept backlog. The write happens
                        // on the acceptor thread, so bound it tightly.
                        shared
                            .counters
                            .shed_connections
                            .fetch_add(1, Ordering::Relaxed);
                        refuse_busy(stream, config.retry_after_ms);
                        continue;
                    }
                }
                let id = shared.next_connection.fetch_add(1, Ordering::Relaxed);
                match stream.try_clone() {
                    Ok(clone) => {
                        shared
                            .connections
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .insert(id, clone);
                    }
                    // An unregistered connection could never be half-closed
                    // by shutdown() and would hang the drain; refuse it
                    // instead of serving it untracked (try_clone only fails
                    // under fd exhaustion, where refusing is right anyway).
                    Err(_) => continue,
                }
                // Close the race against a concurrent shutdown(): the flag
                // is set *before* shutdown walks the registry, so either the
                // walk saw our entry and half-closed it, or this re-check
                // sees the flag and half-closes it here. Without this, a
                // connection accepted in the window would never get its EOF
                // and run() would join forever.
                if shared.shutting_down.load(Ordering::SeqCst) {
                    let _ = stream.shutdown(Shutdown::Read);
                }
                scope.spawn(move || {
                    // A connection must never take down the server: isolate
                    // panics (the engine already isolates the session).
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        serve_connection(engine, config, shared, stream);
                    }));
                    shared
                        .connections
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .remove(&id);
                });
            }
            // Leaving the scope joins every connection thread: all sessions
            // are dropped and the engine is idle when run() returns.
        });
        let c = &self.shared.counters;
        Ok(ServerStats {
            connections: c.connections.load(Ordering::Relaxed),
            requests: c.requests.load(Ordering::Relaxed),
            reads: c.reads.load(Ordering::Relaxed),
            protocol_errors: c.protocol_errors.load(Ordering::Relaxed),
            internal_errors: c.internal_errors.load(Ordering::Relaxed),
            shed_requests: c.shed_requests.load(Ordering::Relaxed),
            shed_connections: c.shed_connections.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            auth_failures: c.auth_failures.load(Ordering::Relaxed),
        })
    }
}

fn refuse_shutting_down(stream: TcpStream) {
    let mut writer = BufWriter::new(stream);
    let _ = write_frame(
        &mut writer,
        &Frame::Error {
            code: ErrorCode::ShuttingDown,
            message: "server is draining".into(),
        },
    );
    let _ = writer.flush();
}

/// Refuse a past-capacity connection with a connection-level `Busy`. Runs
/// on the acceptor thread, so the write is tightly bounded: a peer that
/// won't read its refusal is simply dropped.
fn refuse_busy(stream: TcpStream, retry_after_ms: u32) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut writer = BufWriter::new(stream);
    let _ = write_frame(
        &mut writer,
        &Frame::Busy {
            request_id: BUSY_CONNECTION,
            retry_after_ms,
        },
    );
    let _ = writer.flush();
}

/// A socket reader that turns the server's deadlines into hard errors.
///
/// [`DeadlineReader::arm`] opens a frame window: until the first byte
/// arrives the *boundary* deadline applies (idle or handshake reaping);
/// from the first byte the whole frame must land within the *frame*
/// timeout, and the deadline is fixed at that instant — a slow-loris peer
/// dribbling one byte at a time cannot push it back.
///
/// Implemented with `set_read_timeout` + a retry loop, so a blocked `read`
/// wakes at least once per remaining window; the extra syscall per read is
/// noise next to classification (the hot path moves whole frames per read).
struct DeadlineReader {
    stream: TcpStream,
    frame_timeout: Option<Duration>,
    deadline: Option<Instant>,
    in_frame: bool,
}

impl DeadlineReader {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            frame_timeout: None,
            deadline: None,
            in_frame: false,
        }
    }

    /// Start a frame window: `boundary` bounds the wait for the first byte,
    /// `frame` bounds the whole frame once it has started.
    fn arm(&mut self, boundary: Option<Duration>, frame: Option<Duration>) {
        self.deadline = boundary.map(|t| Instant::now() + t);
        self.frame_timeout = frame;
        self.in_frame = false;
    }

    /// Whether the last deadline fired while waiting *between* frames
    /// (idle) rather than inside one (stall).
    fn timed_out_idle(&self) -> bool {
        !self.in_frame
    }
}

impl Read for DeadlineReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            let timeout = match self.deadline {
                None => None,
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "read deadline elapsed",
                        ));
                    }
                    Some(deadline - now)
                }
            };
            // `timeout` is non-zero by construction (checked above), which
            // set_read_timeout requires.
            self.stream.set_read_timeout(timeout)?;
            match self.stream.read(buf) {
                Ok(n) => {
                    if n > 0 && !self.in_frame {
                        // First byte of a frame: switch from the boundary
                        // deadline to a fixed whole-frame deadline.
                        self.in_frame = true;
                        self.deadline = self.frame_timeout.map(|t| Instant::now() + t);
                    }
                    return Ok(n);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) =>
                {
                    continue; // re-check the deadline, then retry
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// What the reader thread hands to the writer thread.
enum ConnEvent {
    Request {
        request_id: u64,
        reads: Vec<SequenceRecord>,
    },
    /// A candidates query (protocol ≥ v4); the writer answers with the
    /// merged top-hit lists instead of classifications.
    Candidates {
        request_id: u64,
        reads: Vec<SequenceRecord>,
    },
    /// A liveness probe; the writer echoes a `Pong`.
    Ping { nonce: u64 },
    /// The reader hit undecodable input; the writer reports it and closes.
    Bad(ProtocolError),
    /// A read/idle deadline fired; the writer reports it and closes.
    TimedOut { idle: bool },
}

/// Drive one connection to completion: handshake, then a reader thread
/// feeding decoded requests to this thread, which owns the session and
/// writes responses.
fn serve_connection(
    engine: &ServingEngine,
    config: &ServerConfig,
    shared: &Shared,
    stream: TcpStream,
) {
    if config.nodelay {
        let _ = stream.set_nodelay(true);
    }
    // Bound every socket write so a client that stops reading cannot pin
    // this connection's writer (and the server's drain) forever.
    let _ = stream.set_write_timeout(config.write_timeout);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = DeadlineReader::new(read_half);
    let mut writer = BufWriter::new(stream);

    // --- Handshake -------------------------------------------------------
    // The whole Hello — first byte *and* last — must land within the
    // handshake deadline; a mid-handshake stall is reaped, not parked.
    reader.arm(config.handshake_timeout, config.handshake_timeout);
    let hello = match read_frame(&mut reader) {
        Ok(Some(Frame::Hello {
            magic,
            version,
            batch_records,
            max_in_flight,
            auth_token,
        })) => {
            if magic != MAGIC {
                fail(shared, &mut writer, &ProtocolError::BadMagic(magic));
                return;
            }
            if version < MIN_PROTOCOL_VERSION {
                fail(
                    shared,
                    &mut writer,
                    &ProtocolError::UnsupportedVersion(version),
                );
                return;
            }
            if let Some(required) = config.auth_token.as_deref() {
                // Constant-time compare; an absent token compares as empty
                // (same timing as a wrong one).
                let supplied = auth_token.as_deref().unwrap_or("");
                if !constant_time_eq(required.as_bytes(), supplied.as_bytes()) {
                    shared
                        .counters
                        .auth_failures
                        .fetch_add(1, Ordering::Relaxed);
                    let _ = write_frame(
                        &mut writer,
                        &Frame::Error {
                            code: ErrorCode::Unauthorized,
                            message: "invalid auth token".into(),
                        },
                    );
                    let _ = writer.flush();
                    return;
                }
            }
            (batch_records, max_in_flight, version)
        }
        Ok(Some(_)) => {
            fail(
                shared,
                &mut writer,
                &ProtocolError::Malformed("expected Hello"),
            );
            return;
        }
        Ok(None) => return, // probe connection; nothing to do
        Err(NetError::Protocol(e)) => {
            fail(shared, &mut writer, &e);
            return;
        }
        Err(NetError::Io(e)) if e.kind() == io::ErrorKind::TimedOut => {
            shared.counters.timeouts.fetch_add(1, Ordering::Relaxed);
            let _ = write_frame(
                &mut writer,
                &Frame::Error {
                    code: ErrorCode::TimedOut,
                    message: "handshake deadline elapsed".into(),
                },
            );
            let _ = writer.flush();
            return;
        }
        Err(_) => return,
    };

    // Resolve the session shape: client hints can shrink, never grow, the
    // server-side bounds (the engine's credit bound is the protocol's credit
    // bound — one resident engine batch per credit).
    let server_batch = if config.session.batch_records > 0 {
        config.session.batch_records
    } else {
        engine.config().batch_records
    };
    let server_credit = if config.session.max_in_flight > 0 {
        config.session.max_in_flight
    } else {
        engine.config().effective_session_in_flight()
    };
    let batch_records = match hello.0 as usize {
        0 => server_batch,
        requested => requested.min(server_batch.max(1)),
    };
    // The engine clamps session credits at MAX_SESSION_IN_FLIGHT (the
    // result channel is pre-sized to the credit); announce the clamped
    // value so the client's window matches the session's real bound.
    let credits = match hello.1 as usize {
        0 => server_credit,
        requested => requested.clamp(1, server_credit),
    }
    .min(metacache::serving::MAX_SESSION_IN_FLIGHT);
    // The connection speaks min(client, server): a v1 peer gets a
    // bit-identical v1 conversation, a v2 peer may send packed requests,
    // and a future (higher-versioned) client is downgraded to our version
    // instead of rejected — each side already accepts any ack at or below
    // what it announced.
    let version = hello.2.min(PROTOCOL_VERSION);
    let mut session = engine.session_with(SessionConfig {
        batch_records,
        max_in_flight: credits,
    });
    if write_frame(
        &mut writer,
        &Frame::HelloAck {
            version,
            // Saturate, never wrap: a server configured beyond u32 range
            // must announce u32::MAX, not a tiny truncated credit.
            credits: u32::try_from(credits).unwrap_or(u32::MAX),
            batch_records: u32::try_from(batch_records).unwrap_or(u32::MAX),
            backend: engine.backend_name().to_string(),
        },
    )
    .is_err()
        || writer.flush().is_err()
    {
        return;
    }

    // --- Request loop ----------------------------------------------------
    // Decoded requests ride in record vectors recycled through `pool`: the
    // reader refills a vector the writer's last classify handed back (the
    // engine returns owned records after classification), so the steady
    // state of a connection decodes and classifies without allocating — no
    // intermediate `Vec<SequenceRecord>` copy anywhere on the hot path.
    let pool: Mutex<Vec<Vec<SequenceRecord>>> = Mutex::new(Vec::new());
    let (tx, rx) = mpsc::sync_channel::<ConnEvent>(config.pending_requests.max(1));
    std::thread::scope(|conn_scope| {
        let pool_ref = &pool;
        let idle_timeout = config.idle_timeout;
        let read_timeout = config.read_timeout;
        conn_scope.spawn(move || {
            read_loop(
                &mut reader,
                tx,
                pool_ref,
                version,
                idle_timeout,
                read_timeout,
            )
        });

        let mut last_request_id: Option<u64> = None;
        let mut served_any = false;
        let mut classifications: Vec<Classification> = Vec::new();
        let mut results_frame: Vec<u8> = Vec::new();
        // Candidates requests are answered on this thread with a lazily
        // built classifier over the engine's database rather than through
        // the engine queue: the engine pipeline is typed to final
        // classifications, and the scatter leg needs per-read candidate
        // lists. The trade-off — candidate work is not counted against the
        // engine's fair queue — is bounded by the same credit window and
        // the global in-flight record gauge as classify requests.
        let mut candidate_state: Option<(Classifier<&Database>, QueryScratch)> = None;
        let mut candidate_lists: Vec<Vec<Candidate>> = Vec::new();
        let close = |writer: &mut BufWriter<TcpStream>| {
            // Unblock the reader if it is still mid-read (writer-side exit).
            let _ = writer.get_ref().shutdown(Shutdown::Both);
        };
        for event in rx {
            match event {
                ConnEvent::Request { request_id, reads } => {
                    if last_request_id.is_some_and(|last| request_id <= last) {
                        fail(
                            shared,
                            &mut writer,
                            &ProtocolError::Malformed("request ids must increase"),
                        );
                        close(&mut writer);
                        break;
                    }
                    last_request_id = Some(request_id);
                    let read_count = reads.len() as u64;
                    // Reserve the records in the global in-flight gauge, then
                    // decide whether to shed. Only v3 peers can be shed — a
                    // request-level Busy is this request's (in-order) answer;
                    // v1/v2 peers have no shed vocabulary and keep the legacy
                    // blocking backpressure.
                    let inflight = shared
                        .inflight_records
                        .fetch_add(read_count, Ordering::Relaxed)
                        + read_count;
                    // Shedding is opt-in: with the cap unset every client
                    // keeps the legacy blocking backpressure — a plain v3
                    // client on a default-config server must never see Busy.
                    let shed = version >= LIVENESS_MIN_VERSION
                        && config.max_inflight_records > 0
                        && (inflight > config.max_inflight_records as u64
                            // High-water admission: a brand-new stream is
                            // refused while the fair queue is saturated, so a
                            // flood of fresh sessions cannot starve the
                            // established ones (which are exempt).
                            || (!served_any && session.over_high_water()));
                    if shed {
                        shared
                            .inflight_records
                            .fetch_sub(read_count, Ordering::Relaxed);
                        shared
                            .counters
                            .shed_requests
                            .fetch_add(1, Ordering::Relaxed);
                        recycle(&pool, config, reads);
                        let ok = write_frame(
                            &mut writer,
                            &Frame::Busy {
                                request_id,
                                retry_after_ms: config.retry_after_ms,
                            },
                        )
                        .is_ok()
                            && writer.flush().is_ok();
                        if !ok {
                            close(&mut writer);
                            break;
                        }
                        continue;
                    }
                    classifications.clear();
                    // A backend worker panic re-raises in the owning session
                    // only; turn it into an error frame instead of a torn
                    // connection without a goodbye.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        session.classify_owned(reads, &mut classifications)
                    }));
                    shared
                        .inflight_records
                        .fetch_sub(read_count, Ordering::Relaxed);
                    served_any = true;
                    match outcome {
                        Ok(recycled) => {
                            recycle(&pool, config, recycled);
                            shared.counters.requests.fetch_add(1, Ordering::Relaxed);
                            shared
                                .counters
                                .reads
                                .fetch_add(read_count, Ordering::Relaxed);
                            let ok = encode_results_into(
                                &mut results_frame,
                                request_id,
                                &classifications,
                            )
                            .is_ok()
                                && writer.write_all(&results_frame).is_ok()
                                && writer.flush().is_ok();
                            if !ok {
                                // Client went away; drop the connection. The
                                // session's drop discards its in-flight work.
                                close(&mut writer);
                                break;
                            }
                        }
                        Err(_) => {
                            shared
                                .counters
                                .internal_errors
                                .fetch_add(1, Ordering::Relaxed);
                            let _ = write_frame(
                                &mut writer,
                                &Frame::Error {
                                    code: ErrorCode::Internal,
                                    message: format!(
                                        "classification failed for request {request_id}"
                                    ),
                                },
                            );
                            let _ = writer.flush();
                            close(&mut writer);
                            break;
                        }
                    }
                }
                ConnEvent::Candidates { request_id, reads } => {
                    if last_request_id.is_some_and(|last| request_id <= last) {
                        fail(
                            shared,
                            &mut writer,
                            &ProtocolError::Malformed("request ids must increase"),
                        );
                        close(&mut writer);
                        break;
                    }
                    last_request_id = Some(request_id);
                    if engine.database().partition_count() == 0 {
                        // A metadata-only database (a router fronting this
                        // very protocol) has no local table to query;
                        // answering with empty lists would silently corrupt
                        // a two-level scatter, so refuse the frame type.
                        fail(
                            shared,
                            &mut writer,
                            &ProtocolError::UnknownFrameType(frame_type::CANDIDATES),
                        );
                        close(&mut writer);
                        break;
                    }
                    let read_count = reads.len() as u64;
                    let inflight = shared
                        .inflight_records
                        .fetch_add(read_count, Ordering::Relaxed)
                        + read_count;
                    // Same shed policy as classify requests (candidates
                    // require ≥ v4, so the peer always speaks Busy).
                    let shed = config.max_inflight_records > 0
                        && (inflight > config.max_inflight_records as u64
                            || (!served_any && session.over_high_water()));
                    if shed {
                        shared
                            .inflight_records
                            .fetch_sub(read_count, Ordering::Relaxed);
                        shared
                            .counters
                            .shed_requests
                            .fetch_add(1, Ordering::Relaxed);
                        recycle(&pool, config, reads);
                        let ok = write_frame(
                            &mut writer,
                            &Frame::Busy {
                                request_id,
                                retry_after_ms: config.retry_after_ms,
                            },
                        )
                        .is_ok()
                            && writer.flush().is_ok();
                        if !ok {
                            close(&mut writer);
                            break;
                        }
                        continue;
                    }
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let (classifier, scratch) = candidate_state.get_or_insert_with(|| {
                            (Classifier::new(engine.database()), QueryScratch::new())
                        });
                        for (i, read) in reads.iter().enumerate() {
                            if candidate_lists.len() <= i {
                                candidate_lists.push(Vec::new());
                            }
                            let list = classifier.candidates_with(read, scratch);
                            candidate_lists[i].clear();
                            candidate_lists[i].extend_from_slice(list.as_slice());
                        }
                        candidate_lists.truncate(reads.len());
                    }));
                    shared
                        .inflight_records
                        .fetch_sub(read_count, Ordering::Relaxed);
                    served_any = true;
                    recycle(&pool, config, reads);
                    match outcome {
                        Ok(()) => {
                            shared.counters.requests.fetch_add(1, Ordering::Relaxed);
                            shared
                                .counters
                                .reads
                                .fetch_add(read_count, Ordering::Relaxed);
                            let ok = encode_candidate_results_into(
                                &mut results_frame,
                                request_id,
                                &candidate_lists,
                            )
                            .is_ok()
                                && writer.write_all(&results_frame).is_ok()
                                && writer.flush().is_ok();
                            if !ok {
                                close(&mut writer);
                                break;
                            }
                        }
                        Err(_) => {
                            shared
                                .counters
                                .internal_errors
                                .fetch_add(1, Ordering::Relaxed);
                            let _ = write_frame(
                                &mut writer,
                                &Frame::Error {
                                    code: ErrorCode::Internal,
                                    message: format!(
                                        "candidate query failed for request {request_id}"
                                    ),
                                },
                            );
                            let _ = writer.flush();
                            close(&mut writer);
                            break;
                        }
                    }
                }
                ConnEvent::Ping { nonce } => {
                    let ok = write_frame(&mut writer, &Frame::Pong { nonce }).is_ok()
                        && writer.flush().is_ok();
                    if !ok {
                        close(&mut writer);
                        break;
                    }
                }
                ConnEvent::Bad(e) => {
                    fail(shared, &mut writer, &e);
                    close(&mut writer);
                    break;
                }
                ConnEvent::TimedOut { idle } => {
                    shared.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                    let _ = write_frame(
                        &mut writer,
                        &Frame::Error {
                            code: ErrorCode::TimedOut,
                            message: if idle {
                                "idle timeout".into()
                            } else {
                                "frame read deadline elapsed".into()
                            },
                        },
                    );
                    let _ = writer.flush();
                    close(&mut writer);
                    break;
                }
            }
        }
        // Reader exits on EOF/error once the socket is closed or drained;
        // the scope joins it.
    });
    drop(session);
}

/// Heap bytes a pooled record vector would keep alive: the spine plus every
/// record's retained *capacities* (not lengths — `clear_for_reuse` keeps
/// capacity, which is exactly what pooling preserves).
fn retained_bytes(records: &Vec<SequenceRecord>) -> usize {
    fn record_bytes(r: &SequenceRecord) -> usize {
        r.header.capacity()
            + r.sequence.capacity()
            + r.quality.capacity()
            + r.mate.as_ref().map_or(0, |m| record_bytes(m))
    }
    records.capacity() * std::mem::size_of::<SequenceRecord>()
        + records.iter().map(record_bytes).sum::<usize>()
}

/// Upper bound on the heap a single pooled record vector may retain. A
/// normal request (hundreds of reads, a few hundred bases each) is well
/// under 1 MiB; one maximum-size packed frame can legally decode to
/// ~256 MiB of sequence, which must not stay pinned for the connection's
/// lifetime.
const MAX_POOLED_BYTES: usize = 8 * 1024 * 1024;

/// Hand a drained record vector back to the connection's reuse pool,
/// bounding both the entry count and the retained bytes so a one-off giant
/// request cannot pin its buffers forever.
fn recycle(
    pool: &Mutex<Vec<Vec<SequenceRecord>>>,
    config: &ServerConfig,
    records: Vec<SequenceRecord>,
) {
    if retained_bytes(&records) > MAX_POOLED_BYTES {
        return;
    }
    let mut pool = pool.lock().unwrap_or_else(|e| e.into_inner());
    if pool.len() <= config.pending_requests.max(1) {
        pool.push(records);
    }
}

/// The connection's reader: decode frames into requests until EOF, goodbye,
/// or undecodable input. Frame payloads land in one reusable buffer and
/// `Classify` / `ClassifyPacked` requests decode straight into recycled
/// record vectors from `pool`.
fn read_loop(
    reader: &mut DeadlineReader,
    tx: mpsc::SyncSender<ConnEvent>,
    pool: &Mutex<Vec<Vec<SequenceRecord>>>,
    version: u16,
    idle_timeout: Option<Duration>,
    read_timeout: Option<Duration>,
) {
    let mut payload: Vec<u8> = Vec::new();
    loop {
        // Every frame opens a fresh window: `idle_timeout` to first byte,
        // then the whole frame within `read_timeout`. Any frame (a Ping
        // included) resets the idle clock.
        reader.arm(idle_timeout, read_timeout);
        match read_frame_buf(reader, &mut payload) {
            Ok(Some(tag)) if tag == frame_type::CLASSIFY || tag == frame_type::CLASSIFY_PACKED => {
                if tag == frame_type::CLASSIFY_PACKED && version < PACKED_MIN_VERSION {
                    // A v1 peer must not smuggle in v2 frames.
                    let _ = tx.send(ConnEvent::Bad(ProtocolError::UnknownFrameType(tag)));
                    return;
                }
                let mut reads = pool
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .pop()
                    .unwrap_or_default();
                match decode_classify_into(tag, &payload, &mut reads) {
                    Ok(request_id) => {
                        if tx.send(ConnEvent::Request { request_id, reads }).is_err() {
                            return; // writer side is gone
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(ConnEvent::Bad(e));
                        return;
                    }
                }
            }
            Ok(Some(tag)) if tag == frame_type::CANDIDATES => {
                if version < CANDIDATES_MIN_VERSION {
                    // A pre-v4 peer must not smuggle in v4 frames.
                    let _ = tx.send(ConnEvent::Bad(ProtocolError::UnknownFrameType(tag)));
                    return;
                }
                let mut reads = pool
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .pop()
                    .unwrap_or_default();
                match decode_classify_into(tag, &payload, &mut reads) {
                    Ok(request_id) => {
                        if tx
                            .send(ConnEvent::Candidates { request_id, reads })
                            .is_err()
                        {
                            return; // writer side is gone
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(ConnEvent::Bad(e));
                        return;
                    }
                }
            }
            Ok(Some(tag)) if tag == frame_type::PING => {
                if version < LIVENESS_MIN_VERSION {
                    // A pre-v3 peer must not smuggle in v3 frames.
                    let _ = tx.send(ConnEvent::Bad(ProtocolError::UnknownFrameType(tag)));
                    return;
                }
                match Frame::decode(tag, &payload) {
                    Ok(Frame::Ping { nonce }) => {
                        if tx.send(ConnEvent::Ping { nonce }).is_err() {
                            return; // writer side is gone
                        }
                    }
                    Ok(_) => unreachable!("PING tag decodes to Frame::Ping"),
                    Err(e) => {
                        let _ = tx.send(ConnEvent::Bad(e));
                        return;
                    }
                }
            }
            Ok(Some(tag)) if tag == frame_type::GOODBYE && payload.is_empty() => return,
            Ok(None) => return, // clean end of stream
            Ok(Some(tag)) => {
                // Control frames and garbage: decode only to classify the
                // failure precisely (unknown tag, trailing bytes, …).
                let error = match Frame::decode(tag, &payload) {
                    Ok(_) => ProtocolError::Malformed("unexpected frame after handshake"),
                    Err(e) => e,
                };
                let _ = tx.send(ConnEvent::Bad(error));
                return;
            }
            Err(NetError::Protocol(e)) => {
                let _ = tx.send(ConnEvent::Bad(e));
                return;
            }
            Err(NetError::Io(e)) if e.kind() == io::ErrorKind::TimedOut => {
                let _ = tx.send(ConnEvent::TimedOut {
                    idle: reader.timed_out_idle(),
                });
                return;
            }
            Err(_) => return, // disconnect / reset: nothing to report to
        }
    }
}

/// Report a protocol failure with an error frame and count it.
fn fail(shared: &Shared, writer: &mut BufWriter<TcpStream>, error: &ProtocolError) {
    shared
        .counters
        .protocol_errors
        .fetch_add(1, Ordering::Relaxed);
    let _ = write_frame(
        writer,
        &Frame::Error {
            code: error.code(),
            message: error.to_string(),
        },
    );
    let _ = writer.flush();
}
