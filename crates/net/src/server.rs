//! The TCP serving front-end: connections mapped onto [`ServingEngine`]
//! sessions, multiplexed by a single-threaded readiness event loop.
//!
//! One [`NetServer`] wraps one engine. The thread layout is a fixed set —
//! one event-loop thread plus the engine's worker pool — so a thousand
//! mostly-idle clients cost a thousand registered fds, not two thousand
//! parked threads:
//!
//! ```text
//!             ┌───────────────────────────────────────────────┐
//!  clients ──►│ event loop (run() thread, epoll/poll shim)    │
//!             │                                               │
//!             │  listener ──accept──► Conn state machine      │
//!             │                        ├ rbuf: incremental    │
//!             │                        │   frame reassembly   │
//!             │                        ├ pipeline: decoded    │
//!             │                        │   requests, FIFO     │
//!             │                        └ out: bounded write   │
//!             │                            backlog            │
//!             │      ▲ wakeup pipe                            │
//!             └──────┼────────────────────────────────────────┘
//!                    │ notify per completed batch
//!             ┌──────┴────────────┐   ┌───────────────────────┐
//!             │ ServingEngine     │   │ candidate pool (lazy, │
//!             │ worker pool       │   │ ≤ engine workers)     │
//!             └───────────────────┘   └───────────────────────┘
//! ```
//!
//! Each connection is a small state machine driven only by readiness:
//!
//! * **Read-readiness** appends to `rbuf`; complete frames are parsed into
//!   a FIFO `pipeline` of decoded requests. Parsing (and reading) stops —
//!   and TCP flow control pushes back on the client — once the connection
//!   holds enough undispatched work or its outbound backlog passes
//!   [`ServerConfig::outbound_high_water`].
//! * **The engine side is non-blocking.** Requests are chunked into
//!   session batches via `try_submit_owned`; completed batches re-enter
//!   the loop through a wakeup pipe (the session's delivery notifier) and
//!   are matched back to their request by submission order. Consecutive
//!   requests on one connection overlap in the engine — the writer no
//!   longer drains the session at each request boundary, so there is no
//!   pipeline bubble between back-to-back requests.
//! * **Responses are emitted strictly in request order** from the front of
//!   the pipeline (`Results`, `Pong`, `Busy` and error frames alike), into
//!   a per-connection outbound buffer flushed on write-readiness.
//! * **Deadlines are a timer heap over the loop**, not socket timeouts:
//!   handshake, whole-frame, idle and write-stall deadlines each schedule
//!   a wakeup; lazy cancellation keeps rescheduling O(log n).
//!
//! The PR 6/7 guarantees carry over unchanged: credit-based backpressure
//! announced in the handshake, errors as frames, per-connection failure
//! isolation, `Ping`/`Pong` liveness, `Busy` connection and request
//! shedding, constant-time auth — and graceful drain:
//! [`ServerHandle::shutdown`] wakes the loop, which stops accepting and
//! half-closes every read side; already-decoded requests still classify
//! and their results still reach the client, then [`NetServer::run`]
//! returns. Because the server borrows the engine, a following
//! [`ServingEngine::shutdown`] is guaranteed to see an idle engine — the
//! two drains compose.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::ops::Range;
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use mc_seqio::SequenceRecord;
use metacache::serving::{ServingEngine, Session, SessionConfig};
use metacache::{Candidate, Classification, Classifier, QueryScratch};

use crate::poll::{self, Event, Interest, Poller, TimerHeap, Waker, WAKE_TOKEN};
use crate::protocol::{
    constant_time_eq, decode_classify_into, encode_candidate_results_into, encode_results_into,
    frame_type, write_frame, ErrorCode, Frame, ProtocolError, BUSY_CONNECTION,
    CANDIDATES_MIN_VERSION, LIVENESS_MIN_VERSION, MAGIC, MAX_FRAME_LEN, MIN_PROTOCOL_VERSION,
    PACKED_MIN_VERSION, PROTOCOL_VERSION, RELOAD_MIN_VERSION,
};

/// Poll token of the listening socket (connection tokens start at 1;
/// [`WAKE_TOKEN`] is reserved by the poller).
const LISTENER_TOKEN: u64 = 0;

/// Bytes read per `read(2)` into a connection's reassembly buffer.
const READ_CHUNK: usize = 64 * 1024;

/// Write-stall bound for a connection refused with a connection-level
/// `Busy`: a peer that will not read its refusal is simply dropped.
const REFUSE_WRITE_WINDOW: Duration = Duration::from_secs(2);

/// The server-side half of a v5 `Reload`: builds the next database state
/// and swaps it into the engine (typically via
/// [`ServingEngine::reload_backend`]), returning the new generation. The
/// hook runs on a dedicated worker thread — it may block on I/O (re-reading
/// references from disk, reloading downstream shards) without stalling the
/// event loop. An `Err` is answered with [`ErrorCode::Internal`] and the
/// requesting connection is closed; the serving state is whatever the hook
/// left behind.
pub type ReloadHook = Arc<dyn Fn(&ServingEngine) -> Result<u64, String> + Send + Sync>;

/// Tuning knobs of a [`NetServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-connection session overrides (`0` fields = engine defaults).
    /// `session.class` picks the fair-queue lane every connection of this
    /// server schedules in (interactive by default).
    pub session: SessionConfig,
    /// Decoded-but-undispatched requests buffered per connection (in
    /// addition to the engine-side credit bound). Past it the loop stops
    /// parsing — and reading — that connection until dispatch catches up.
    pub pending_requests: usize,
    /// Set `TCP_NODELAY` on accepted connections (request/response traffic
    /// is latency-bound; leave on unless batching huge requests).
    pub nodelay: bool,
    /// Write-stall deadline per connection. A client that stops *reading*
    /// while keeping the connection open would otherwise pin its outbound
    /// backlog — and the graceful drain of [`NetServer::run`] — forever.
    /// The deadline re-arms on every successful write, so it bounds time
    /// *without progress*; when it fires the connection is torn down and
    /// counted in [`ServerStats::write_stalls`]. `None` disables the bound
    /// (not recommended for untrusted clients).
    pub write_timeout: Option<Duration>,
    /// Deadline for completing one frame once its first byte has arrived.
    /// The deadline is fixed at frame start, so a slow-loris peer dribbling
    /// bytes cannot extend it — the whole frame lands within this bound or
    /// the connection is torn down with [`ErrorCode::TimedOut`]. `None`
    /// disables the bound (not recommended for untrusted clients).
    pub read_timeout: Option<Duration>,
    /// Idle reaping: the longest a connection may sit at a frame boundary
    /// with no traffic at all. Any frame resets the clock — an idle-but-
    /// alive v3 client stays off the reaper by sending [`Frame::Ping`]
    /// within this window. `None` keeps idle connections forever.
    pub idle_timeout: Option<Duration>,
    /// Deadline from accept to a complete `Hello` (covers both the wait
    /// for the first byte and a dribbled handshake). `None` disables it.
    pub handshake_timeout: Option<Duration>,
    /// Cap on simultaneously served connections (`0` = unbounded). Past
    /// the cap, an accepted connection is answered with a connection-level
    /// [`Frame::Busy`] and closed instead of being served.
    pub max_connections: usize,
    /// Cap on reads being classified across all connections at once
    /// (`0` = unbounded). A v3 request that would push past it is shed
    /// with a request-level [`Frame::Busy`] instead of queueing; v1/v2
    /// connections are exempt (their protocol has no shed answer) and
    /// block exactly as before. Setting the cap also arms high-water
    /// admission: a brand-new session is shed while the engine's fair
    /// queue is saturated. `0` disables request shedding entirely —
    /// every client keeps the legacy blocking backpressure.
    pub max_inflight_records: usize,
    /// The retry hint carried by every [`Frame::Busy`] this server sends.
    pub retry_after_ms: u32,
    /// Require this pre-shared token in every `Hello` (compared in
    /// constant time); a missing or wrong token is answered with
    /// [`ErrorCode::Unauthorized`]. `None` disables auth.
    pub auth_token: Option<String>,
    /// Slow-reader bound: bytes of encoded responses allowed to queue on
    /// one connection before the loop stops reading (and admitting) more
    /// of its requests, withholding the session's engine credits instead
    /// of pinning unbounded result memory. The backlog itself stays
    /// bounded by the credit window; [`ServerConfig::write_timeout`] then
    /// bounds how long it may sit unflushed. `0` disables the bound.
    pub outbound_high_water: usize,
    /// Pin accepted sockets' kernel send buffer (`SO_SNDBUF`) to roughly
    /// this many bytes (`0` = leave kernel autotuning on). Pinning makes
    /// slow-reader backpressure deterministic — tests use it to fill the
    /// pipe quickly.
    pub send_buffer: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            session: SessionConfig::default(),
            pending_requests: 2,
            nodelay: true,
            write_timeout: Some(Duration::from_secs(30)),
            read_timeout: Some(Duration::from_secs(30)),
            idle_timeout: Some(Duration::from_secs(300)),
            handshake_timeout: Some(Duration::from_secs(10)),
            max_connections: 0,
            max_inflight_records: 0,
            retry_after_ms: 100,
            auth_token: None,
            outbound_high_water: 4 * 1024 * 1024,
            send_buffer: 0,
        }
    }
}

/// Lifetime counters of a server, returned by [`NetServer::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted (including ones that failed the handshake).
    pub connections: u64,
    /// `Classify` requests answered with `Results`.
    pub requests: u64,
    /// Reads classified across all connections.
    pub reads: u64,
    /// Connections terminated with a protocol error frame.
    pub protocol_errors: u64,
    /// Requests lost to an internal failure (backend worker panic).
    pub internal_errors: u64,
    /// Requests refused with a request-level [`Frame::Busy`] (load shed).
    pub shed_requests: u64,
    /// Connections refused with a connection-level [`Frame::Busy`].
    pub shed_connections: u64,
    /// Connections torn down by a read/idle/handshake deadline.
    pub timeouts: u64,
    /// Handshakes rejected for a missing or wrong auth token.
    pub auth_failures: u64,
    /// Connections torn down because a stalled reader left the outbound
    /// backlog unflushed past [`ServerConfig::write_timeout`].
    pub write_stalls: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    reads: AtomicU64,
    protocol_errors: AtomicU64,
    internal_errors: AtomicU64,
    shed_requests: AtomicU64,
    shed_connections: AtomicU64,
    timeouts: AtomicU64,
    auth_failures: AtomicU64,
    write_stalls: AtomicU64,
}

/// State shared between the event loop, the engine's delivery notifiers,
/// the candidate pool and every [`ServerHandle`].
struct Shared {
    shutting_down: AtomicBool,
    /// Interrupts a blocked poll wait from any thread.
    waker: Waker,
    /// Connection tokens whose session has results ready to drain; pushed
    /// by the per-session delivery notifier (on engine worker threads).
    completions: Mutex<Vec<u64>>,
    /// Set by the engine's queue-space watcher: some shared-queue slot
    /// freed, connections with stashed submissions should retry.
    queue_space: AtomicBool,
    /// Reads currently admitted for classification across all connections
    /// — the gauge behind [`ServerConfig::max_inflight_records`].
    inflight_records: AtomicU64,
    counters: Counters,
    addr: SocketAddr,
}

/// A cloneable remote control of a running [`NetServer`]: triggers the
/// graceful drain from any thread.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The address the server is listening on (useful with an ephemeral
    /// port bind like `127.0.0.1:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Begin the graceful drain: stop accepting, half-close every live
    /// connection's read side so in-flight requests finish and their
    /// results are delivered, then let [`NetServer::run`] return.
    /// Idempotent — the loop is interrupted through its wakeup pipe, so
    /// no connectable address or spare fd is needed.
    pub fn shutdown(&self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.waker.wake();
    }
}

/// A TCP front-end serving one [`ServingEngine`]: each accepted connection
/// becomes one engine [`Session`], served by
/// a single event-loop thread (see the module docs).
///
/// The server borrows the engine, so the borrow checker proves the engine
/// outlives every connection — and that [`ServingEngine::shutdown`] can only
/// run after the server has fully drained.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use mc_net::{NetClient, NetServer};
/// use mc_seqio::SequenceRecord;
/// use mc_taxonomy::{Rank, Taxonomy};
/// use metacache::{build::CpuBuilder, serving::ServingEngine, MetaCacheConfig};
///
/// # let mut taxonomy = Taxonomy::with_root();
/// # taxonomy.add_node(100, 1, Rank::Species, "Species A").unwrap();
/// # let mut state = 5u64;
/// # let genome: Vec<u8> = (0..8000).map(|_| {
/// #     state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
/// #     b"ACGT"[(state >> 33) as usize % 4]
/// # }).collect();
/// # let mut builder = CpuBuilder::new(MetaCacheConfig::default(), taxonomy);
/// # builder.add_target(SequenceRecord::new("refA", genome.clone()), 100).unwrap();
/// let engine = ServingEngine::host(Arc::new(builder.finish()));
/// let server = NetServer::bind(&engine, "127.0.0.1:0").unwrap();
/// let handle = server.handle();
///
/// std::thread::scope(|scope| {
///     scope.spawn(|| server.run());
///     let mut client = NetClient::connect(handle.local_addr()).unwrap();
///     let reads = vec![SequenceRecord::new("r0", genome[200..350].to_vec())];
///     let classifications = client.classify_batch(&reads).unwrap();
///     assert_eq!(classifications[0].taxon, 100);
///     drop(client);
///     handle.shutdown(); // graceful drain; run() returns
/// });
/// let stats = engine.shutdown(); // engine drain composes with the server's
/// assert_eq!(stats.records_classified, 1);
/// ```
pub struct NetServer<'e> {
    engine: &'e ServingEngine,
    listener: TcpListener,
    config: ServerConfig,
    shared: Arc<Shared>,
    poller: Poller,
    reload: Option<ReloadHook>,
}

impl<'e> NetServer<'e> {
    /// Bind a server for `engine` on `addr` (use port `0` for an ephemeral
    /// port, then [`ServerHandle::local_addr`]). Default [`ServerConfig`].
    pub fn bind(engine: &'e ServingEngine, addr: impl std::net::ToSocketAddrs) -> io::Result<Self> {
        Self::bind_with(engine, addr, ServerConfig::default())
    }

    /// Bind with an explicit configuration.
    pub fn bind_with(
        engine: &'e ServingEngine,
        addr: impl std::net::ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let mut poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
        let shared = Arc::new(Shared {
            shutting_down: AtomicBool::new(false),
            waker: poller.waker(),
            completions: Mutex::new(Vec::new()),
            queue_space: AtomicBool::new(false),
            inflight_records: AtomicU64::new(0),
            counters: Counters::default(),
            addr: listener.local_addr()?,
        });
        Ok(Self {
            engine,
            listener,
            config,
            shared,
            poller,
            reload: None,
        })
    }

    /// Enable the v5 `Reload` admin frame: `hook` is invoked (on a
    /// dedicated worker thread, serially) for each accepted `Reload`, and
    /// its returned generation is answered with a `ReloadAck`. Without a
    /// hook, `Reload` frames are refused with [`ErrorCode::Internal`].
    pub fn with_reload(mut self, hook: ReloadHook) -> Self {
        self.reload = Some(hook);
        self
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A handle for triggering the graceful drain from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serve until [`ServerHandle::shutdown`] is called: the calling thread
    /// becomes the event loop (accept, frame reassembly, dispatch, write
    /// flushing); the engine's workers do the classifying. Returns after
    /// every live connection has drained and closed.
    pub fn run(self) -> io::Result<ServerStats> {
        let NetServer {
            engine,
            listener,
            config,
            shared,
            poller,
            reload,
        } = self;
        {
            // Queue-space pops re-arm stashed submissions. The watcher
            // outlives this run (the engine keeps it); stale wakes after
            // the poller is gone write into a closed pipe and are ignored.
            let watch = Arc::clone(&shared);
            engine.watch_queue_space(Arc::new(move || {
                watch.queue_space.store(true, Ordering::Release);
                watch.waker.wake();
            }));
        }
        let mut ctx = LoopCtx {
            engine,
            config: &config,
            shared: Arc::clone(&shared),
            poller,
            timers: TimerHeap::new(),
            scratch: Vec::new(),
            jobs: Vec::new(),
            reload_jobs: Vec::new(),
            reload_enabled: reload.is_some(),
            space_waiters: HashSet::new(),
            serving: 0,
            high_water: match config.outbound_high_water {
                0 => usize::MAX,
                hw => hw,
            },
            pool_cap: config.pending_requests.max(1) + 1,
        };
        std::thread::scope(|scope| -> io::Result<()> {
            let mut conns: HashMap<u64, Conn<'_>> = HashMap::new();
            let mut events: Vec<Event> = Vec::new();
            let mut next_token: u64 = 1;
            let mut listener = Some(listener);
            let mut draining = false;
            // The candidate pool is spawned lazily on the first Candidates
            // request, capped at the engine's worker count — thread count
            // stays O(workers) no matter how many connections arrive.
            let (cand_tx, cand_rx) = mpsc::channel::<CandJob>();
            let cand_rx = Arc::new(Mutex::new(cand_rx));
            let (cand_done_tx, cand_done_rx) = mpsc::channel::<CandDone>();
            let cand_target = engine.config().workers.max(1);
            let mut cand_workers = 0usize;
            // Reloads run on a single lazily-spawned worker: the hook may
            // block on disk/network I/O, and serialising reloads gives each
            // one a well-defined generation to acknowledge.
            let (reload_tx, reload_rx) = mpsc::channel::<u64>();
            let (reload_done_tx, reload_done_rx) = mpsc::channel::<ReloadDone>();
            let mut reload_rx = Some(reload_rx);
            loop {
                if draining && conns.is_empty() {
                    break;
                }
                let timeout = ctx
                    .timers
                    .next_deadline()
                    .map(|d| d.saturating_duration_since(Instant::now()));
                ctx.poller.wait(&mut events, timeout)?;
                if !draining && ctx.shared.shutting_down.load(Ordering::SeqCst) {
                    draining = true;
                    if let Some(l) = listener.take() {
                        let _ = ctx.poller.deregister(l.as_raw_fd());
                    }
                    let tokens: Vec<u64> = conns.keys().copied().collect();
                    for token in tokens {
                        if let Some(conn) = conns.get_mut(&token) {
                            // Half-close: discard unparsed input, serve what
                            // is already decoded, flush, then close — the
                            // same EOF semantics a clean client disconnect
                            // gets.
                            let _ = conn.stream.shutdown(Shutdown::Read);
                            conn.close_read();
                            conn.rbuf.clear();
                            conn.roff = 0;
                            ctx.advance(token, conn);
                        }
                        ctx.finish(&mut conns, token);
                    }
                }
                for &ev in &events {
                    match ev.token {
                        WAKE_TOKEN => {}
                        LISTENER_TOKEN => {
                            if let Some(l) = listener.as_ref() {
                                ctx.accept_all(l, &mut conns, &mut next_token);
                            }
                        }
                        token => {
                            if let Some(conn) = conns.get_mut(&token) {
                                ctx.advance(token, conn);
                            }
                            ctx.finish(&mut conns, token);
                        }
                    }
                }
                // Engine deliveries: one entry per completed batch; dedupe
                // so a burst of completions advances each connection once.
                let mut done: Vec<u64> = {
                    let mut queue = ctx
                        .shared
                        .completions
                        .lock()
                        .unwrap_or_else(|e| e.into_inner());
                    std::mem::take(&mut *queue)
                };
                done.sort_unstable();
                done.dedup();
                for token in done {
                    if let Some(conn) = conns.get_mut(&token) {
                        ctx.advance(token, conn);
                    }
                    ctx.finish(&mut conns, token);
                }
                while let Ok(result) = cand_done_rx.try_recv() {
                    let token = result.conn;
                    if let Some(conn) = conns.get_mut(&token) {
                        ctx.apply_candidate_result(conn, result);
                        ctx.advance(token, conn);
                    }
                    ctx.finish(&mut conns, token);
                }
                while let Ok(result) = reload_done_rx.try_recv() {
                    let token = result.conn;
                    if let Some(conn) = conns.get_mut(&token) {
                        ctx.apply_reload_result(conn, result);
                        ctx.advance(token, conn);
                    }
                    ctx.finish(&mut conns, token);
                }
                if ctx.shared.queue_space.swap(false, Ordering::AcqRel) {
                    let waiters: Vec<u64> = ctx.space_waiters.drain().collect();
                    for token in waiters {
                        if let Some(conn) = conns.get_mut(&token) {
                            ctx.advance(token, conn);
                        }
                        ctx.finish(&mut conns, token);
                    }
                }
                let now = Instant::now();
                while let Some((at, token)) = ctx.timers.pop_due(now) {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    if conn.timer_at == Some(at) {
                        conn.timer_at = None;
                    }
                    ctx.fire_deadlines(conn, now);
                    ctx.advance(token, conn);
                    ctx.finish(&mut conns, token);
                }
                let jobs = std::mem::take(&mut ctx.jobs);
                for job in jobs {
                    if cand_workers < cand_target {
                        cand_workers += 1;
                        let jobs_rx = Arc::clone(&cand_rx);
                        let done_tx = cand_done_tx.clone();
                        let waker = ctx.shared.waker.clone();
                        scope.spawn(move || candidate_worker(engine, jobs_rx, done_tx, waker));
                    }
                    let _ = cand_tx.send(job);
                }
                let pending_reloads = std::mem::take(&mut ctx.reload_jobs);
                for token in pending_reloads {
                    if let Some(rx) = reload_rx.take() {
                        let hook = reload
                            .clone()
                            .expect("reload jobs are only queued with a hook installed");
                        let done_tx = reload_done_tx.clone();
                        let waker = ctx.shared.waker.clone();
                        scope.spawn(move || reload_worker(engine, hook, rx, done_tx, waker));
                    }
                    let _ = reload_tx.send(token);
                }
            }
            // Dropping the job sender here (closure scope end) unblocks the
            // candidate workers; the scope joins them.
            Ok(())
        })?;
        let c = &shared.counters;
        Ok(ServerStats {
            connections: c.connections.load(Ordering::Relaxed),
            requests: c.requests.load(Ordering::Relaxed),
            reads: c.reads.load(Ordering::Relaxed),
            protocol_errors: c.protocol_errors.load(Ordering::Relaxed),
            internal_errors: c.internal_errors.load(Ordering::Relaxed),
            shed_requests: c.shed_requests.load(Ordering::Relaxed),
            shed_connections: c.shed_connections.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            auth_failures: c.auth_failures.load(Ordering::Relaxed),
            write_stalls: c.write_stalls.load(Ordering::Relaxed),
        })
    }
}

/// Connection phase: waiting for the `Hello`, or serving requests.
#[derive(PartialEq, Eq, Clone, Copy)]
enum Phase {
    Handshake,
    Open,
}

/// Undispatched reads of a request, chunked lazily into session batches.
enum Pending {
    /// Single-batch request: the decoded vector rides to the engine whole
    /// (zero copies, same as the old blocking fast path).
    Whole(Vec<SequenceRecord>),
    /// Multi-batch request: drained `batch_records` at a time.
    Chunks(std::vec::IntoIter<SequenceRecord>),
}

/// A decoded `Classify`/`ClassifyPacked` request in flight.
struct ClassifyReq {
    request_id: u64,
    read_count: u64,
    /// Passed admission (gauge reserved, shed decision made).
    admitted: bool,
    total_batches: usize,
    completed: usize,
    /// A backend worker panicked on one of this request's batches.
    failed: bool,
    pending: Option<Pending>,
    /// A batch the engine refused (queue full / out of credits), waiting
    /// for space or a freed credit.
    stashed: Option<Vec<SequenceRecord>>,
    classifications: Vec<Classification>,
    /// Database generation of the first completed batch. The whole request
    /// is answered under one generation: if a reload lands between two of
    /// its batches, the request is replayed entirely on the new epoch.
    generation: Option<u64>,
    /// Some completed batch saw a different generation than the first —
    /// the request straddled a reload and must replay.
    mixed: bool,
    /// Drained batch records held back for a possible replay (multi-batch
    /// requests only; a single-batch request can never straddle a reload).
    drained: Vec<Vec<SequenceRecord>>,
}

/// A decoded `Candidates` request (answered by the candidate pool).
struct CandReq {
    request_id: u64,
    read_count: u64,
    admitted: bool,
    /// Reads not yet handed to the pool.
    reads: Option<Vec<SequenceRecord>>,
    /// `Some(Some(lists))` = computed; `Some(None)` = the pool worker
    /// panicked on this request.
    done: Option<Option<Vec<Vec<Candidate>>>>,
    /// Database generation the pool worker pinned for this request.
    generation: u64,
}

/// One entry of a connection's FIFO response pipeline. Responses are
/// emitted strictly in request order from the front.
enum Item {
    Classify(Box<ClassifyReq>),
    Candidates(Box<CandReq>),
    /// A liveness probe, answered with `Pong` in order.
    Ping {
        nonce: u64,
    },
    /// A shed request's in-order `Busy` answer.
    Busy {
        request_id: u64,
    },
    /// A v5 `Reload` admin request, answered in order with `ReloadAck`.
    Reload {
        /// Handed to the reload worker (at most once).
        started: bool,
        /// `Some(Ok(generation))` = swapped; `Some(Err)` = the hook failed
        /// (or none is installed) and the connection closes with an error.
        done: Option<Result<u64, String>>,
    },
    /// Undecodable input: report and close (terminal).
    Fail(ProtocolError),
    /// A pre-counted terminal error (auth failure, deadline expiry).
    Deny {
        code: ErrorCode,
        message: String,
    },
}

impl Item {
    /// Whether this item still holds undispatched input — the measure
    /// behind the parse gate (decoded-but-undispatched request bound).
    fn holds_input(&self) -> bool {
        match self {
            Item::Classify(r) => !r.admitted || r.pending.is_some() || r.stashed.is_some(),
            Item::Candidates(r) => !r.admitted || r.reads.is_some(),
            _ => false,
        }
    }
}

/// Per-connection state machine (see module docs).
struct Conn<'e> {
    stream: TcpStream,
    token: u64,
    phase: Phase,
    version: u16,
    session: Option<Session<'e>>,
    /// Frame reassembly buffer; `roff` marks the parse offset.
    rbuf: Vec<u8>,
    roff: usize,
    /// A partial frame sits in `rbuf` (selects the frame-stall deadline
    /// and its timeout message over the idle one).
    in_frame: bool,
    /// Parse/read gate state as of the last advance (for deadline
    /// suspension while backpressured).
    gated: bool,
    read_closed: bool,
    /// Stop parsing and discard input (terminal answer queued or clean
    /// goodbye).
    poisoned: bool,
    /// Terminal response emitted: flush `out`, then tear down.
    closing: bool,
    /// Tear down immediately (I/O error, write stall).
    dead: bool,
    /// Outbound byte backlog; `ooff` marks the flushed prefix.
    out: Vec<u8>,
    ooff: usize,
    pipeline: VecDeque<Item>,
    /// Request id per submitted engine batch, in submission order —
    /// completed batches are matched back to their request through this.
    submit_order: VecDeque<u64>,
    last_request_id: Option<u64>,
    served_any: bool,
    read_deadline: Option<Instant>,
    write_deadline: Option<Instant>,
    /// Progress window re-armed on every successful write.
    write_window: Option<Duration>,
    /// Earliest instant currently scheduled in the timer heap for this
    /// connection (lazy cancellation: stale pops are ignored).
    timer_at: Option<Instant>,
    interest: Interest,
    /// Recycled record vectors (decode targets / drained batches).
    pool: Vec<Vec<SequenceRecord>>,
    /// This connection's share of the global in-flight record gauge.
    gauge: u64,
    /// Counted against `max_connections` (false for refused connections).
    counted: bool,
}

impl Conn<'_> {
    fn new(stream: TcpStream, token: u64) -> Self {
        Self {
            stream,
            token,
            phase: Phase::Handshake,
            version: PROTOCOL_VERSION,
            session: None,
            rbuf: Vec::new(),
            roff: 0,
            in_frame: false,
            gated: false,
            read_closed: false,
            poisoned: false,
            closing: false,
            dead: false,
            out: Vec::new(),
            ooff: 0,
            pipeline: VecDeque::new(),
            submit_order: VecDeque::new(),
            last_request_id: None,
            served_any: false,
            read_deadline: None,
            write_deadline: None,
            write_window: None,
            timer_at: None,
            interest: Interest::READ,
            pool: Vec::new(),
            gauge: 0,
            counted: false,
        }
    }

    /// The read side is finished (EOF, goodbye, drain): any armed read
    /// deadline must not fire over the remaining writes.
    fn close_read(&mut self) {
        self.read_closed = true;
        self.read_deadline = None;
    }

    /// A terminal response was emitted: stop reading, flush, tear down.
    fn begin_close(&mut self) {
        self.closing = true;
        self.poisoned = true;
        self.rbuf.clear();
        self.roff = 0;
        self.read_deadline = None;
    }

    /// Whether the connection has nothing left to do and can be torn down.
    fn finished(&self) -> bool {
        if self.dead {
            return true;
        }
        let drained = self.out.len() == self.ooff;
        if self.closing {
            return drained;
        }
        drained && self.read_closed && self.pipeline.is_empty()
    }
}

/// A candidates request handed to the pool.
struct CandJob {
    conn: u64,
    request_id: u64,
    reads: Vec<SequenceRecord>,
}

/// A candidates result returning to the loop. `lists` is `None` when the
/// worker panicked while computing it.
struct CandDone {
    conn: u64,
    request_id: u64,
    reads: Vec<SequenceRecord>,
    lists: Option<Vec<Vec<Candidate>>>,
    /// Generation of the epoch the worker pinned for this request.
    generation: u64,
}

/// A reload outcome returning from the reload worker to the loop.
struct ReloadDone {
    conn: u64,
    result: Result<u64, String>,
}

/// The event loop's non-connection state, threaded through every pump.
struct LoopCtx<'e, 'c> {
    engine: &'e ServingEngine,
    config: &'c ServerConfig,
    shared: Arc<Shared>,
    poller: Poller,
    timers: TimerHeap,
    /// Reusable response-encoding buffer (one frame at a time).
    scratch: Vec<u8>,
    /// Candidates jobs produced this iteration, dispatched after pumping.
    jobs: Vec<CandJob>,
    /// Connections whose `Reload` request awaits the reload worker.
    reload_jobs: Vec<u64>,
    /// A [`ReloadHook`] is installed (reloads without one fail fast).
    reload_enabled: bool,
    /// Connections with a stashed submission waiting for queue space.
    space_waiters: HashSet<u64>,
    /// Connections currently counted against `max_connections`.
    serving: usize,
    /// Resolved outbound-buffer gate (usize::MAX = unbounded).
    high_water: usize,
    /// Per-connection record-vector pool bound.
    pool_cap: usize,
}

impl<'e> LoopCtx<'e, '_> {
    // --- accept ---------------------------------------------------------

    fn accept_all(
        &mut self,
        listener: &TcpListener,
        conns: &mut HashMap<u64, Conn<'e>>,
        next_token: &mut u64,
    ) {
        loop {
            let (stream, _peer) = match listener.accept() {
                Ok(accepted) => accepted,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                // Transient accept failures (per-connection resource
                // errors, fd exhaustion) must not kill the server — but
                // must not busy-spin the loop either.
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(5));
                    break;
                }
            };
            self.shared
                .counters
                .connections
                .fetch_add(1, Ordering::Relaxed);
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            if self.config.nodelay {
                let _ = stream.set_nodelay(true);
            }
            if self.config.send_buffer > 0 {
                let _ = poll::set_send_buffer(&stream, self.config.send_buffer);
            }
            let token = *next_token;
            *next_token += 1;
            let now = Instant::now();
            // The flag is re-checked per accepted connection, not once per
            // loop entry: shutdown() can land while this very loop drains
            // the backlog, and a connection accepted after the flag must
            // get a typed refusal, never a served handshake.
            let draining = self.shared.shutting_down.load(Ordering::SeqCst);
            let refused =
                self.config.max_connections > 0 && self.serving >= self.config.max_connections;
            let mut conn = Conn::new(stream, token);
            if draining {
                conn.close_read();
                conn.poisoned = true;
                conn.closing = true;
                conn.write_window = Some(REFUSE_WRITE_WINDOW);
                conn.write_deadline = Some(now + REFUSE_WRITE_WINDOW);
                push_frame(
                    &mut conn.out,
                    &Frame::Error {
                        code: ErrorCode::ShuttingDown,
                        message: "server is draining".into(),
                    },
                );
                conn.interest = Interest::WRITE;
            } else if refused {
                // Shed at the door: a connection-level Busy instead of an
                // unbounded accept backlog, flushed on write-readiness
                // under a tight stall bound.
                self.shared
                    .counters
                    .shed_connections
                    .fetch_add(1, Ordering::Relaxed);
                conn.close_read();
                conn.poisoned = true;
                conn.closing = true;
                conn.write_window = Some(REFUSE_WRITE_WINDOW);
                conn.write_deadline = Some(now + REFUSE_WRITE_WINDOW);
                push_frame(
                    &mut conn.out,
                    &Frame::Busy {
                        request_id: BUSY_CONNECTION,
                        retry_after_ms: self.config.retry_after_ms,
                    },
                );
                conn.interest = Interest::WRITE;
            } else {
                conn.counted = true;
                self.serving += 1;
                conn.write_window = self.config.write_timeout;
                conn.read_deadline = self.config.handshake_timeout.map(|t| now + t);
                conn.interest = Interest::READ;
            }
            if self
                .poller
                .register(conn.stream.as_raw_fd(), token, conn.interest)
                .is_err()
            {
                if conn.counted {
                    self.serving -= 1;
                }
                continue;
            }
            conns.insert(token, conn);
            if let Some(conn) = conns.get_mut(&token) {
                self.advance(token, conn);
            }
            self.finish(conns, token);
        }
    }

    // --- the per-connection fixpoint ------------------------------------

    /// Drive one connection as far as it will go without blocking: drain
    /// engine results, read + parse, dispatch, emit, flush — repeated to a
    /// fixpoint (every pump is monotone, so this terminates) — then
    /// refresh poll interest and deadlines.
    fn advance(&mut self, token: u64, conn: &mut Conn<'e>) {
        loop {
            let mut progress = false;
            progress |= self.pump_drain(conn);
            progress |= self.pump_io_in(conn);
            progress |= self.pump_submit(token, conn);
            progress |= self.pump_emit(conn);
            progress |= self.pump_write(conn);
            if conn.dead || !progress {
                break;
            }
        }
        self.refresh_registration(token, conn);
        self.refresh_timers(token, conn);
    }

    /// Tear the connection down if it has nothing left to do.
    fn finish(&mut self, conns: &mut HashMap<u64, Conn<'e>>, token: u64) {
        if conns.get(&token).is_some_and(|c| c.finished()) {
            if let Some(conn) = conns.remove(&token) {
                self.teardown(conn);
            }
        }
    }

    fn teardown(&mut self, conn: Conn<'e>) {
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        if conn.gauge > 0 {
            self.shared
                .inflight_records
                .fetch_sub(conn.gauge, Ordering::Relaxed);
        }
        if conn.counted {
            self.serving -= 1;
        }
        self.space_waiters.remove(&conn.token);
        // Dropping the connection drops its session: the engine purges any
        // batches still in flight for it.
    }

    // --- engine results -------------------------------------------------

    fn pump_drain(&mut self, conn: &mut Conn<'e>) -> bool {
        let Some(session) = conn.session.as_mut() else {
            return false;
        };
        let mut progress = false;
        while let Some(done) = session.try_drain_owned() {
            progress = true;
            let rid = conn
                .submit_order
                .pop_front()
                .expect("engine result without a submitted batch");
            let req = conn
                .pipeline
                .iter_mut()
                .find_map(|item| match item {
                    Item::Classify(r) if r.request_id == rid => Some(r),
                    _ => None,
                })
                .expect("completed batch for an unknown request");
            req.completed += 1;
            match req.generation {
                None => req.generation = Some(done.generation),
                Some(first) if first != done.generation => req.mixed = true,
                Some(_) => {}
            }
            if done.panicked {
                req.failed = true;
            } else if req.total_batches == 1 {
                req.classifications = done.classifications;
            } else {
                req.classifications.extend(done.classifications);
            }
            // Multi-batch requests hold their drained records until the
            // whole request has completed under one generation: if a
            // reload lands between two of its batches, the request replays
            // entirely on the new epoch — a response is never a
            // mixed-epoch merge. (A single-batch request cannot straddle a
            // reload; its records are recycled immediately.)
            let mut spare = None;
            if req.total_batches > 1 && !req.failed {
                req.drained.push(done.records);
            } else {
                spare = Some(done.records);
            }
            if req.completed == req.total_batches {
                if req.mixed && !req.failed {
                    let all: Vec<SequenceRecord> = req.drained.drain(..).flatten().collect();
                    req.completed = 0;
                    req.classifications.clear();
                    req.generation = None;
                    req.mixed = false;
                    req.pending = Some(Pending::Chunks(all.into_iter()));
                    // The gauge reservation is kept: the reads are back in
                    // flight, not done.
                } else {
                    if req.read_count > 0 {
                        conn.gauge -= req.read_count;
                        self.shared
                            .inflight_records
                            .fetch_sub(req.read_count, Ordering::Relaxed);
                    }
                    for records in req.drained.drain(..) {
                        recycle_into(&mut conn.pool, self.pool_cap, records);
                    }
                }
            }
            if let Some(records) = spare {
                recycle_into(&mut conn.pool, self.pool_cap, records);
            }
        }
        progress
    }

    // --- read + parse ---------------------------------------------------

    /// The parse/read gate: stop consuming input while the connection
    /// holds enough undispatched work or its outbound backlog is past the
    /// high-water mark — TCP flow control then pushes back on the client,
    /// and (for a reader that stalled on its own results) the engine sees
    /// no new submissions: its credits are effectively withheld.
    fn gate(&self, conn: &Conn<'e>) -> bool {
        if conn.out.len() - conn.ooff >= self.high_water {
            return true;
        }
        let waiting = conn.pipeline.iter().filter(|i| i.holds_input()).count();
        waiting > self.config.pending_requests.max(1)
    }

    fn pump_io_in(&mut self, conn: &mut Conn<'e>) -> bool {
        if conn.dead || conn.poisoned || conn.closing {
            return false;
        }
        let mut progress = false;
        let mut consumed_any = false;
        loop {
            consumed_any |= self.parse(conn);
            if conn.dead || conn.poisoned || conn.closing {
                break;
            }
            if conn.read_closed || self.gate(conn) {
                break;
            }
            match read_chunk(&mut conn.stream, &mut conn.rbuf) {
                ReadOutcome::Data => progress = true,
                ReadOutcome::Eof => {
                    // Complete frames already buffered still get served;
                    // a partial frame at EOF is discarded silently (the
                    // peer walked away mid-frame — same as before).
                    conn.close_read();
                    progress = true;
                }
                ReadOutcome::WouldBlock => break,
                ReadOutcome::Error => {
                    conn.dead = true;
                    break;
                }
            }
        }
        // Deadline bookkeeping: idle-vs-frame windows while the read side
        // is live, suspended entirely while gated (backpressure is not a
        // client stall).
        if !conn.dead && !conn.poisoned && !conn.closing && !conn.read_closed {
            if self.gate(conn) {
                if !conn.gated {
                    conn.gated = true;
                    conn.read_deadline = None;
                    conn.in_frame = false;
                }
            } else {
                let was_gated = conn.gated;
                conn.gated = false;
                let leftover = conn.rbuf.len() - conn.roff;
                let now = Instant::now();
                match conn.phase {
                    Phase::Handshake => {
                        // Fresh whole-frame window from the first byte; the
                        // accept-time deadline covers the wait before it.
                        if leftover > 0 && !conn.in_frame {
                            conn.in_frame = true;
                            if let Some(t) = self.config.handshake_timeout {
                                conn.read_deadline = Some(now + t);
                            }
                        }
                    }
                    Phase::Open => {
                        // Re-arm only on progress (or gate release): the
                        // deadline of a partial frame stays fixed at its
                        // first byte, so dribbling cannot extend it.
                        if consumed_any || was_gated || (leftover > 0 && !conn.in_frame) {
                            if leftover > 0 {
                                conn.in_frame = true;
                                conn.read_deadline = self.config.read_timeout.map(|t| now + t);
                            } else {
                                conn.in_frame = false;
                                conn.read_deadline = self.config.idle_timeout.map(|t| now + t);
                            }
                        }
                    }
                }
            }
        }
        progress || consumed_any
    }

    /// Consume every complete frame buffered in `rbuf`. Returns whether at
    /// least one frame was consumed.
    fn parse(&mut self, conn: &mut Conn<'e>) -> bool {
        let mut consumed = false;
        loop {
            if conn.dead || conn.poisoned || conn.closing || self.gate(conn) {
                break;
            }
            let avail = conn.rbuf.len() - conn.roff;
            if avail < 4 {
                break;
            }
            let len = u32::from_le_bytes(
                conn.rbuf[conn.roff..conn.roff + 4]
                    .try_into()
                    .expect("4-byte slice"),
            );
            if len == 0 || len > MAX_FRAME_LEN {
                self.reject(conn, ProtocolError::FrameTooLarge(len));
                break;
            }
            let total = 4 + len as usize;
            if avail < total {
                break;
            }
            let tag = conn.rbuf[conn.roff + 4];
            let span = (conn.roff + 5)..(conn.roff + total);
            conn.roff += total;
            consumed = true;
            match conn.phase {
                Phase::Handshake => self.handle_hello(conn, tag, span),
                Phase::Open => self.handle_frame(conn, tag, span),
            }
        }
        if conn.poisoned || conn.roff == conn.rbuf.len() {
            conn.rbuf.clear();
            conn.roff = 0;
        } else if conn.roff >= READ_CHUNK {
            conn.rbuf.drain(..conn.roff);
            conn.roff = 0;
        }
        consumed
    }

    /// Queue the in-order terminal answer for undecodable input.
    fn reject(&mut self, conn: &mut Conn<'e>, error: ProtocolError) {
        conn.pipeline.push_back(Item::Fail(error));
        conn.poisoned = true;
        conn.read_deadline = None;
    }

    fn handle_hello(&mut self, conn: &mut Conn<'e>, tag: u8, span: Range<usize>) {
        let frame = match Frame::decode(tag, &conn.rbuf[span]) {
            Ok(frame) => frame,
            Err(e) => {
                self.reject(conn, e);
                return;
            }
        };
        let Frame::Hello {
            magic,
            version,
            batch_records,
            max_in_flight,
            auth_token,
        } = frame
        else {
            self.reject(conn, ProtocolError::Malformed("expected Hello"));
            return;
        };
        if magic != MAGIC {
            self.reject(conn, ProtocolError::BadMagic(magic));
            return;
        }
        if version < MIN_PROTOCOL_VERSION {
            self.reject(conn, ProtocolError::UnsupportedVersion(version));
            return;
        }
        if let Some(required) = self.config.auth_token.as_deref() {
            // Constant-time compare; an absent token compares as empty
            // (same timing as a wrong one).
            let supplied = auth_token.as_deref().unwrap_or("");
            if !constant_time_eq(required.as_bytes(), supplied.as_bytes()) {
                self.shared
                    .counters
                    .auth_failures
                    .fetch_add(1, Ordering::Relaxed);
                conn.pipeline.push_back(Item::Deny {
                    code: ErrorCode::Unauthorized,
                    message: "invalid auth token".into(),
                });
                conn.poisoned = true;
                conn.read_deadline = None;
                return;
            }
        }
        // Resolve the session shape: client hints can shrink, never grow,
        // the server-side bounds (the engine's credit bound is the
        // protocol's credit bound — one resident engine batch per credit).
        let server_batch = if self.config.session.batch_records > 0 {
            self.config.session.batch_records
        } else {
            self.engine.config().batch_records
        };
        let server_credit = if self.config.session.max_in_flight > 0 {
            self.config.session.max_in_flight
        } else {
            self.engine.config().effective_session_in_flight()
        };
        let batch = match batch_records as usize {
            0 => server_batch,
            requested => requested.min(server_batch.max(1)),
        };
        // The engine clamps session credits at MAX_SESSION_IN_FLIGHT (the
        // result channel is pre-sized to the credit); announce the clamped
        // value so the client's window matches the session's real bound.
        let credits = match max_in_flight as usize {
            0 => server_credit,
            requested => requested.clamp(1, server_credit),
        }
        .min(metacache::serving::MAX_SESSION_IN_FLIGHT);
        // The delivery notifier re-enters the loop through the wakeup
        // pipe: it runs on engine worker threads after each batch lands in
        // the session's channel.
        let token = conn.token;
        let shared = Arc::clone(&self.shared);
        let notify: Arc<dyn Fn() + Send + Sync> = Arc::new(move || {
            shared
                .completions
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(token);
            shared.waker.wake();
        });
        conn.session = Some(self.engine.session_with_notify(
            SessionConfig {
                batch_records: batch,
                max_in_flight: credits,
                class: self.config.session.class,
            },
            notify,
        ));
        // The connection speaks min(client, server): a v1 peer gets a
        // bit-identical v1 conversation, a v2 peer may send packed
        // requests, and a future (higher-versioned) client is downgraded
        // to our version instead of rejected.
        conn.version = version.min(PROTOCOL_VERSION);
        conn.phase = Phase::Open;
        push_frame(
            &mut conn.out,
            &Frame::HelloAck {
                version: conn.version,
                // Saturate, never wrap: a server configured beyond u32
                // range must announce u32::MAX, not a truncated credit.
                credits: u32::try_from(credits).unwrap_or(u32::MAX),
                batch_records: u32::try_from(batch).unwrap_or(u32::MAX),
                backend: self.engine.backend_name().to_string(),
            },
        );
    }

    fn handle_frame(&mut self, conn: &mut Conn<'e>, tag: u8, span: Range<usize>) {
        match tag {
            t if t == frame_type::CLASSIFY || t == frame_type::CLASSIFY_PACKED => {
                if t == frame_type::CLASSIFY_PACKED && conn.version < PACKED_MIN_VERSION {
                    // A v1 peer must not smuggle in v2 frames.
                    self.reject(conn, ProtocolError::UnknownFrameType(t));
                    return;
                }
                let mut reads = conn.pool.pop().unwrap_or_default();
                match decode_classify_into(t, &conn.rbuf[span], &mut reads) {
                    Ok(request_id) => {
                        if conn.last_request_id.is_some_and(|last| request_id <= last) {
                            recycle_into(&mut conn.pool, self.pool_cap, reads);
                            self.reject(
                                conn,
                                ProtocolError::Malformed("request ids must increase"),
                            );
                            return;
                        }
                        conn.last_request_id = Some(request_id);
                        let read_count = reads.len() as u64;
                        let batch = conn
                            .session
                            .as_ref()
                            .expect("session exists after handshake")
                            .batch_records()
                            .max(1);
                        let total_batches = reads.len().div_ceil(batch);
                        let pending = if reads.is_empty() {
                            recycle_into(&mut conn.pool, self.pool_cap, reads);
                            None
                        } else if total_batches == 1 {
                            Some(Pending::Whole(reads))
                        } else {
                            Some(Pending::Chunks(reads.into_iter()))
                        };
                        conn.pipeline
                            .push_back(Item::Classify(Box::new(ClassifyReq {
                                request_id,
                                read_count,
                                admitted: false,
                                total_batches,
                                completed: 0,
                                failed: false,
                                pending,
                                stashed: None,
                                classifications: Vec::new(),
                                generation: None,
                                mixed: false,
                                drained: Vec::new(),
                            })));
                    }
                    Err(e) => self.reject(conn, e),
                }
            }
            t if t == frame_type::CANDIDATES => {
                if conn.version < CANDIDATES_MIN_VERSION {
                    // A pre-v4 peer must not smuggle in v4 frames.
                    self.reject(conn, ProtocolError::UnknownFrameType(t));
                    return;
                }
                let mut reads = conn.pool.pop().unwrap_or_default();
                match decode_classify_into(t, &conn.rbuf[span], &mut reads) {
                    Ok(request_id) => {
                        if conn.last_request_id.is_some_and(|last| request_id <= last) {
                            recycle_into(&mut conn.pool, self.pool_cap, reads);
                            self.reject(
                                conn,
                                ProtocolError::Malformed("request ids must increase"),
                            );
                            return;
                        }
                        conn.last_request_id = Some(request_id);
                        if self.engine.pin_epoch().database().partition_count() == 0 {
                            // A metadata-only database (a router fronting
                            // this very protocol) has no local table to
                            // query; answering with empty lists would
                            // silently corrupt a two-level scatter, so
                            // refuse the frame type.
                            recycle_into(&mut conn.pool, self.pool_cap, reads);
                            self.reject(
                                conn,
                                ProtocolError::UnknownFrameType(frame_type::CANDIDATES),
                            );
                            return;
                        }
                        let read_count = reads.len() as u64;
                        conn.pipeline.push_back(Item::Candidates(Box::new(CandReq {
                            request_id,
                            read_count,
                            admitted: false,
                            reads: Some(reads),
                            done: None,
                            generation: 0,
                        })));
                    }
                    Err(e) => self.reject(conn, e),
                }
            }
            t if t == frame_type::PING => {
                if conn.version < LIVENESS_MIN_VERSION {
                    // A pre-v3 peer must not smuggle in v3 frames.
                    self.reject(conn, ProtocolError::UnknownFrameType(t));
                    return;
                }
                match Frame::decode(t, &conn.rbuf[span]) {
                    Ok(Frame::Ping { nonce }) => conn.pipeline.push_back(Item::Ping { nonce }),
                    Ok(_) => unreachable!("PING tag decodes to Frame::Ping"),
                    Err(e) => self.reject(conn, e),
                }
            }
            t if t == frame_type::RELOAD => {
                if conn.version < RELOAD_MIN_VERSION {
                    // A pre-v5 peer must not smuggle in v5 frames.
                    self.reject(conn, ProtocolError::UnknownFrameType(t));
                    return;
                }
                match Frame::decode(t, &conn.rbuf[span]) {
                    Ok(Frame::Reload) => conn.pipeline.push_back(Item::Reload {
                        started: false,
                        done: None,
                    }),
                    Ok(_) => unreachable!("RELOAD tag decodes to Frame::Reload"),
                    Err(e) => self.reject(conn, e),
                }
            }
            t if t == frame_type::GOODBYE && span.is_empty() => {
                // Clean end of stream: stop reading, discard anything the
                // peer pipelined after its goodbye, serve what is queued.
                conn.close_read();
                conn.poisoned = true;
            }
            t => {
                // Control frames and garbage: decode only to classify the
                // failure precisely (unknown tag, trailing bytes, …).
                let error = match Frame::decode(t, &conn.rbuf[span]) {
                    Ok(_) => ProtocolError::Malformed("unexpected frame after handshake"),
                    Err(e) => e,
                };
                self.reject(conn, error);
            }
        }
    }

    // --- dispatch -------------------------------------------------------

    /// Admit and dispatch decoded requests in pipeline order: classify
    /// batches go to the engine session (as many as credits and queue
    /// space allow — consecutive requests overlap), candidates requests go
    /// to the pool. Stops at the first submission-blocked item so engine
    /// submission order always matches request order.
    fn pump_submit(&mut self, token: u64, conn: &mut Conn<'e>) -> bool {
        if conn.dead || conn.closing || conn.session.is_none() {
            return false;
        }
        let cap = self.config.max_inflight_records as u64;
        let mut progress = false;
        let mut idx = 0;
        while let Some(item) = conn.pipeline.get_mut(idx) {
            match item {
                Item::Classify(req) => {
                    if !req.admitted {
                        // Reserve the records in the global gauge, then
                        // decide whether to shed. Only v3 peers can be shed
                        // — a request-level Busy is this request's
                        // (in-order) answer; v1/v2 peers have no shed
                        // vocabulary and keep blocking backpressure.
                        let rc = req.read_count;
                        let inflight = self
                            .shared
                            .inflight_records
                            .fetch_add(rc, Ordering::Relaxed)
                            + rc;
                        let shed = conn.version >= LIVENESS_MIN_VERSION
                            && cap > 0
                            && (inflight > cap
                                // High-water admission: a brand-new stream
                                // is refused while the fair queue is
                                // saturated, so a flood of fresh sessions
                                // cannot starve established ones (exempt).
                                || (!conn.served_any
                                    && conn
                                        .session
                                        .as_ref()
                                        .expect("session exists")
                                        .over_high_water()));
                        if shed {
                            self.shared
                                .inflight_records
                                .fetch_sub(rc, Ordering::Relaxed);
                            self.shared
                                .counters
                                .shed_requests
                                .fetch_add(1, Ordering::Relaxed);
                            let request_id = req.request_id;
                            match req.pending.take() {
                                Some(Pending::Whole(v)) => {
                                    recycle_into(&mut conn.pool, self.pool_cap, v)
                                }
                                Some(Pending::Chunks(it)) => {
                                    recycle_into(&mut conn.pool, self.pool_cap, it.collect())
                                }
                                None => {}
                            }
                            *item = Item::Busy { request_id };
                            progress = true;
                            idx += 1;
                            continue;
                        }
                        req.admitted = true;
                        conn.gauge += rc;
                        conn.served_any = true;
                        progress = true;
                    }
                    if req.pending.is_some() || req.stashed.is_some() {
                        let session = conn.session.as_mut().expect("session exists");
                        let batch = session.batch_records().max(1);
                        loop {
                            let chunk = match req.stashed.take() {
                                Some(chunk) => chunk,
                                None => match next_chunk(&mut req.pending, batch) {
                                    Some(chunk) => chunk,
                                    None => break,
                                },
                            };
                            match session.try_submit_owned(chunk) {
                                Ok(()) => {
                                    conn.submit_order.push_back(req.request_id);
                                    progress = true;
                                }
                                Err(back) => {
                                    // Out of credits or queue space: park
                                    // until a drain or a queue-space wake,
                                    // and stop the walk (order!).
                                    req.stashed = Some(back);
                                    self.space_waiters.insert(token);
                                    return progress;
                                }
                            }
                        }
                    }
                    idx += 1;
                }
                Item::Candidates(req) => {
                    if !req.admitted {
                        let rc = req.read_count;
                        let inflight = self
                            .shared
                            .inflight_records
                            .fetch_add(rc, Ordering::Relaxed)
                            + rc;
                        // Same shed policy as classify requests (candidates
                        // require ≥ v4, so the peer always speaks Busy).
                        let shed = cap > 0
                            && (inflight > cap
                                || (!conn.served_any
                                    && conn
                                        .session
                                        .as_ref()
                                        .expect("session exists")
                                        .over_high_water()));
                        if shed {
                            self.shared
                                .inflight_records
                                .fetch_sub(rc, Ordering::Relaxed);
                            self.shared
                                .counters
                                .shed_requests
                                .fetch_add(1, Ordering::Relaxed);
                            let request_id = req.request_id;
                            if let Some(reads) = req.reads.take() {
                                recycle_into(&mut conn.pool, self.pool_cap, reads);
                            }
                            *item = Item::Busy { request_id };
                            progress = true;
                            idx += 1;
                            continue;
                        }
                        req.admitted = true;
                        conn.gauge += rc;
                        conn.served_any = true;
                        progress = true;
                    }
                    if let Some(reads) = req.reads.take() {
                        self.jobs.push(CandJob {
                            conn: conn.token,
                            request_id: req.request_id,
                            reads,
                        });
                        progress = true;
                    }
                    idx += 1;
                }
                Item::Reload { started, done } => {
                    if !*started {
                        *started = true;
                        progress = true;
                        if self.reload_enabled {
                            self.reload_jobs.push(token);
                        } else {
                            *done =
                                Some(Err("live reload is not enabled on this server".to_string()));
                        }
                    }
                    idx += 1;
                }
                _ => idx += 1,
            }
        }
        progress
    }

    /// Record a candidates result arriving from the pool.
    fn apply_candidate_result(&mut self, conn: &mut Conn<'e>, result: CandDone) {
        recycle_into(&mut conn.pool, self.pool_cap, result.reads);
        let Some(req) = conn.pipeline.iter_mut().find_map(|item| match item {
            Item::Candidates(r) if r.request_id == result.request_id => Some(r),
            _ => None,
        }) else {
            return;
        };
        req.done = Some(result.lists);
        req.generation = result.generation;
        if req.read_count > 0 {
            conn.gauge -= req.read_count;
            self.shared
                .inflight_records
                .fetch_sub(req.read_count, Ordering::Relaxed);
        }
    }

    /// Record a reload outcome arriving from the reload worker: it resolves
    /// the connection's oldest dispatched-but-unanswered `Reload` item
    /// (reloads are dispatched and resolved in FIFO order through the
    /// single worker).
    fn apply_reload_result(&mut self, conn: &mut Conn<'e>, result: ReloadDone) {
        let slot = conn.pipeline.iter_mut().find_map(|item| match item {
            Item::Reload { started, done } if *started && done.is_none() => Some(done),
            _ => None,
        });
        if let Some(done) = slot {
            *done = Some(result.result);
        }
    }

    // --- emission -------------------------------------------------------

    /// Encode completed responses from the front of the pipeline, strictly
    /// in request order, into the outbound buffer.
    fn pump_emit(&mut self, conn: &mut Conn<'e>) -> bool {
        let mut progress = false;
        while !conn.closing && !conn.dead {
            let ready = match conn.pipeline.front() {
                None => break,
                Some(Item::Classify(r)) => {
                    r.admitted
                        && r.pending.is_none()
                        && r.stashed.is_none()
                        && r.completed == r.total_batches
                }
                Some(Item::Candidates(r)) => r.done.is_some(),
                Some(Item::Reload { done, .. }) => done.is_some(),
                Some(Item::Ping { .. })
                | Some(Item::Busy { .. })
                | Some(Item::Fail(_))
                | Some(Item::Deny { .. }) => true,
            };
            if !ready {
                break;
            }
            let item = conn.pipeline.pop_front().expect("front checked above");
            progress = true;
            match item {
                Item::Classify(req) => {
                    if req.failed {
                        // A backend worker panic is isolated to the owning
                        // session; answer with an error frame instead of a
                        // torn connection without a goodbye.
                        self.shared
                            .counters
                            .internal_errors
                            .fetch_add(1, Ordering::Relaxed);
                        push_frame(
                            &mut conn.out,
                            &Frame::Error {
                                code: ErrorCode::Internal,
                                message: format!(
                                    "classification failed for request {}",
                                    req.request_id
                                ),
                            },
                        );
                        conn.begin_close();
                    } else {
                        self.shared
                            .counters
                            .requests
                            .fetch_add(1, Ordering::Relaxed);
                        self.shared
                            .counters
                            .reads
                            .fetch_add(req.read_count, Ordering::Relaxed);
                        // v5 peers get the generation tag (an empty
                        // request never touched the table — it reports the
                        // current generation); older peers get the exact
                        // pre-v5 byte stream.
                        let generation = (conn.version >= RELOAD_MIN_VERSION)
                            .then(|| req.generation.unwrap_or_else(|| self.engine.generation()));
                        if encode_results_into(
                            &mut self.scratch,
                            req.request_id,
                            &req.classifications,
                            generation,
                        )
                        .is_ok()
                        {
                            conn.out.extend_from_slice(&self.scratch);
                        } else {
                            conn.dead = true;
                        }
                    }
                }
                Item::Candidates(req) => match req.done.expect("readiness checked") {
                    Some(lists) => {
                        self.shared
                            .counters
                            .requests
                            .fetch_add(1, Ordering::Relaxed);
                        self.shared
                            .counters
                            .reads
                            .fetch_add(req.read_count, Ordering::Relaxed);
                        let generation =
                            (conn.version >= RELOAD_MIN_VERSION).then_some(req.generation);
                        if encode_candidate_results_into(
                            &mut self.scratch,
                            req.request_id,
                            &lists,
                            generation,
                        )
                        .is_ok()
                        {
                            conn.out.extend_from_slice(&self.scratch);
                        } else {
                            conn.dead = true;
                        }
                    }
                    None => {
                        self.shared
                            .counters
                            .internal_errors
                            .fetch_add(1, Ordering::Relaxed);
                        push_frame(
                            &mut conn.out,
                            &Frame::Error {
                                code: ErrorCode::Internal,
                                message: format!(
                                    "candidate query failed for request {}",
                                    req.request_id
                                ),
                            },
                        );
                        conn.begin_close();
                    }
                },
                Item::Reload { done, .. } => match done.expect("readiness checked") {
                    Ok(generation) => {
                        push_frame(&mut conn.out, &Frame::ReloadAck { generation });
                    }
                    Err(message) => {
                        self.shared
                            .counters
                            .internal_errors
                            .fetch_add(1, Ordering::Relaxed);
                        push_frame(
                            &mut conn.out,
                            &Frame::Error {
                                code: ErrorCode::Internal,
                                message,
                            },
                        );
                        conn.begin_close();
                    }
                },
                Item::Ping { nonce } => push_frame(&mut conn.out, &Frame::Pong { nonce }),
                Item::Busy { request_id } => push_frame(
                    &mut conn.out,
                    &Frame::Busy {
                        request_id,
                        retry_after_ms: self.config.retry_after_ms,
                    },
                ),
                Item::Fail(error) => {
                    self.shared
                        .counters
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    push_frame(
                        &mut conn.out,
                        &Frame::Error {
                            code: error.code(),
                            message: error.to_string(),
                        },
                    );
                    conn.begin_close();
                }
                Item::Deny { code, message } => {
                    push_frame(&mut conn.out, &Frame::Error { code, message });
                    conn.begin_close();
                }
            }
        }
        progress
    }

    // --- write ----------------------------------------------------------

    fn pump_write(&mut self, conn: &mut Conn<'e>) -> bool {
        if conn.dead || conn.out.len() == conn.ooff {
            return false;
        }
        if conn.write_deadline.is_none() {
            if let Some(window) = conn.write_window {
                conn.write_deadline = Some(Instant::now() + window);
            }
        }
        let mut progress = false;
        loop {
            match conn.stream.write(&conn.out[conn.ooff..]) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    progress = true;
                    conn.ooff += n;
                    if conn.ooff == conn.out.len() {
                        conn.out.clear();
                        conn.ooff = 0;
                        conn.write_deadline = None;
                        break;
                    }
                    // Progress re-arms the stall window: the deadline
                    // bounds time without a single flushed byte.
                    if let Some(window) = conn.write_window {
                        conn.write_deadline = Some(Instant::now() + window);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        // A drained buffer that ballooned (one huge response) should not
        // stay pinned for the connection's lifetime.
        if conn.out.is_empty() && conn.out.capacity() > MAX_POOLED_BYTES {
            conn.out.shrink_to(READ_CHUNK);
        }
        progress
    }

    // --- readiness + timers ---------------------------------------------

    fn refresh_registration(&mut self, token: u64, conn: &mut Conn<'e>) {
        if conn.dead {
            return;
        }
        let want_read = !conn.read_closed && !conn.poisoned && !conn.closing && !self.gate(conn);
        let want_write = conn.out.len() > conn.ooff;
        let interest = Interest {
            readable: want_read,
            writable: want_write,
        };
        if interest != conn.interest {
            if self
                .poller
                .reregister(conn.stream.as_raw_fd(), token, interest)
                .is_err()
            {
                conn.dead = true;
                return;
            }
            conn.interest = interest;
        }
    }

    fn refresh_timers(&mut self, token: u64, conn: &mut Conn<'e>) {
        if conn.dead {
            return;
        }
        let earliest = match (conn.read_deadline, conn.write_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        };
        if let Some(at) = earliest {
            if conn.timer_at.is_none_or(|scheduled| at < scheduled) {
                self.timers.schedule(at, token);
                conn.timer_at = Some(at);
            }
        }
    }

    /// A timer entry popped for this connection: fire whichever real
    /// deadlines are actually due (lazy cancellation skips stale entries).
    fn fire_deadlines(&mut self, conn: &mut Conn<'e>, now: Instant) {
        if conn.write_deadline.is_some_and(|d| d <= now) {
            // A stalled reader with an unflushed backlog: no error frame
            // could reach it anyway — tear down and count the stall.
            self.shared
                .counters
                .write_stalls
                .fetch_add(1, Ordering::Relaxed);
            conn.dead = true;
            return;
        }
        if conn.read_deadline.is_some_and(|d| d <= now) {
            conn.read_deadline = None;
            self.shared
                .counters
                .timeouts
                .fetch_add(1, Ordering::Relaxed);
            let message = match (conn.phase, conn.in_frame) {
                (Phase::Handshake, _) => "handshake deadline elapsed",
                (Phase::Open, true) => "frame read deadline elapsed",
                (Phase::Open, false) => "idle timeout",
            };
            // The timeout answer is appended *behind* already-decoded
            // requests: they still classify and answer first, exactly like
            // the old reader→writer channel ordering.
            conn.pipeline.push_back(Item::Deny {
                code: ErrorCode::TimedOut,
                message: message.into(),
            });
            conn.poisoned = true;
            conn.rbuf.clear();
            conn.roff = 0;
        }
    }
}

/// One nonblocking read into the reassembly buffer.
enum ReadOutcome {
    Data,
    Eof,
    WouldBlock,
    Error,
}

fn read_chunk(stream: &mut TcpStream, rbuf: &mut Vec<u8>) -> ReadOutcome {
    let old = rbuf.len();
    rbuf.resize(old + READ_CHUNK, 0);
    loop {
        match stream.read(&mut rbuf[old..]) {
            Ok(0) => {
                rbuf.truncate(old);
                return ReadOutcome::Eof;
            }
            Ok(n) => {
                rbuf.truncate(old + n);
                return ReadOutcome::Data;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                rbuf.truncate(old);
                return ReadOutcome::WouldBlock;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                rbuf.truncate(old);
                return ReadOutcome::Error;
            }
        }
    }
}

/// Take the next engine batch off a request's undispatched reads.
fn next_chunk(pending: &mut Option<Pending>, batch: usize) -> Option<Vec<SequenceRecord>> {
    match pending.take() {
        None => None,
        Some(Pending::Whole(records)) => Some(records),
        Some(Pending::Chunks(mut iter)) => {
            let chunk: Vec<SequenceRecord> = iter.by_ref().take(batch).collect();
            if iter.len() > 0 {
                *pending = Some(Pending::Chunks(iter));
            }
            if chunk.is_empty() {
                None
            } else {
                Some(chunk)
            }
        }
    }
}

/// Encode a control frame straight into a connection's outbound buffer
/// (writes into a `Vec` cannot fail; the server's control frames always
/// encode).
fn push_frame(out: &mut Vec<u8>, frame: &Frame) {
    let _ = write_frame(out, frame);
}

/// Heap bytes a pooled record vector would keep alive: the spine plus every
/// record's retained *capacities* (not lengths — `clear_for_reuse` keeps
/// capacity, which is exactly what pooling preserves).
fn retained_bytes(records: &Vec<SequenceRecord>) -> usize {
    fn record_bytes(r: &SequenceRecord) -> usize {
        r.header.capacity()
            + r.sequence.capacity()
            + r.quality.capacity()
            + r.mate.as_ref().map_or(0, |m| record_bytes(m))
    }
    records.capacity() * std::mem::size_of::<SequenceRecord>()
        + records.iter().map(record_bytes).sum::<usize>()
}

/// Upper bound on the heap a single pooled record vector may retain. A
/// normal request (hundreds of reads, a few hundred bases each) is well
/// under 1 MiB; one maximum-size packed frame can legally decode to
/// ~256 MiB of sequence, which must not stay pinned for the connection's
/// lifetime.
const MAX_POOLED_BYTES: usize = 8 * 1024 * 1024;

/// Hand a drained record vector back to the connection's reuse pool,
/// bounding both the entry count and the retained bytes so a one-off giant
/// request cannot pin its buffers forever.
fn recycle_into(pool: &mut Vec<Vec<SequenceRecord>>, cap: usize, records: Vec<SequenceRecord>) {
    if retained_bytes(&records) > MAX_POOLED_BYTES {
        return;
    }
    if pool.len() < cap {
        pool.push(records);
    }
}

/// A candidate-pool worker: owns one warm classifier + scratch over the
/// engine's database and answers `Candidates` requests off the job queue.
/// The pool is lazily spawned and capped at the engine's worker count, so
/// server thread count stays O(workers).
fn candidate_worker(
    engine: &ServingEngine,
    jobs: Arc<Mutex<mpsc::Receiver<CandJob>>>,
    done: mpsc::Sender<CandDone>,
    waker: Waker,
) {
    let mut scratch = QueryScratch::new();
    loop {
        let job = jobs.lock().unwrap_or_else(|e| e.into_inner()).recv();
        let Ok(CandJob {
            conn,
            request_id,
            reads,
        }) = job
        else {
            break;
        };
        // Pin the epoch per job, never across the blocking recv: an idle
        // pool worker must not keep a swapped-out database alive. The
        // classifier is a thin view over the pinned database — rebuilding
        // it per job is cheap (the expensive state is the scratch, which
        // is kept warm across jobs).
        let epoch = engine.pin_epoch();
        let generation = epoch.generation();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let classifier = Classifier::new(epoch.database());
            let mut lists: Vec<Vec<Candidate>> = Vec::with_capacity(reads.len());
            for read in &reads {
                lists.push(
                    classifier
                        .candidates_with(read, &mut scratch)
                        .as_slice()
                        .to_vec(),
                );
            }
            lists
        }));
        drop(epoch);
        let lists = match outcome {
            Ok(lists) => Some(lists),
            Err(_) => {
                // The scratch may be mid-mutation after a panic: rebuild
                // it so the worker stays healthy for the next request.
                scratch = QueryScratch::new();
                None
            }
        };
        if done
            .send(CandDone {
                conn,
                request_id,
                reads,
                lists,
                generation,
            })
            .is_err()
        {
            break;
        }
        waker.wake();
    }
}

/// The reload worker: runs the installed [`ReloadHook`] for each queued
/// `Reload` request, serially. A panicking hook is answered like a failing
/// one — the worker stays alive for later reloads.
fn reload_worker(
    engine: &ServingEngine,
    hook: ReloadHook,
    jobs: mpsc::Receiver<u64>,
    done: mpsc::Sender<ReloadDone>,
    waker: Waker,
) {
    while let Ok(conn) = jobs.recv() {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| hook(engine)));
        let result = match outcome {
            Ok(result) => result,
            Err(_) => Err("reload hook panicked".to_string()),
        };
        if done.send(ReloadDone { conn, result }).is_err() {
            break;
        }
        waker.wake();
    }
}
