//! The blocking client of the `mc-net` protocol.
//!
//! [`NetClient`] is deliberately synchronous — the serving path is
//! thread-per-connection on both sides — and mirrors the engine's
//! [`Session`](metacache::serving::Session) API: [`NetClient::classify_batch`]
//! for one request/response exchange, [`NetClient::classify_iter`] for a
//! record stream pipelined over the connection's credit window.
//!
//! Results over the network are **bit-identical, including order,** to an
//! in-process session on the same engine (asserted by `tests/net.rs`): the
//! wire protocol adds framing, never semantics.

use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use mc_seqio::SequenceRecord;
use metacache::{Candidate, Classification};

use crate::protocol::{
    encode_candidates, encode_classify, encode_classify_packed, read_frame, write_frame, Frame,
    NetError, ProtocolError, BUSY_CONNECTION, CANDIDATES_MIN_VERSION, LIVENESS_MIN_VERSION, MAGIC,
    MIN_PROTOCOL_VERSION, PACKED_MIN_VERSION, PROTOCOL_VERSION, RELOAD_MIN_VERSION,
};

/// Connection preferences sent in the handshake. The server may shrink but
/// never grow them; `0` means "use the server's default".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClientConfig {
    /// Requested records per engine batch.
    pub batch_records: u32,
    /// Requested credit (simultaneously unanswered requests).
    pub max_in_flight: u32,
    /// Protocol version to announce in `Hello` (`0` = the crate's current
    /// version, [`PROTOCOL_VERSION`]). Announce `1` to force a verbatim v1
    /// conversation — useful against old servers and for measuring the
    /// packed encoding's bandwidth win.
    pub version: u16,
    /// Deadline for establishing the TCP connection (`None` = the OS
    /// default, typically tens of seconds).
    pub connect_timeout: Option<Duration>,
    /// Per-request deadline: the longest any single blocking receive may
    /// wait for server bytes. A stalled server surfaces as an
    /// [`std::io::ErrorKind::TimedOut`] I/O error (retryable) instead of a
    /// hang. `None` waits forever.
    pub request_timeout: Option<Duration>,
    /// Pre-shared token sent in `Hello` (requires announcing protocol v3 or
    /// later — earlier servers treat the token bytes as trailing garbage).
    pub auth_token: Option<String>,
}

/// Counters of one [`NetClient::classify_iter`] stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetSummary {
    /// Reads classified.
    pub reads: u64,
    /// `Classify` requests the stream was split into.
    pub requests: u64,
    /// High-water mark of simultaneously unanswered requests (bounded by
    /// the granted credit).
    pub peak_in_flight: u64,
}

/// A blocking connection to a [`NetServer`](crate::NetServer).
///
/// One client maps to one engine session on the server: results of each
/// request come back in read order, and distinct clients are fully isolated
/// from each other (a disconnecting or misbehaving client cannot affect
/// another's stream).
///
/// # Example
///
/// ```
/// # use std::sync::Arc;
/// # use mc_net::{NetClient, NetServer};
/// # use mc_seqio::SequenceRecord;
/// # use mc_taxonomy::{Rank, Taxonomy};
/// # use metacache::{build::CpuBuilder, serving::ServingEngine, MetaCacheConfig};
/// # let mut taxonomy = Taxonomy::with_root();
/// # taxonomy.add_node(100, 1, Rank::Species, "Species A").unwrap();
/// # let mut state = 11u64;
/// # let genome: Vec<u8> = (0..8000).map(|_| {
/// #     state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
/// #     b"ACGT"[(state >> 33) as usize % 4]
/// # }).collect();
/// # let mut builder = CpuBuilder::new(MetaCacheConfig::default(), taxonomy);
/// # builder.add_target(SequenceRecord::new("refA", genome.clone()), 100).unwrap();
/// # let engine = ServingEngine::host(Arc::new(builder.finish()));
/// # let server = NetServer::bind(&engine, "127.0.0.1:0").unwrap();
/// # let handle = server.handle();
/// # std::thread::scope(|scope| {
/// #     scope.spawn(|| server.run());
/// let mut client = NetClient::connect(handle.local_addr()).unwrap();
/// // One request/response exchange …
/// let reads = vec![SequenceRecord::new("r0", genome[300..450].to_vec())];
/// assert_eq!(client.classify_batch(&reads).unwrap()[0].taxon, 100);
/// // … or a pipelined stream over the connection's credit window.
/// let (classifications, summary) = client
///     .classify_iter((0..40).map(|i| {
///         SequenceRecord::new(format!("r{i}"), genome[i * 100..i * 100 + 150].to_vec())
///     }))
///     .unwrap();
/// assert_eq!(classifications.len(), 40);
/// assert!(summary.peak_in_flight <= u64::from(client.credits()));
/// #     drop(client);
/// #     handle.shutdown();
/// # });
/// # engine.shutdown();
/// ```
pub struct NetClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    credits: u32,
    batch_records: u32,
    backend: String,
    /// Protocol version negotiated in the handshake; ≥
    /// [`PACKED_MIN_VERSION`] means requests go out 2-bit packed.
    version: u16,
    next_request: u64,
    /// Set once the connection is unusable (error frame seen or I/O
    /// failure); later calls fail fast instead of deadlocking.
    dead: bool,
    /// The database generation tag of the most recent `Results` /
    /// `CandidateResults` / `ReloadAck` (v5 servers only; `None` before the
    /// first tagged response or on a pre-v5 conversation).
    last_generation: Option<u64>,
}

impl NetClient {
    /// Connect and handshake with default preferences.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect and handshake with explicit preferences.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Self, NetError> {
        let announced = if config.version == 0 {
            PROTOCOL_VERSION
        } else {
            config.version
        };
        if config.auth_token.is_some() && announced < LIVENESS_MIN_VERSION {
            // A pre-v3 server would read the token as trailing garbage and
            // reject the Hello; refuse locally with a clear error instead.
            return Err(ProtocolError::Malformed("auth token requires protocol v3").into());
        }
        let stream = connect_stream(addr, config.connect_timeout)?;
        let _ = stream.set_nodelay(true);
        // The per-request deadline rides on the socket: every blocking
        // receive wakes within it, turning a stalled server into a
        // retryable TimedOut error instead of a wedged client.
        stream.set_read_timeout(config.request_timeout)?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        write_frame(
            &mut writer,
            &Frame::Hello {
                magic: MAGIC,
                version: announced,
                batch_records: config.batch_records,
                max_in_flight: config.max_in_flight,
                auth_token: config.auth_token.clone(),
            },
        )?;
        writer.flush()?;
        let mut client = Self {
            reader,
            writer,
            credits: 1,
            batch_records: 1,
            backend: String::new(),
            version: MIN_PROTOCOL_VERSION,
            next_request: 0,
            dead: false,
            last_generation: None,
        };
        match client.read_reply()? {
            Frame::HelloAck {
                version,
                credits,
                batch_records,
                backend,
            } => {
                // The server picks min(client, server); anything above what
                // we announced (or below the floor) is a broken peer.
                if version > announced || version < MIN_PROTOCOL_VERSION {
                    return Err(ProtocolError::UnsupportedVersion(version).into());
                }
                client.version = version;
                client.credits = credits.max(1);
                client.batch_records = batch_records.max(1);
                client.backend = backend;
                Ok(client)
            }
            other => Err(ProtocolError::Malformed(unexpected(&other)).into()),
        }
    }

    /// The credit granted by the server: how many requests
    /// [`NetClient::classify_iter`] keeps in flight.
    pub fn credits(&self) -> u32 {
        self.credits
    }

    /// The server session's records-per-batch (also the request size
    /// [`NetClient::classify_iter`] uses).
    pub fn batch_records(&self) -> u32 {
        self.batch_records
    }

    /// The serving backend's label, as reported in the handshake.
    pub fn backend(&self) -> &str {
        self.backend.as_str()
    }

    /// The protocol version negotiated in the handshake. At
    /// [`PACKED_MIN_VERSION`] or above, requests cross the wire 2-bit
    /// packed (≈ 4× less request bandwidth on ACGT payloads); below it the
    /// connection is a bit-identical v1 verbatim conversation.
    pub fn protocol_version(&self) -> u16 {
        self.version
    }

    /// The database generation reported by the most recent `Results`,
    /// `CandidateResults` or `ReloadAck` of this connection — `None` until
    /// a v5 server has tagged a response. A streaming client watches this
    /// move to detect a mid-stream reference upgrade.
    pub fn database_generation(&self) -> Option<u64> {
        self.last_generation
    }

    /// Ask the server to hot-swap its database (rebuild / re-read its
    /// reference set) and block until the swap is published, returning the
    /// new generation. Requires a negotiated protocol of v5 or later
    /// ([`RELOAD_MIN_VERSION`]) and **no requests in flight** — the ack
    /// must be the next frame on the wire. A server without a configured
    /// reload hook answers with an `Error` frame ([`NetError::Remote`]);
    /// the old database keeps serving in that case.
    pub fn reload(&mut self) -> Result<u64, NetError> {
        self.check_alive()?;
        if self.version < RELOAD_MIN_VERSION {
            return Err(ProtocolError::Malformed("reload requires protocol v5").into());
        }
        if let Err(e) = write_frame(&mut self.writer, &Frame::Reload)
            .and_then(|()| self.writer.flush().map_err(NetError::from))
        {
            self.dead = true;
            return Err(e);
        }
        match self.read_reply()? {
            Frame::ReloadAck { generation } => {
                self.last_generation = Some(generation);
                Ok(generation)
            }
            other => {
                self.dead = true;
                Err(ProtocolError::Malformed(unexpected(&other)).into())
            }
        }
    }

    /// Probe connection liveness with a `Ping`/`Pong` round trip (also
    /// resets the server's idle-reaping clock). Requires a negotiated
    /// protocol of v3 or later and **no requests in flight** — the pong
    /// must be the next frame on the wire.
    pub fn ping(&mut self) -> Result<(), NetError> {
        self.check_alive()?;
        if self.version < LIVENESS_MIN_VERSION {
            return Err(ProtocolError::Malformed("ping requires protocol v3").into());
        }
        let nonce = self.next_request ^ 0x6d63_7069_6e67; // "mcping"
        if let Err(e) = write_frame(&mut self.writer, &Frame::Ping { nonce })
            .and_then(|()| self.writer.flush().map_err(NetError::from))
        {
            self.dead = true;
            return Err(e);
        }
        match self.read_reply()? {
            Frame::Pong { nonce: echoed } if echoed == nonce => Ok(()),
            Frame::Pong { .. } => {
                self.dead = true;
                Err(ProtocolError::Malformed("pong nonce mismatch").into())
            }
            other => {
                self.dead = true;
                Err(ProtocolError::Malformed(unexpected(&other)).into())
            }
        }
    }

    /// Classify a batch of reads in one request/response exchange. Returns
    /// one [`Classification`] per read, in read order.
    pub fn classify_batch(
        &mut self,
        reads: &[SequenceRecord],
    ) -> Result<Vec<Classification>, NetError> {
        let id = self.send_request(reads)?;
        self.recv_results(id)
    }

    /// Fetch each read's merged top-hit candidate list in one
    /// request/response exchange — the scatter leg a shard router drives
    /// against its shard servers. Returns one list per read, in read
    /// order, sorted by the classifier's deterministic candidate order.
    /// Requires a negotiated protocol of v4 or later
    /// ([`CANDIDATES_MIN_VERSION`]).
    pub fn candidates_batch(
        &mut self,
        reads: &[SequenceRecord],
    ) -> Result<Vec<Vec<Candidate>>, NetError> {
        let id = self.send_candidates_request(reads)?;
        Ok(self.recv_candidates(id)?.0)
    }

    /// [`NetClient::candidates_batch`] plus the response's database
    /// generation tag — the router's scatter leg uses this to refuse a
    /// torn merge of legs answering from different epochs.
    pub fn candidates_batch_tagged(
        &mut self,
        reads: &[SequenceRecord],
    ) -> Result<(Vec<Vec<Candidate>>, Option<u64>), NetError> {
        let id = self.send_candidates_request(reads)?;
        self.recv_candidates(id)
    }

    /// Stream reads through the connection, pipelining up to the granted
    /// credit of requests, and collect the classifications in input order.
    ///
    /// Reads are grouped into requests of [`NetClient::batch_records`]
    /// reads — each request is exactly one engine batch on the server, so
    /// the connection's credit window is the engine's per-session
    /// `max_in_flight` bound seen from the outside.
    pub fn classify_iter(
        &mut self,
        reads: impl IntoIterator<Item = SequenceRecord>,
    ) -> Result<(Vec<Classification>, NetSummary), NetError> {
        let chunk = self.batch_records as usize;
        let mut summary = NetSummary::default();
        let mut out = Vec::new();
        // Request ids are monotone and responses come back in request
        // order, so a simple count of unanswered requests is the window.
        let mut oldest_pending: u64 = self.next_request;
        let mut in_flight: u64 = 0;
        // Cap the eager allocation: `chunk` is server-announced and may be
        // saturated to u32::MAX by a server with huge configured batches.
        let mut current: Vec<SequenceRecord> = Vec::with_capacity(chunk.min(64 * 1024));
        let mut send_error: Option<NetError> = None;
        for read in reads {
            current.push(read);
            if current.len() >= chunk {
                if let Err(e) = self.pipeline_send(
                    &current,
                    &mut oldest_pending,
                    &mut in_flight,
                    &mut summary,
                    &mut out,
                ) {
                    send_error = Some(e);
                    break;
                }
                current.clear();
            }
        }
        if send_error.is_none() && !current.is_empty() {
            if let Err(e) = self.pipeline_send(
                &current,
                &mut oldest_pending,
                &mut in_flight,
                &mut summary,
                &mut out,
            ) {
                send_error = Some(e);
            }
        }
        // Drain everything still owed — also after a send error, so a
        // purely local failure (e.g. an unencodable read) leaves the
        // connection in sync and usable for the next request. If the
        // connection itself is dead, the drain fails fast and the original
        // error wins.
        while in_flight > 0 {
            match self.recv_results(oldest_pending) {
                Ok(results) => {
                    out.extend(results);
                    oldest_pending += 1;
                    in_flight -= 1;
                }
                Err(e) => return Err(send_error.unwrap_or(e)),
            }
        }
        if let Some(e) = send_error {
            return Err(e);
        }
        summary.reads = out.len() as u64;
        Ok((out, summary))
    }

    fn pipeline_send(
        &mut self,
        reads: &[SequenceRecord],
        oldest_pending: &mut u64,
        in_flight: &mut u64,
        summary: &mut NetSummary,
        out: &mut Vec<Classification>,
    ) -> Result<(), NetError> {
        while *in_flight >= u64::from(self.credits) {
            out.extend(self.recv_results(*oldest_pending)?);
            *oldest_pending += 1;
            *in_flight -= 1;
        }
        self.send_request(reads)?;
        *in_flight += 1;
        summary.requests += 1;
        summary.peak_in_flight = summary.peak_in_flight.max(*in_flight);
        Ok(())
    }

    /// Send a `Goodbye` and half-close the write side; the server finishes
    /// any in-flight work and closes. Called implicitly on drop.
    pub fn close(mut self) -> Result<(), NetError> {
        self.close_inner()?;
        self.dead = true; // drop must not send a second goodbye
        Ok(())
    }

    fn close_inner(&mut self) -> Result<(), NetError> {
        write_frame(&mut self.writer, &Frame::Goodbye)?;
        self.writer.flush()?;
        self.writer.get_ref().shutdown(Shutdown::Write)?;
        Ok(())
    }

    /// Whether the connection has been marked unusable (crate-internal:
    /// `RetryClient` decides between resend and reconnect with this).
    pub(crate) fn is_dead(&self) -> bool {
        self.dead
    }

    pub(crate) fn send_request(&mut self, reads: &[SequenceRecord]) -> Result<u64, NetError> {
        self.check_alive()?;
        // Encode straight from the borrowed slice — no clone of the reads,
        // and (on a v2 connection) sequences pack 2-bit directly into the
        // frame buffer without an owned encoded copy per read. An encode
        // failure is purely local (nothing reached the socket): report it
        // without burning the request id or killing the connection, which
        // stays usable for well-formed requests.
        let bytes = if self.version >= PACKED_MIN_VERSION {
            encode_classify_packed(self.next_request, reads)?
        } else {
            encode_classify(self.next_request, reads)?
        };
        if let Err(e) = self
            .writer
            .write_all(&bytes)
            .and_then(|()| self.writer.flush())
        {
            self.dead = true;
            return Err(e.into());
        }
        let request_id = self.next_request;
        self.next_request += 1;
        Ok(request_id)
    }

    pub(crate) fn send_candidates_request(
        &mut self,
        reads: &[SequenceRecord],
    ) -> Result<u64, NetError> {
        self.check_alive()?;
        if self.version < CANDIDATES_MIN_VERSION {
            return Err(ProtocolError::Malformed("candidates require protocol v4").into());
        }
        // Same locality contract as `send_request`: an encode failure never
        // reaches the socket, so it neither burns the id nor kills the
        // connection.
        let bytes = encode_candidates(self.next_request, reads)?;
        if let Err(e) = self
            .writer
            .write_all(&bytes)
            .and_then(|()| self.writer.flush())
        {
            self.dead = true;
            return Err(e.into());
        }
        let request_id = self.next_request;
        self.next_request += 1;
        Ok(request_id)
    }

    pub(crate) fn recv_candidates(
        &mut self,
        expect_id: u64,
    ) -> Result<(Vec<Vec<Candidate>>, Option<u64>), NetError> {
        self.check_alive()?;
        match self.read_reply()? {
            Frame::CandidateResults {
                request_id,
                candidates,
                generation,
            } => {
                if request_id != expect_id {
                    self.dead = true;
                    return Err(ProtocolError::Malformed("response out of order").into());
                }
                if generation.is_some() {
                    self.last_generation = generation;
                }
                Ok((candidates, generation))
            }
            other => {
                self.dead = true;
                Err(ProtocolError::Malformed(unexpected(&other)).into())
            }
        }
    }

    pub(crate) fn recv_results(&mut self, expect_id: u64) -> Result<Vec<Classification>, NetError> {
        self.check_alive()?;
        match self.read_reply()? {
            Frame::Results {
                request_id,
                entries,
                generation,
            } => {
                if request_id != expect_id {
                    self.dead = true;
                    return Err(ProtocolError::Malformed("response out of order").into());
                }
                if generation.is_some() {
                    self.last_generation = generation;
                }
                Ok(entries.iter().map(|e| e.to_classification()).collect())
            }
            other => {
                self.dead = true;
                Err(ProtocolError::Malformed(unexpected(&other)).into())
            }
        }
    }

    /// Read one frame, mapping `Error` frames and dead connections to
    /// client-side errors.
    fn read_reply(&mut self) -> Result<Frame, NetError> {
        match read_frame(&mut self.reader) {
            Ok(Some(Frame::Error { code, message })) => {
                self.dead = true;
                Err(NetError::Remote { code, message })
            }
            Ok(Some(Frame::Busy {
                request_id,
                retry_after_ms,
            })) => {
                // A request-level Busy is that request's (in-order) answer:
                // the connection stays usable. A connection-level Busy means
                // the server refused to serve this connection at all.
                if request_id == BUSY_CONNECTION {
                    self.dead = true;
                }
                Err(NetError::Busy { retry_after_ms })
            }
            Ok(Some(frame)) => Ok(frame),
            Ok(None) => {
                self.dead = true;
                Err(NetError::Disconnected)
            }
            Err(e) => {
                self.dead = true;
                Err(e)
            }
        }
    }

    fn check_alive(&self) -> Result<(), NetError> {
        if self.dead {
            return Err(NetError::Disconnected);
        }
        Ok(())
    }
}

impl Drop for NetClient {
    fn drop(&mut self) {
        if !self.dead {
            let _ = self.close_inner();
        }
    }
}

/// Connect with an optional per-address deadline. `connect_timeout`
/// requires resolved addresses, so resolution happens here either way.
fn connect_stream(
    addr: impl ToSocketAddrs,
    timeout: Option<Duration>,
) -> Result<TcpStream, NetError> {
    let Some(timeout) = timeout else {
        return Ok(TcpStream::connect(addr)?);
    };
    let mut last: Option<std::io::Error> = None;
    for resolved in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&resolved, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = Some(e),
        }
    }
    Err(last
        .unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "no addresses resolved")
        })
        .into())
}

/// Resolve `addr` once, for reuse across reconnects (`RetryPolicy` needs a
/// stable target that does not re-hit DNS on every attempt).
pub(crate) fn resolve_addrs(addr: impl ToSocketAddrs) -> Result<Vec<SocketAddr>, NetError> {
    let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
    if addrs.is_empty() {
        return Err(
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "no addresses resolved").into(),
        );
    }
    Ok(addrs)
}

fn unexpected(frame: &Frame) -> &'static str {
    match frame {
        Frame::Hello { .. } => "unexpected Hello",
        Frame::HelloAck { .. } => "unexpected HelloAck",
        Frame::Classify { .. } => "unexpected Classify",
        Frame::ClassifyPacked { .. } => "unexpected ClassifyPacked",
        Frame::Results { .. } => "unexpected Results",
        Frame::Error { .. } => "unexpected Error",
        Frame::Goodbye => "unexpected Goodbye",
        Frame::Ping { .. } => "unexpected Ping",
        Frame::Pong { .. } => "unexpected Pong",
        Frame::Busy { .. } => "unexpected Busy",
        Frame::Candidates { .. } => "unexpected Candidates",
        Frame::CandidateResults { .. } => "unexpected CandidateResults",
        Frame::Reload => "unexpected Reload",
        Frame::ReloadAck { .. } => "unexpected ReloadAck",
    }
}
