//! The `mc-net` wire protocol: length-prefixed binary frames.
//!
//! Every frame on the wire is
//!
//! ```text
//! ┌────────────┬──────────┬───────────────────────┐
//! │ len: u32le │ type: u8 │ payload (len − 1 B)   │
//! └────────────┴──────────┴───────────────────────┘
//! ```
//!
//! where `len` counts the type byte plus the payload (so `len ≥ 1`) and is
//! capped at [`MAX_FRAME_LEN`] — a reader can reject a corrupt or hostile
//! header before allocating anything. All integers are little-endian. The
//! full frame catalogue, the connection state machine and the error codes
//! are specified in `docs/SERVING.md`; this module is the single source of
//! truth for the encoding itself.
//!
//! A connection starts with a version handshake ([`Frame::Hello`] →
//! [`Frame::HelloAck`]), then carries any number of pipelined
//! [`Frame::Classify`] requests answered in order by [`Frame::Results`]
//! frames. Fatal conditions (bad magic, malformed payload, a worker panic)
//! are reported with a [`Frame::Error`] frame before the connection closes.
//!
//! Encoding and decoding are pure functions over byte buffers
//! ([`Frame::encode`] / [`Frame::decode`]) so they can be property-tested
//! without sockets; [`write_frame`] and [`read_frame`] adapt them to
//! `std::io` streams.

use std::io::{self, Read, Write};

use mc_seqio::SequenceRecord;
use mc_taxonomy::Rank;
use metacache::{Candidate, Classification};

/// Protocol magic carried by the [`Frame::Hello`] frame: `"MCNT"`.
pub const MAGIC: u32 = 0x4D43_4E54;

/// Current protocol version. Version 5 adds the live-reload vocabulary —
/// the [`Frame::Reload`] admin request and its [`Frame::ReloadAck`] answer,
/// plus a database-generation tag trailing [`Frame::Results`] and
/// [`Frame::CandidateResults`] so clients detect a mid-stream reference
/// upgrade; version 4 added the scatter-gather vocabulary
/// ([`Frame::Candidates`] / [`Frame::CandidateResults`], which let a router
/// merge per-shard top-hit lists instead of final classifications);
/// version 3 added the fault-tolerance vocabulary
/// ([`Frame::Ping`]/[`Frame::Pong`] liveness probes, the typed
/// [`Frame::Busy`] overload answer and the optional `Hello` auth token);
/// version 2 added the packed request encoding ([`Frame::ClassifyPacked`]).
pub const PROTOCOL_VERSION: u16 = 5;

/// Oldest protocol version a server still accepts. The connection speaks
/// `min(client version, PROTOCOL_VERSION)` — a v1 peer gets a bit-identical
/// v1 conversation and a future (higher-versioned) client is downgraded to
/// [`PROTOCOL_VERSION`]; only announcements below this floor are rejected
/// with [`ErrorCode::UnsupportedVersion`].
pub const MIN_PROTOCOL_VERSION: u16 = 1;

/// First protocol version that understands [`Frame::ClassifyPacked`]. On a
/// connection negotiated below this, the packed frame type is rejected as
/// [`ErrorCode::UnknownFrameType`].
pub const PACKED_MIN_VERSION: u16 = 2;

/// First protocol version that speaks the fault-tolerance vocabulary:
/// [`Frame::Ping`]/[`Frame::Pong`], [`Frame::Busy`] and the optional
/// `Hello` auth token. On a connection negotiated below this, those frame
/// types are rejected as [`ErrorCode::UnknownFrameType`] and the server
/// falls back to the v1/v2 behaviour (no shedding answer, no keepalives) —
/// old peers interoperate unchanged.
pub const LIVENESS_MIN_VERSION: u16 = 3;

/// First protocol version that speaks the scatter-gather vocabulary:
/// [`Frame::Candidates`] / [`Frame::CandidateResults`]. On a connection
/// negotiated below this, those frame types are rejected as
/// [`ErrorCode::UnknownFrameType`] — classification-only peers interoperate
/// unchanged.
pub const CANDIDATES_MIN_VERSION: u16 = 4;

/// First protocol version that speaks the live-reload vocabulary:
/// [`Frame::Reload`] / [`Frame::ReloadAck`] and the database-generation tag
/// trailing [`Frame::Results`] / [`Frame::CandidateResults`]. On a
/// connection negotiated below this, the reload frames are rejected as
/// [`ErrorCode::UnknownFrameType`] and results are encoded without the tag —
/// byte-identical to the v4 encoding, so pre-v5 peers interoperate
/// unchanged (a server may still hot-swap under them; they just cannot see
/// the generation move).
pub const RELOAD_MIN_VERSION: u16 = 5;

/// The `request_id` a [`Frame::Busy`] carries when the *connection* (not an
/// individual request) was refused — the server closes right after sending
/// it. Any other id means "this one request was shed; the connection stays
/// open, retry after the hinted delay".
pub const BUSY_CONNECTION: u64 = u64::MAX;

/// Upper bound on `len` (type byte + payload) of any frame: 64 MiB. A header
/// announcing more is rejected as [`ProtocolError::FrameTooLarge`] without
/// reading (or allocating) the payload.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Frame type tags (the byte after the length prefix).
pub mod frame_type {
    /// Client → server: connection handshake.
    pub const HELLO: u8 = 1;
    /// Server → client: handshake accepted, credits granted.
    pub const HELLO_ACK: u8 = 2;
    /// Client → server: one classification request (a batch of reads).
    pub const CLASSIFY: u8 = 3;
    /// Server → client: ordered classifications of one request.
    pub const RESULTS: u8 = 4;
    /// Either direction: fatal error; the connection closes after it.
    pub const ERROR: u8 = 5;
    /// Client → server: graceful end of stream (equivalent to a clean EOF).
    pub const GOODBYE: u8 = 6;
    /// Client → server: one classification request with 2-bit packed
    /// sequences (protocol version ≥ 2).
    pub const CLASSIFY_PACKED: u8 = 7;
    /// Client → server: liveness probe (protocol version ≥ 3).
    pub const PING: u8 = 8;
    /// Server → client: answer to a [`PING`], echoing its nonce.
    pub const PONG: u8 = 9;
    /// Server → client: the request (or connection) was shed under
    /// overload; retry after the hinted delay (protocol version ≥ 3).
    pub const BUSY: u8 = 10;
    /// Client → server: one candidate query (a batch of reads whose merged
    /// top-hit candidate lists, not final classifications, are wanted) —
    /// the scatter leg of a router (protocol version ≥ 4). The payload is
    /// identical to [`CLASSIFY_PACKED`].
    pub const CANDIDATES: u8 = 11;
    /// Server → client: per-read candidate lists answering a
    /// [`CANDIDATES`] request (protocol version ≥ 4).
    pub const CANDIDATE_RESULTS: u8 = 12;
    /// Client → server: hot-swap the serving database (admin request,
    /// protocol version ≥ 5).
    pub const RELOAD: u8 = 13;
    /// Server → client: answer to a [`RELOAD`], carrying the new database
    /// generation (protocol version ≥ 5).
    pub const RELOAD_ACK: u8 = 14;
}

/// Per-record flag bits of the packed read encoding
/// (inside [`Frame::ClassifyPacked`]).
pub mod record_flags {
    /// The sequence is 2-bit packed (otherwise it follows verbatim — the
    /// encoder's fallback when an exception-dense sequence would grow).
    pub const PACKED: u8 = 1 << 0;
    /// A quality string of exactly `seq_len` bytes follows the sequence.
    pub const HAS_QUALITY: u8 = 1 << 1;
    /// An exception list follows the packed bytes (only valid with
    /// [`PACKED`]).
    pub const HAS_EXCEPTIONS: u8 = 1 << 2;
    /// Every currently defined flag; any other bit is a `Malformed` error.
    pub const ALL: u8 = PACKED | HAS_QUALITY | HAS_EXCEPTIONS;
}

/// Error codes carried by [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The `Hello` magic did not match [`MAGIC`].
    BadMagic = 1,
    /// The peer speaks an unsupported protocol version.
    UnsupportedVersion = 2,
    /// A frame payload could not be decoded.
    Malformed = 3,
    /// An unknown frame type tag.
    UnknownFrameType = 4,
    /// A frame length exceeded [`MAX_FRAME_LEN`].
    FrameTooLarge = 5,
    /// The server failed internally while classifying (e.g. a backend
    /// worker panic); the request's results are lost.
    Internal = 6,
    /// The server is shutting down and no longer accepts requests.
    ShuttingDown = 7,
    /// The `Hello` auth token was missing or wrong for a server that
    /// requires one.
    Unauthorized = 8,
    /// The peer stalled past a connection deadline (handshake, mid-frame
    /// read, or idle without a [`Frame::Ping`]); the connection closes.
    TimedOut = 9,
}

impl ErrorCode {
    /// Decode a wire error code (unknown values map to `Malformed`).
    pub fn from_u16(value: u16) -> Self {
        match value {
            1 => Self::BadMagic,
            2 => Self::UnsupportedVersion,
            4 => Self::UnknownFrameType,
            5 => Self::FrameTooLarge,
            6 => Self::Internal,
            7 => Self::ShuttingDown,
            8 => Self::Unauthorized,
            9 => Self::TimedOut,
            _ => Self::Malformed,
        }
    }
}

/// A decoding failure: the bytes do not form a valid frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The `Hello` magic was wrong.
    BadMagic(u32),
    /// The peer's protocol version is not supported.
    UnsupportedVersion(u16),
    /// A frame announced a length over [`MAX_FRAME_LEN`] (or zero).
    FrameTooLarge(u32),
    /// Unknown frame type tag.
    UnknownFrameType(u8),
    /// The payload ended early or had trailing garbage.
    Truncated,
    /// A structurally invalid payload field.
    Malformed(&'static str),
    /// A read carried a mate that itself had a mate; the wire format only
    /// supports read pairs.
    NestedMate,
}

impl ProtocolError {
    /// The wire error code a server reports for this failure.
    pub fn code(&self) -> ErrorCode {
        match self {
            Self::BadMagic(_) => ErrorCode::BadMagic,
            Self::UnsupportedVersion(_) => ErrorCode::UnsupportedVersion,
            Self::FrameTooLarge(_) => ErrorCode::FrameTooLarge,
            Self::UnknownFrameType(_) => ErrorCode::UnknownFrameType,
            Self::Truncated | Self::Malformed(_) | Self::NestedMate => ErrorCode::Malformed,
        }
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic(got) => write!(f, "bad protocol magic {got:#010x}"),
            Self::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (want {PROTOCOL_VERSION})"
                )
            }
            Self::FrameTooLarge(len) => {
                write!(f, "frame length {len} outside 1..={MAX_FRAME_LEN}")
            }
            Self::UnknownFrameType(t) => write!(f, "unknown frame type {t}"),
            Self::Truncated => write!(f, "truncated frame payload"),
            Self::Malformed(what) => write!(f, "malformed frame: {what}"),
            Self::NestedMate => write!(f, "read mate must not itself carry a mate"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Any failure of a networked operation: transport, encoding, or an error
/// frame reported by the remote peer.
#[derive(Debug)]
pub enum NetError {
    /// A socket-level failure.
    Io(io::Error),
    /// The peer sent bytes that do not decode.
    Protocol(ProtocolError),
    /// The peer reported a fatal error frame and closed the connection.
    Remote {
        /// The reported error code.
        code: ErrorCode,
        /// Human-readable detail from the peer.
        message: String,
    },
    /// The connection closed before the expected response arrived.
    Disconnected,
    /// The peer shed the request (or refused the connection) under
    /// overload and hinted when to retry. Retryable by construction —
    /// [`crate::RetryClient`] backs off at least this long and resends.
    Busy {
        /// Server-suggested minimum delay before retrying, milliseconds.
        retry_after_ms: u32,
    },
}

impl NetError {
    /// Whether retrying the same operation (possibly on a fresh
    /// connection) can succeed. Transient transport conditions — socket
    /// failures, disconnects, timeouts, overload sheds, a draining server —
    /// are retryable; protocol violations and rejections (bad magic,
    /// version, auth) are permanent and retrying would only repeat them.
    /// This is the classification [`crate::RetryClient`] acts on.
    pub fn is_retryable(&self) -> bool {
        match self {
            Self::Io(_) | Self::Disconnected | Self::Busy { .. } => true,
            Self::Remote { code, .. } => {
                matches!(code, ErrorCode::ShuttingDown | ErrorCode::TimedOut)
            }
            Self::Protocol(_) => false,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<ProtocolError> for NetError {
    fn from(e: ProtocolError) -> Self {
        Self::Protocol(e)
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Protocol(e) => write!(f, "protocol error: {e}"),
            Self::Remote { code, message } => {
                write!(f, "remote error {code:?}: {message}")
            }
            Self::Disconnected => write!(f, "connection closed mid-exchange"),
            Self::Busy { retry_after_ms } => {
                write!(f, "peer overloaded; retry after {retry_after_ms} ms")
            }
        }
    }
}

impl std::error::Error for NetError {}

/// Per-read status flags in a [`Frame::Results`] entry.
pub mod status {
    /// The read was assigned a taxon.
    pub const CLASSIFIED: u8 = 1 << 0;
    /// The entry carries a rank byte that is meaningful.
    pub const HAS_RANK: u8 = 1 << 1;
    /// The entry carries a best-target id that is meaningful.
    pub const HAS_TARGET: u8 = 1 << 2;
}

/// One decoded protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Connection handshake (client → server).
    Hello {
        /// Must equal [`MAGIC`].
        magic: u32,
        /// The client's protocol version.
        version: u16,
        /// Requested records per engine batch (`0` = server default).
        batch_records: u32,
        /// Requested in-flight request credit (`0` = server default).
        max_in_flight: u32,
        /// Optional pre-shared auth token (protocol version ≥ 3). When
        /// `None`, the payload is byte-identical to a v1/v2 `Hello`; a
        /// token rides as one trailing str16, which pre-v3 servers reject
        /// as trailing garbage — authenticating requires a v3 server.
        auth_token: Option<String>,
    },
    /// Handshake accepted (server → client).
    HelloAck {
        /// The server's protocol version.
        version: u16,
        /// Granted credit: the client may keep at most this many `Classify`
        /// frames unanswered.
        credits: u32,
        /// Records per engine batch the session was opened with.
        batch_records: u32,
        /// The serving backend's label (`"host"`, `"gpu-sim"`, …).
        backend: String,
    },
    /// One classification request (client → server), sequences verbatim.
    Classify {
        /// Client-chosen id echoed by the matching [`Frame::Results`].
        /// Must increase strictly monotonically within a connection.
        request_id: u64,
        /// The reads to classify.
        reads: Vec<SequenceRecord>,
    },
    /// One classification request with 2-bit packed sequences (protocol
    /// version ≥ 2). Decodes to exactly the same reads as the equivalent
    /// [`Frame::Classify`] — the packing is byte-exact (non-ACGT bytes ride
    /// in an exception side list) — at roughly a quarter of the wire bytes
    /// for ACGT-dominated payloads.
    ClassifyPacked {
        /// Client-chosen id echoed by the matching [`Frame::Results`].
        request_id: u64,
        /// The reads to classify.
        reads: Vec<SequenceRecord>,
    },
    /// Ordered classifications of one request (server → client).
    Results {
        /// The id of the request these results answer.
        request_id: u64,
        /// One entry per read, in the request's read order.
        entries: Vec<ResultEntry>,
        /// The database generation the whole request was classified
        /// against (protocol version ≥ 5). When `None`, the payload is
        /// byte-identical to a v1–v4 `Results`; the tag rides as one
        /// trailing u64, mirroring the `Hello` auth-token extension. A
        /// server never answers one request with mixed generations — a
        /// request caught mid-swap is replayed entirely on the new epoch.
        generation: Option<u64>,
    },
    /// Fatal error; the sender closes the connection after this frame.
    Error {
        /// Machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Graceful end of stream (client → server).
    Goodbye,
    /// Liveness probe (client → server, protocol version ≥ 3): an
    /// idle-but-alive streaming session pings within the server's idle
    /// timeout to keep its connection off the idle reaper.
    Ping {
        /// Client-chosen value echoed by the matching [`Frame::Pong`].
        nonce: u64,
    },
    /// Answer to a [`Frame::Ping`] (server → client), echoing its nonce.
    /// Ordered with `Results` frames: the server answers every frame of a
    /// connection in receive order.
    Pong {
        /// The nonce of the `Ping` this answers.
        nonce: u64,
    },
    /// Overload answer (server → client, protocol version ≥ 3): the
    /// request identified by `request_id` was shed instead of queued —
    /// or, with [`BUSY_CONNECTION`], the whole connection was refused and
    /// closes after this frame.
    Busy {
        /// The shed request's id, or [`BUSY_CONNECTION`].
        request_id: u64,
        /// Server-suggested minimum delay before retrying, milliseconds.
        retry_after_ms: u32,
    },
    /// One candidate query (client → server, protocol version ≥ 4): like
    /// [`Frame::ClassifyPacked`] — the payload encoding is byte-identical —
    /// but the server answers with each read's merged top-hit candidate
    /// list ([`Frame::CandidateResults`]) instead of final classifications.
    /// This is the scatter leg of the shard router: candidate lists from
    /// disjoint shards merge losslessly, final classifications do not.
    Candidates {
        /// Client-chosen id echoed by the matching
        /// [`Frame::CandidateResults`]. Must increase strictly
        /// monotonically within a connection.
        request_id: u64,
        /// The reads to query.
        reads: Vec<SequenceRecord>,
    },
    /// Ordered candidate lists of one [`Frame::Candidates`] request
    /// (server → client, protocol version ≥ 4).
    CandidateResults {
        /// The id of the request these lists answer.
        request_id: u64,
        /// One candidate list per read, in the request's read order; each
        /// list is sorted hits-descending with the classifier's
        /// deterministic tie-break and truncated to the server database's
        /// `top_candidates` capacity.
        candidates: Vec<Vec<Candidate>>,
        /// The database generation the lists were produced from (protocol
        /// version ≥ 5, trailing-optional exactly like
        /// [`Frame::Results`]). A router refuses to merge legs reporting
        /// different generations — that would be a torn mixed-epoch merge.
        generation: Option<u64>,
    },
    /// Hot-swap request (client → server, protocol version ≥ 5): rebuild /
    /// reload the serving database and swap it in with zero downtime.
    /// Answered — in receive order, after every earlier request of the
    /// connection — by a [`Frame::ReloadAck`] carrying the new generation,
    /// or by [`Frame::Error`] if the server has no reload hook configured
    /// or the reload failed (the swap is all-or-nothing; on failure the old
    /// epoch keeps serving).
    Reload,
    /// Answer to a [`Frame::Reload`] (server → client).
    ReloadAck {
        /// The database generation now serving.
        generation: u64,
    },
}

/// One read's classification on the wire (fixed 14 bytes:
/// status + taxon + rank + best_target + best_hits = 1+4+1+4+4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResultEntry {
    /// [`status`] flag bits.
    pub status: u8,
    /// Assigned taxon (`0` when unclassified).
    pub taxon: u32,
    /// Rank level (see `mc_taxonomy::Rank::level`); meaningful only with
    /// [`status::HAS_RANK`].
    pub rank: u8,
    /// Best candidate target id; meaningful only with [`status::HAS_TARGET`].
    pub best_target: u32,
    /// Hit count of the best candidate.
    pub best_hits: u32,
}

impl ResultEntry {
    /// Encode a [`Classification`] as a wire entry.
    pub fn from_classification(c: &Classification) -> Self {
        let mut status = 0u8;
        if c.is_classified() {
            status |= status::CLASSIFIED;
        }
        if c.rank.is_some() {
            status |= status::HAS_RANK;
        }
        if c.best_target.is_some() {
            status |= status::HAS_TARGET;
        }
        Self {
            status,
            taxon: c.taxon,
            rank: c.rank.map_or(0, Rank::level),
            best_target: c.best_target.unwrap_or(0),
            best_hits: c.best_hits,
        }
    }

    /// Decode a wire entry back into a [`Classification`].
    pub fn to_classification(self) -> Classification {
        Classification {
            taxon: self.taxon,
            rank: (self.status & status::HAS_RANK != 0).then(|| Rank::from_level(self.rank)),
            best_target: (self.status & status::HAS_TARGET != 0).then_some(self.best_target),
            best_hits: self.best_hits,
        }
    }
}

impl Frame {
    /// The frame's type tag.
    pub fn frame_type(&self) -> u8 {
        match self {
            Self::Hello { .. } => frame_type::HELLO,
            Self::HelloAck { .. } => frame_type::HELLO_ACK,
            Self::Classify { .. } => frame_type::CLASSIFY,
            Self::ClassifyPacked { .. } => frame_type::CLASSIFY_PACKED,
            Self::Results { .. } => frame_type::RESULTS,
            Self::Error { .. } => frame_type::ERROR,
            Self::Goodbye => frame_type::GOODBYE,
            Self::Ping { .. } => frame_type::PING,
            Self::Pong { .. } => frame_type::PONG,
            Self::Busy { .. } => frame_type::BUSY,
            Self::Candidates { .. } => frame_type::CANDIDATES,
            Self::CandidateResults { .. } => frame_type::CANDIDATE_RESULTS,
            Self::Reload => frame_type::RELOAD,
            Self::ReloadAck { .. } => frame_type::RELOAD_ACK,
        }
    }

    /// Append the frame's *payload* (everything after the type byte) to
    /// `out`. The envelope (length prefix + type byte) is written by
    /// [`Frame::encode`].
    fn encode_payload(&self, out: &mut Vec<u8>) -> Result<(), ProtocolError> {
        match self {
            Self::Hello {
                magic,
                version,
                batch_records,
                max_in_flight,
                auth_token,
            } => {
                put_u32(out, *magic);
                put_u16(out, *version);
                put_u32(out, *batch_records);
                put_u32(out, *max_in_flight);
                if let Some(token) = auth_token {
                    put_str16(out, token)?;
                }
            }
            Self::HelloAck {
                version,
                credits,
                batch_records,
                backend,
            } => {
                put_u16(out, *version);
                put_u32(out, *credits);
                put_u32(out, *batch_records);
                put_str16(out, backend)?;
            }
            Self::Classify { request_id, reads } => {
                encode_classify_payload(out, *request_id, reads)?;
            }
            Self::ClassifyPacked { request_id, reads } => {
                encode_classify_packed_payload(out, *request_id, reads)?;
            }
            Self::Results {
                request_id,
                entries,
                generation,
            } => {
                put_u64(out, *request_id);
                put_u32(
                    out,
                    u32::try_from(entries.len())
                        .map_err(|_| ProtocolError::Malformed("entry count"))?,
                );
                for e in entries {
                    out.push(e.status);
                    put_u32(out, e.taxon);
                    out.push(e.rank);
                    put_u32(out, e.best_target);
                    put_u32(out, e.best_hits);
                }
                // v5 generation tag: one trailing u64, absent pre-v5 (the
                // bare payload stays bit-compatible with v1–v4).
                if let Some(generation) = generation {
                    put_u64(out, *generation);
                }
            }
            Self::Error { code, message } => {
                put_u16(out, *code as u16);
                put_str16(out, message)?;
            }
            Self::Goodbye => {}
            Self::Ping { nonce } | Self::Pong { nonce } => put_u64(out, *nonce),
            Self::Busy {
                request_id,
                retry_after_ms,
            } => {
                put_u64(out, *request_id);
                put_u32(out, *retry_after_ms);
            }
            Self::Candidates { request_id, reads } => {
                encode_classify_packed_payload(out, *request_id, reads)?;
            }
            Self::CandidateResults {
                request_id,
                candidates,
                generation,
            } => {
                encode_candidate_results_payload(out, *request_id, candidates, *generation)?;
            }
            Self::Reload => {}
            Self::ReloadAck { generation } => put_u64(out, *generation),
        }
        Ok(())
    }

    /// Encode the full frame (length prefix, type byte, payload) into a
    /// fresh buffer. Fails if the frame cannot be represented (payload over
    /// [`MAX_FRAME_LEN`], oversized strings, a nested mate).
    pub fn encode(&self) -> Result<Vec<u8>, ProtocolError> {
        let mut out = vec![0u8; 4];
        out.push(self.frame_type());
        self.encode_payload(&mut out)?;
        seal_frame(out)
    }

    /// Decode a frame from its type tag and payload bytes (the envelope has
    /// already been stripped by [`read_frame`]). Rejects trailing garbage.
    pub fn decode(frame_type: u8, payload: &[u8]) -> Result<Self, ProtocolError> {
        let mut cursor = Cursor::new(payload);
        let frame = match frame_type {
            frame_type::HELLO => Self::Hello {
                magic: cursor.u32()?,
                version: cursor.u16()?,
                batch_records: cursor.u32()?,
                max_in_flight: cursor.u32()?,
                // A v3 peer may append one str16 auth token; the bare
                // 14-byte payload stays bit-compatible with v1/v2.
                auth_token: if cursor.is_empty() {
                    None
                } else {
                    Some(cursor.str16()?)
                },
            },
            frame_type::HELLO_ACK => Self::HelloAck {
                version: cursor.u16()?,
                credits: cursor.u32()?,
                batch_records: cursor.u32()?,
                backend: cursor.str16()?,
            },
            frame_type::CLASSIFY | frame_type::CLASSIFY_PACKED | frame_type::CANDIDATES => {
                let mut reads = Vec::new();
                let request_id = decode_classify_into(frame_type, payload, &mut reads)?;
                return Ok(match frame_type {
                    frame_type::CLASSIFY => Self::Classify { request_id, reads },
                    frame_type::CLASSIFY_PACKED => Self::ClassifyPacked { request_id, reads },
                    _ => Self::Candidates { request_id, reads },
                });
            }
            frame_type::RESULTS => {
                let request_id = cursor.u64()?;
                let count = cursor.u32()? as usize;
                let mut entries = Vec::with_capacity(count.min(payload.len() / 14 + 1));
                for _ in 0..count {
                    entries.push(ResultEntry {
                        status: cursor.u8()?,
                        taxon: cursor.u32()?,
                        rank: cursor.u8()?,
                        best_target: cursor.u32()?,
                        best_hits: cursor.u32()?,
                    });
                }
                Self::Results {
                    request_id,
                    entries,
                    // A v5 server appends one trailing generation u64; the
                    // bare payload stays bit-compatible with v1–v4.
                    generation: cursor.trailing_generation()?,
                }
            }
            frame_type::ERROR => Self::Error {
                code: ErrorCode::from_u16(cursor.u16()?),
                message: cursor.str16()?,
            },
            frame_type::GOODBYE => Self::Goodbye,
            frame_type::PING => Self::Ping {
                nonce: cursor.u64()?,
            },
            frame_type::PONG => Self::Pong {
                nonce: cursor.u64()?,
            },
            frame_type::BUSY => Self::Busy {
                request_id: cursor.u64()?,
                retry_after_ms: cursor.u32()?,
            },
            frame_type::CANDIDATE_RESULTS => {
                let request_id = cursor.u64()?;
                let read_count = cursor.u32()? as usize;
                // Grown per read, never by the announced count: a lying
                // count fails as `Truncated` before memory balloons.
                let mut candidates = Vec::new();
                for _ in 0..read_count {
                    let entry_count = cursor.u32()? as usize;
                    let mut list = Vec::with_capacity(entry_count.min(payload.len() / 16 + 1));
                    for _ in 0..entry_count {
                        list.push(Candidate {
                            target: cursor.u32()?,
                            window_begin: cursor.u32()?,
                            window_end: cursor.u32()?,
                            hits: cursor.u32()?,
                        });
                    }
                    candidates.push(list);
                }
                Self::CandidateResults {
                    request_id,
                    candidates,
                    generation: cursor.trailing_generation()?,
                }
            }
            frame_type::RELOAD => Self::Reload,
            frame_type::RELOAD_ACK => Self::ReloadAck {
                generation: cursor.u64()?,
            },
            other => return Err(ProtocolError::UnknownFrameType(other)),
        };
        cursor.finish()?;
        Ok(frame)
    }
}

/// Write the length prefix of an assembled `[0u8; 4] + type + payload`
/// buffer, validating the frame cap.
fn seal_frame(mut out: Vec<u8>) -> Result<Vec<u8>, ProtocolError> {
    let len = u32::try_from(out.len() - 4).map_err(|_| ProtocolError::FrameTooLarge(u32::MAX))?;
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge(len));
    }
    out[0..4].copy_from_slice(&len.to_le_bytes());
    Ok(out)
}

/// The one `Classify` payload encoder, shared by [`Frame::encode`] (owned
/// frame) and [`encode_classify`] (borrowed slice).
fn encode_classify_payload(
    out: &mut Vec<u8>,
    request_id: u64,
    reads: &[SequenceRecord],
) -> Result<(), ProtocolError> {
    put_u64(out, request_id);
    put_u32(
        out,
        u32::try_from(reads.len()).map_err(|_| ProtocolError::Malformed("read count"))?,
    );
    for read in reads {
        encode_record(out, read, true)?;
    }
    Ok(())
}

/// Encode a [`Frame::Classify`] directly from a borrowed read slice — the
/// v1 client hot path, byte-identical to building an owned frame and calling
/// [`Frame::encode`] but without cloning the reads first.
pub fn encode_classify(
    request_id: u64,
    reads: &[SequenceRecord],
) -> Result<Vec<u8>, ProtocolError> {
    let mut out = vec![0u8; 4];
    out.push(frame_type::CLASSIFY);
    encode_classify_payload(&mut out, request_id, reads)?;
    seal_frame(out)
}

/// Encode a [`Frame::ClassifyPacked`] directly from a borrowed read slice —
/// the v2 client hot path. Sequences are 2-bit packed straight into the
/// frame buffer (no intermediate encoded copy per read); decoding the frame
/// reproduces the reads byte for byte.
pub fn encode_classify_packed(
    request_id: u64,
    reads: &[SequenceRecord],
) -> Result<Vec<u8>, ProtocolError> {
    let mut out = vec![0u8; 4];
    out.push(frame_type::CLASSIFY_PACKED);
    encode_classify_packed_payload(&mut out, request_id, reads)?;
    seal_frame(out)
}

/// The `ClassifyPacked` payload encoder, shared by [`Frame::encode`] and
/// [`encode_classify_packed`].
fn encode_classify_packed_payload(
    out: &mut Vec<u8>,
    request_id: u64,
    reads: &[SequenceRecord],
) -> Result<(), ProtocolError> {
    put_u64(out, request_id);
    put_u32(
        out,
        u32::try_from(reads.len()).map_err(|_| ProtocolError::Malformed("read count"))?,
    );
    // One exception scratch for the whole frame (cleared per sequence);
    // records themselves are packed straight into `out`.
    let mut exceptions: Vec<(u32, u8)> = Vec::new();
    for read in reads {
        encode_record_packed(out, read, true, &mut exceptions)?;
    }
    Ok(())
}

/// A read on the wire: `header` (u16 length + UTF-8), `sequence`
/// (u32 length + bytes), `quality` (u32 length + bytes), then a mate flag
/// byte and — for paired reads — the mate encoded the same way (mates must
/// not nest further). A non-empty quality string must match the sequence
/// length (FASTQ semantics); mismatches fail to encode and fail to decode.
fn encode_record(
    out: &mut Vec<u8>,
    record: &SequenceRecord,
    allow_mate: bool,
) -> Result<(), ProtocolError> {
    if !record.quality.is_empty() && record.quality.len() != record.sequence.len() {
        return Err(ProtocolError::Malformed("quality/sequence length mismatch"));
    }
    put_str16(out, &record.header)?;
    put_bytes32(out, &record.sequence)?;
    put_bytes32(out, &record.quality)?;
    match (&record.mate, allow_mate) {
        (None, _) => out.push(0),
        (Some(_), false) => return Err(ProtocolError::NestedMate),
        (Some(mate), true) => {
            out.push(1);
            encode_record(out, mate, false)?;
        }
    }
    Ok(())
}

/// A read in the packed encoding: `header` (str16), `seq_len` (u32), a
/// [`record_flags`] byte, the sequence body, a quality string of exactly
/// `seq_len` bytes iff [`record_flags::HAS_QUALITY`], then the mate flag
/// byte as in the verbatim encoding.
///
/// With [`record_flags::PACKED`] the body is `seq_len.div_ceil(4)` bytes of
/// 2-bit codes ([`mc_kmer::pack_2bit`] layout) followed — iff
/// [`record_flags::HAS_EXCEPTIONS`] — by `count: u32` and `count` strictly
/// position-ascending `(pos: u32, byte: u8)` exceptions restoring the bytes
/// (`N`, lower case, anything non-ACGT) that 2-bit codes cannot represent.
/// Without `PACKED` the body is `seq_len` verbatim bytes — the encoder's
/// fallback when the exception list would outweigh the packing (chosen per
/// record, so a hostile all-`N` payload never inflates).
fn encode_record_packed(
    out: &mut Vec<u8>,
    record: &SequenceRecord,
    allow_mate: bool,
    exceptions: &mut Vec<(u32, u8)>,
) -> Result<(), ProtocolError> {
    if !record.quality.is_empty() && record.quality.len() != record.sequence.len() {
        return Err(ProtocolError::Malformed("quality/sequence length mismatch"));
    }
    put_str16(out, &record.header)?;
    let seq = record.sequence.as_slice();
    put_u32(
        out,
        u32::try_from(seq.len()).map_err(|_| ProtocolError::Malformed("bytes too long"))?,
    );
    let mut flags = if record.quality.is_empty() {
        0u8
    } else {
        record_flags::HAS_QUALITY
    };
    let flags_at = out.len();
    out.push(0); // patched below once the exception count is known
                 // Pack optimistically in one pass over the sequence; only an
                 // exception-dense record pays the rewind to verbatim.
    let packed_at = out.len();
    exceptions.clear();
    mc_kmer::pack_2bit(seq, out, exceptions);
    let packed_body = (out.len() - packed_at)
        + if exceptions.is_empty() {
            0
        } else {
            4 + 5 * exceptions.len()
        };
    if packed_body < seq.len() {
        flags |= record_flags::PACKED;
        if !exceptions.is_empty() {
            flags |= record_flags::HAS_EXCEPTIONS;
            put_u32(out, exceptions.len() as u32);
            for &(pos, byte) in exceptions.iter() {
                put_u32(out, pos);
                out.push(byte);
            }
        }
    } else {
        out.truncate(packed_at);
        out.extend_from_slice(seq);
    }
    out[flags_at] = flags;
    out.extend_from_slice(&record.quality);
    match (&record.mate, allow_mate) {
        (None, _) => out.push(0),
        (Some(_), false) => return Err(ProtocolError::NestedMate),
        (Some(mate), true) => {
            out.push(1);
            encode_record_packed(out, mate, false, exceptions)?;
        }
    }
    Ok(())
}

/// Decode a `Classify` / `ClassifyPacked` payload straight into a reusable
/// record vector, returning the request id. Existing records (and their
/// header/sequence/quality buffers, and mate boxes) are refilled in place;
/// the vector is truncated or grown to the decoded read count. This is the
/// server's zero-copy ingest path — after the first few requests of a
/// connection, decoding allocates nothing.
///
/// The whole payload must be consumed (trailing bytes are rejected), so the
/// result is exactly [`Frame::decode`]'s, without the per-request
/// allocations.
pub fn decode_classify_into(
    frame_type: u8,
    payload: &[u8],
    records: &mut Vec<SequenceRecord>,
) -> Result<u64, ProtocolError> {
    let packed = match frame_type {
        frame_type::CLASSIFY => false,
        // A `Candidates` request carries the exact `ClassifyPacked`
        // payload, so the server's zero-copy ingest handles both tags.
        frame_type::CLASSIFY_PACKED | frame_type::CANDIDATES => true,
        other => return Err(ProtocolError::UnknownFrameType(other)),
    };
    let mut cursor = Cursor::new(payload);
    let request_id = cursor.u64()?;
    let count = cursor.u32()? as usize;
    // No pre-allocation by the announced count: records are grown one by
    // one and every read consumes payload bytes, so a lying count fails
    // with `Truncated` before memory balloons.
    for i in 0..count {
        if records.len() <= i {
            records.push(SequenceRecord::default());
        }
        decode_record_into(&mut cursor, packed, true, &mut records[i])?;
    }
    records.truncate(count);
    cursor.finish()?;
    Ok(request_id)
}

fn decode_record_into(
    cursor: &mut Cursor<'_>,
    packed: bool,
    allow_mate: bool,
    record: &mut SequenceRecord,
) -> Result<(), ProtocolError> {
    let spare_mate = record.clear_for_reuse();
    cursor.str16_into(&mut record.header)?;
    if packed {
        decode_packed_sequence(cursor, record)?;
    } else {
        let sequence = cursor.bytes32()?;
        record.sequence.extend_from_slice(sequence);
        let quality = cursor.bytes32()?;
        if !quality.is_empty() && quality.len() != record.sequence.len() {
            return Err(ProtocolError::Malformed("quality/sequence length mismatch"));
        }
        record.quality.extend_from_slice(quality);
    }
    match cursor.u8()? {
        0 => {}
        1 if allow_mate => {
            let mut mate = spare_mate.unwrap_or_default();
            decode_record_into(cursor, packed, false, &mut mate)?;
            record.mate = Some(mate);
        }
        1 => return Err(ProtocolError::NestedMate),
        _ => return Err(ProtocolError::Malformed("mate flag")),
    }
    Ok(())
}

/// Decode the `seq_len`/flags/body/quality block of a packed record into
/// `record.sequence` / `record.quality` (both already cleared).
fn decode_packed_sequence(
    cursor: &mut Cursor<'_>,
    record: &mut SequenceRecord,
) -> Result<(), ProtocolError> {
    let len = cursor.u32()? as usize;
    let flags = cursor.u8()?;
    if flags & !record_flags::ALL != 0 {
        return Err(ProtocolError::Malformed("record flags"));
    }
    if flags & record_flags::PACKED != 0 {
        // Take the packed bytes before reserving the expansion: a lying
        // length fails as `Truncated` before any allocation.
        let packed = cursor.take(len.div_ceil(4))?;
        mc_kmer::unpack_2bit(packed, len, &mut record.sequence);
        if flags & record_flags::HAS_EXCEPTIONS != 0 {
            let count = cursor.u32()? as usize;
            if count == 0 || count > len {
                return Err(ProtocolError::Malformed("exception count"));
            }
            let mut previous: Option<usize> = None;
            for _ in 0..count {
                let pos = cursor.u32()? as usize;
                let byte = cursor.u8()?;
                if pos >= len || previous.is_some_and(|p| pos <= p) {
                    return Err(ProtocolError::Malformed("exception position"));
                }
                record.sequence[pos] = byte;
                previous = Some(pos);
            }
        }
    } else {
        if flags & record_flags::HAS_EXCEPTIONS != 0 {
            return Err(ProtocolError::Malformed("record flags"));
        }
        record.sequence.extend_from_slice(cursor.take(len)?);
    }
    if flags & record_flags::HAS_QUALITY != 0 {
        record.quality.extend_from_slice(cursor.take(len)?);
    }
    Ok(())
}

/// Encode a complete [`Frame::Results`] (envelope included) straight from a
/// classification slice into a reusable buffer — the server's response hot
/// path, byte-identical to building the frame's entry vector and calling
/// [`Frame::encode`], with zero allocations once `out` has grown.
pub fn encode_results_into(
    out: &mut Vec<u8>,
    request_id: u64,
    classifications: &[Classification],
    generation: Option<u64>,
) -> Result<(), ProtocolError> {
    out.clear();
    out.extend_from_slice(&[0u8; 4]);
    out.push(frame_type::RESULTS);
    put_u64(out, request_id);
    put_u32(
        out,
        u32::try_from(classifications.len())
            .map_err(|_| ProtocolError::Malformed("entry count"))?,
    );
    for c in classifications {
        let e = ResultEntry::from_classification(c);
        out.push(e.status);
        put_u32(out, e.taxon);
        out.push(e.rank);
        put_u32(out, e.best_target);
        put_u32(out, e.best_hits);
    }
    if let Some(generation) = generation {
        put_u64(out, generation);
    }
    let len = u32::try_from(out.len() - 4).map_err(|_| ProtocolError::FrameTooLarge(u32::MAX))?;
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge(len));
    }
    out[0..4].copy_from_slice(&len.to_le_bytes());
    Ok(())
}

/// Encode a [`Frame::Candidates`] directly from a borrowed read slice — the
/// router's scatter hot path. The payload is byte-identical to
/// [`encode_classify_packed`]'s; only the type tag differs.
pub fn encode_candidates(
    request_id: u64,
    reads: &[SequenceRecord],
) -> Result<Vec<u8>, ProtocolError> {
    let mut out = vec![0u8; 4];
    out.push(frame_type::CANDIDATES);
    encode_classify_packed_payload(&mut out, request_id, reads)?;
    seal_frame(out)
}

/// The `CandidateResults` payload encoder, shared by [`Frame::encode`] and
/// [`encode_candidate_results_into`]. Generic over the per-read list type so
/// the server encodes straight from borrowed [`metacache::CandidateList`]
/// slices while owned frames hold `Vec<Candidate>`.
fn encode_candidate_results_payload<L: AsRef<[Candidate]>>(
    out: &mut Vec<u8>,
    request_id: u64,
    reads: &[L],
    generation: Option<u64>,
) -> Result<(), ProtocolError> {
    put_u64(out, request_id);
    put_u32(
        out,
        u32::try_from(reads.len()).map_err(|_| ProtocolError::Malformed("read count"))?,
    );
    for list in reads {
        let list = list.as_ref();
        put_u32(
            out,
            u32::try_from(list.len()).map_err(|_| ProtocolError::Malformed("candidate count"))?,
        );
        for c in list {
            put_u32(out, c.target);
            put_u32(out, c.window_begin);
            put_u32(out, c.window_end);
            put_u32(out, c.hits);
        }
    }
    if let Some(generation) = generation {
        put_u64(out, generation);
    }
    Ok(())
}

/// Encode a complete [`Frame::CandidateResults`] (envelope included)
/// straight from per-read candidate slices into a reusable buffer — the
/// server's candidates response hot path, byte-identical to building the
/// frame's nested vectors and calling [`Frame::encode`], with zero
/// allocations once `out` has grown.
pub fn encode_candidate_results_into<L: AsRef<[Candidate]>>(
    out: &mut Vec<u8>,
    request_id: u64,
    reads: &[L],
    generation: Option<u64>,
) -> Result<(), ProtocolError> {
    out.clear();
    out.extend_from_slice(&[0u8; 4]);
    out.push(frame_type::CANDIDATE_RESULTS);
    encode_candidate_results_payload(out, request_id, reads, generation)?;
    let len = u32::try_from(out.len() - 4).map_err(|_| ProtocolError::FrameTooLarge(u32::MAX))?;
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge(len));
    }
    out[0..4].copy_from_slice(&len.to_le_bytes());
    Ok(())
}

/// Write one frame to a stream. Does not flush — callers batch frames and
/// flush at message boundaries.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), NetError> {
    let bytes = frame.encode()?;
    w.write_all(&bytes)?;
    Ok(())
}

/// Read one frame from a stream. Returns `Ok(None)` on a clean EOF at a
/// frame boundary; EOF inside a frame is [`NetError::Disconnected`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, NetError> {
    let mut payload = Vec::new();
    match read_frame_buf(r, &mut payload)? {
        None => Ok(None),
        Some(frame_type) => Ok(Some(Frame::decode(frame_type, &payload)?)),
    }
}

/// Read one frame's envelope into a reusable payload buffer, returning the
/// frame's type tag (`Ok(None)` on a clean EOF at a frame boundary). The
/// server's reader threads use this with one long-lived buffer per
/// connection so steady-state frame ingest allocates nothing; pair it with
/// [`Frame::decode`] or [`decode_classify_into`].
///
/// A peer that disappears after sending *part* of the 4-byte length prefix
/// is a torn connection ([`NetError::Disconnected`]), not a clean EOF —
/// only 0 bytes before EOF count as a frame boundary.
pub fn read_frame_buf(r: &mut impl Read, payload: &mut Vec<u8>) -> Result<Option<u8>, NetError> {
    payload.clear();
    let mut len_bytes = [0u8; 4];
    let mut filled = 0usize;
    while filled < len_bytes.len() {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(NetError::Disconnected),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge(len).into());
    }
    let mut frame_type = [0u8; 1];
    read_exact_or_disconnect(r, &mut frame_type)?;
    payload.resize(len as usize - 1, 0);
    read_exact_or_disconnect(r, payload)?;
    Ok(Some(frame_type[0]))
}

fn read_exact_or_disconnect(r: &mut impl Read, buf: &mut [u8]) -> Result<(), NetError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            NetError::Disconnected
        } else {
            NetError::Io(e)
        }
    })
}

/// Compare two byte strings in time independent of where they differ —
/// the auth-token check must not leak the matching prefix length through
/// timing. (Length still leaks; tokens are not secrets of varying length.)
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= usize::from(x ^ y);
    }
    diff == 0
}

// ---- little-endian primitives -------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str16(out: &mut Vec<u8>, s: &str) -> Result<(), ProtocolError> {
    let len = u16::try_from(s.len()).map_err(|_| ProtocolError::Malformed("string too long"))?;
    put_u16(out, len);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_bytes32(out: &mut Vec<u8>, bytes: &[u8]) -> Result<(), ProtocolError> {
    let len = u32::try_from(bytes.len()).map_err(|_| ProtocolError::Malformed("bytes too long"))?;
    put_u32(out, len);
    out.extend_from_slice(bytes);
    Ok(())
}

/// A checked payload reader: every accessor fails with
/// [`ProtocolError::Truncated`] instead of panicking on short input.
struct Cursor<'a> {
    rest: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(payload: &'a [u8]) -> Self {
        Self { rest: payload }
    }

    fn is_empty(&self) -> bool {
        self.rest.is_empty()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.rest.len() < n {
            return Err(ProtocolError::Truncated);
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes32(&mut self) -> Result<&'a [u8], ProtocolError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    fn str16(&mut self) -> Result<String, ProtocolError> {
        let mut out = String::new();
        self.str16_into(&mut out)?;
        Ok(out)
    }

    /// Decode a str16 into a reusable (already cleared) `String`.
    fn str16_into(&mut self, out: &mut String) -> Result<(), ProtocolError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        let text =
            std::str::from_utf8(bytes).map_err(|_| ProtocolError::Malformed("invalid utf-8"))?;
        out.push_str(text);
        Ok(())
    }

    /// The optional v5 database-generation tag: exactly 8 trailing bytes.
    /// Any other non-empty remainder is left for [`Cursor::finish`] to
    /// reject as trailing bytes — a complete untagged frame followed by
    /// garbage is malformed, not truncated.
    fn trailing_generation(&mut self) -> Result<Option<u64>, ProtocolError> {
        if self.rest.len() == 8 {
            Ok(Some(self.u64()?))
        } else {
            Ok(None)
        }
    }

    /// Require that the whole payload was consumed.
    fn finish(self) -> Result<(), ProtocolError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed("trailing bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let bytes = frame.encode().unwrap();
        let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        assert_eq!(len, bytes.len() - 4);
        let decoded = Frame::decode(bytes[4], &bytes[5..]).unwrap();
        assert_eq!(decoded, frame);
        // And through the io adapters.
        let mut cursor = io::Cursor::new(&bytes);
        let read = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(read, frame);
    }

    #[test]
    fn all_frame_kinds_roundtrip() {
        roundtrip(Frame::Hello {
            magic: MAGIC,
            version: PROTOCOL_VERSION,
            batch_records: 64,
            max_in_flight: 0,
            auth_token: None,
        });
        roundtrip(Frame::Hello {
            magic: MAGIC,
            version: PROTOCOL_VERSION,
            batch_records: 64,
            max_in_flight: 8,
            auth_token: Some("hunter2".into()),
        });
        roundtrip(Frame::HelloAck {
            version: PROTOCOL_VERSION,
            credits: 8,
            batch_records: 1024,
            backend: "host".into(),
        });
        let mut paired =
            SequenceRecord::with_quality("r1 pair", b"ACGT".to_vec(), b"IIII".to_vec());
        paired.mate = Some(Box::new(SequenceRecord::new("r1/2", b"GGTA".to_vec())));
        roundtrip(Frame::Classify {
            request_id: 42,
            reads: vec![
                SequenceRecord::new("plain", b"ACGTACGT".to_vec()),
                SequenceRecord::new("", Vec::new()),
                paired.clone(),
            ],
        });
        roundtrip(Frame::ClassifyPacked {
            request_id: 42,
            reads: vec![
                SequenceRecord::new("plain", b"ACGTACGTACGTACGTACGTACGT".to_vec()),
                SequenceRecord::new("", Vec::new()),
                SequenceRecord::new("ns", b"ACGTNNACGTNNacgtACGTACGT".to_vec()),
                SequenceRecord::new("all n", b"NNNNNNNN".to_vec()),
                paired,
            ],
        });
        roundtrip(Frame::Results {
            request_id: 42,
            entries: vec![
                ResultEntry {
                    status: status::CLASSIFIED | status::HAS_RANK | status::HAS_TARGET,
                    taxon: 100,
                    rank: Rank::Species.level(),
                    best_target: 3,
                    best_hits: 17,
                },
                ResultEntry {
                    status: 0,
                    taxon: 0,
                    rank: 0,
                    best_target: 0,
                    best_hits: 0,
                },
            ],
            generation: None,
        });
        roundtrip(Frame::Results {
            request_id: 43,
            entries: Vec::new(),
            generation: Some(7),
        });
        roundtrip(Frame::Reload);
        roundtrip(Frame::ReloadAck { generation: 3 });
        roundtrip(Frame::Error {
            code: ErrorCode::Malformed,
            message: "bad payload".into(),
        });
        roundtrip(Frame::Goodbye);
        roundtrip(Frame::Ping { nonce: 7 });
        roundtrip(Frame::Pong { nonce: u64::MAX });
        roundtrip(Frame::Busy {
            request_id: 3,
            retry_after_ms: 250,
        });
        roundtrip(Frame::Busy {
            request_id: BUSY_CONNECTION,
            retry_after_ms: 100,
        });
        roundtrip(Frame::Candidates {
            request_id: 43,
            reads: vec![
                SequenceRecord::new("plain", b"ACGTACGTACGTACGTACGTACGT".to_vec()),
                SequenceRecord::new("", Vec::new()),
                SequenceRecord::new("ns", b"ACGTNNACGTNNacgtACGTACGT".to_vec()),
            ],
        });
        roundtrip(Frame::CandidateResults {
            request_id: 43,
            candidates: vec![
                vec![
                    Candidate {
                        target: 2,
                        window_begin: 10,
                        window_end: 14,
                        hits: 31,
                    },
                    Candidate {
                        target: 0,
                        window_begin: 0,
                        window_end: 4,
                        hits: 30,
                    },
                ],
                Vec::new(),
                vec![Candidate {
                    target: u32::MAX,
                    window_begin: u32::MAX,
                    window_end: u32::MAX,
                    hits: u32::MAX,
                }],
            ],
            generation: None,
        });
        roundtrip(Frame::CandidateResults {
            request_id: 0,
            candidates: Vec::new(),
            generation: Some(u64::MAX),
        });
    }

    /// A `Candidates` frame must be byte-identical to the `ClassifyPacked`
    /// frame for the same reads except for its type tag: routers reuse the
    /// packed encoder and servers reuse the packed zero-copy decoder.
    #[test]
    fn candidates_payload_matches_classify_packed() {
        let reads = vec![
            SequenceRecord::new("a", b"ACGTACGTACGTNNACGT".to_vec()),
            SequenceRecord::with_quality("q", b"ACGTACGT".to_vec(), b"IIIIIIII".to_vec()),
        ];
        let packed = encode_classify_packed(9, &reads).unwrap();
        let cand = encode_candidates(9, &reads).unwrap();
        assert_eq!(cand[4], frame_type::CANDIDATES);
        assert_eq!(packed[4], frame_type::CLASSIFY_PACKED);
        assert_eq!(&cand[..4], &packed[..4]);
        assert_eq!(&cand[5..], &packed[5..]);
        // The owned-frame encoder and the borrowed hot path agree.
        let owned = Frame::Candidates {
            request_id: 9,
            reads: reads.clone(),
        }
        .encode()
        .unwrap();
        assert_eq!(owned, cand);
        // The server's zero-copy ingest accepts the CANDIDATES tag as packed.
        let mut records = Vec::new();
        let id = decode_classify_into(frame_type::CANDIDATES, &cand[5..], &mut records).unwrap();
        assert_eq!(id, 9);
        assert_eq!(records, reads);
    }

    /// The borrowed-slice `CandidateResults` hot path is byte-identical to
    /// encoding the owned frame.
    #[test]
    fn encode_candidate_results_into_matches_frame_encode() {
        let lists: Vec<Vec<Candidate>> = vec![
            vec![
                Candidate {
                    target: 1,
                    window_begin: 3,
                    window_end: 7,
                    hits: 12,
                },
                Candidate {
                    target: 4,
                    window_begin: 0,
                    window_end: 4,
                    hits: 12,
                },
            ],
            Vec::new(),
        ];
        let owned = Frame::CandidateResults {
            request_id: 77,
            candidates: lists.clone(),
            generation: None,
        }
        .encode()
        .unwrap();
        let mut hot = vec![0xAA; 3]; // stale contents must be cleared
        let borrowed: Vec<&[Candidate]> = lists.iter().map(Vec::as_slice).collect();
        encode_candidate_results_into(&mut hot, 77, &borrowed, None).unwrap();
        assert_eq!(hot, owned);
        // The tagged (v5) form also agrees with the owned encoder.
        let owned_tagged = Frame::CandidateResults {
            request_id: 77,
            candidates: lists.clone(),
            generation: Some(9),
        }
        .encode()
        .unwrap();
        encode_candidate_results_into(&mut hot, 77, &borrowed, Some(9)).unwrap();
        assert_eq!(hot, owned_tagged);
    }

    /// A truncated `CandidateResults` payload (count promising more entries
    /// than present) fails as `Truncated`, and trailing bytes are rejected.
    #[test]
    fn candidate_results_rejects_truncation_and_trailing_bytes() {
        let frame = Frame::CandidateResults {
            request_id: 5,
            candidates: vec![vec![Candidate {
                target: 1,
                window_begin: 0,
                window_end: 4,
                hits: 9,
            }]],
            generation: None,
        };
        let bytes = frame.encode().unwrap();
        let payload = &bytes[5..];
        assert_eq!(
            Frame::decode(frame_type::CANDIDATE_RESULTS, &payload[..payload.len() - 1]),
            Err(ProtocolError::Truncated)
        );
        let mut trailing = payload.to_vec();
        trailing.push(0);
        assert_eq!(
            Frame::decode(frame_type::CANDIDATE_RESULTS, &trailing),
            Err(ProtocolError::Malformed("trailing bytes"))
        );
    }

    /// The v3 `Hello` without a token must stay byte-identical to the
    /// v1/v2 wire layout (fixed 14-byte payload) — old servers keep
    /// accepting new clients that don't authenticate.
    #[test]
    fn tokenless_hello_is_bit_compatible_with_v1() {
        let bytes = Frame::Hello {
            magic: MAGIC,
            version: 1,
            batch_records: 32,
            max_in_flight: 4,
            auth_token: None,
        }
        .encode()
        .unwrap();
        assert_eq!(bytes.len(), 4 + 1 + 14);
        let mut expected = Vec::new();
        put_u32(&mut expected, MAGIC);
        put_u16(&mut expected, 1);
        put_u32(&mut expected, 32);
        put_u32(&mut expected, 4);
        assert_eq!(&bytes[5..], expected.as_slice());
    }

    #[test]
    fn hello_with_truncated_token_is_rejected() {
        let mut payload = Vec::new();
        put_u32(&mut payload, MAGIC);
        put_u16(&mut payload, 3);
        put_u32(&mut payload, 0);
        put_u32(&mut payload, 0);
        put_u16(&mut payload, 40); // token claims 40 bytes …
        payload.extend_from_slice(b"short"); // … but only 5 follow
        assert_eq!(
            Frame::decode(frame_type::HELLO, &payload),
            Err(ProtocolError::Truncated)
        );
    }

    #[test]
    fn constant_time_eq_matches_plain_equality() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"", b""),
            (b"a", b""),
            (b"", b"a"),
            (b"token", b"token"),
            (b"token", b"tokex"),
            (b"token", b"toke"),
            (b"aaaaaaaa", b"aaaaaaab"),
        ];
        for (a, b) in cases {
            assert_eq!(constant_time_eq(a, b), a == b, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn borrowed_classify_encoding_matches_owned() {
        let reads = vec![
            SequenceRecord::new("r0", b"ACGTACGT".to_vec()),
            SequenceRecord::with_quality("r1", b"GGTA".to_vec(), b"IIII".to_vec()),
        ];
        let borrowed = encode_classify(99, &reads).unwrap();
        let owned = Frame::Classify {
            request_id: 99,
            reads: reads.clone(),
        }
        .encode()
        .unwrap();
        assert_eq!(borrowed, owned);
        let borrowed_packed = encode_classify_packed(99, &reads).unwrap();
        let owned_packed = Frame::ClassifyPacked {
            request_id: 99,
            reads,
        }
        .encode()
        .unwrap();
        assert_eq!(borrowed_packed, owned_packed);
    }

    /// The headline property: both encodings of the same reads decode to the
    /// same reads, and the packed frame is about 4× smaller on ACGT-heavy
    /// payloads.
    #[test]
    fn packed_and_verbatim_decode_identically_and_packed_is_smaller() {
        let genome: Vec<u8> = (0..4000).map(|i| b"ACGT"[(i * 31 + 1) % 4]).collect();
        let reads: Vec<SequenceRecord> = (0..16)
            .map(|i| SequenceRecord::new(format!("r{i}"), genome[i * 200..i * 200 + 200].to_vec()))
            .collect();
        let verbatim = encode_classify(7, &reads).unwrap();
        let packed = encode_classify_packed(7, &reads).unwrap();
        let from_verbatim = match Frame::decode(verbatim[4], &verbatim[5..]).unwrap() {
            Frame::Classify { reads, .. } => reads,
            other => panic!("unexpected {other:?}"),
        };
        let from_packed = match Frame::decode(packed[4], &packed[5..]).unwrap() {
            Frame::ClassifyPacked { reads, .. } => reads,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(from_verbatim, reads);
        assert_eq!(from_packed, reads);
        assert!(
            packed.len() * 3 < verbatim.len(),
            "packed {} bytes vs verbatim {} bytes",
            packed.len(),
            verbatim.len()
        );
    }

    /// Exception-dense sequences fall back to verbatim bytes per record:
    /// the packed frame never inflates past the verbatim frame by more than
    /// the per-record flag byte.
    #[test]
    fn packed_encoding_never_inflates_on_hostile_payloads() {
        let reads: Vec<SequenceRecord> = (0..8)
            .map(|i| SequenceRecord::new(format!("n{i}"), vec![b'N'; 100 + i]))
            .collect();
        let verbatim = encode_classify(1, &reads).unwrap();
        let packed = encode_classify_packed(1, &reads).unwrap();
        assert!(packed.len() <= verbatim.len());
        let decoded = match Frame::decode(packed[4], &packed[5..]).unwrap() {
            Frame::ClassifyPacked { reads, .. } => reads,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(decoded, reads);
    }

    #[test]
    fn decode_classify_into_reuses_buffers_and_matches_frame_decode() {
        let reads = vec![
            SequenceRecord::with_quality("q0", b"ACGTNACGT".to_vec(), b"IIIIIIIII".to_vec()),
            SequenceRecord::new("q1", b"GGTAGGTAGGTA".to_vec())
                .with_mate(SequenceRecord::new("q1/2", b"TTACNN".to_vec())),
        ];
        for bytes in [
            encode_classify(5, &reads).unwrap(),
            encode_classify_packed(5, &reads).unwrap(),
        ] {
            // Pre-populate the reusable buffer with stale garbage records.
            let mut buffer: Vec<SequenceRecord> = (0..4)
                .map(|i| {
                    SequenceRecord::with_quality(
                        format!("stale{i}"),
                        vec![b'G'; 500],
                        vec![b'#'; 500],
                    )
                    .with_mate(SequenceRecord::new("stale mate", vec![b'T'; 100]))
                })
                .collect();
            let capacity_before = buffer[0].sequence.capacity();
            let request_id = decode_classify_into(bytes[4], &bytes[5..], &mut buffer).unwrap();
            assert_eq!(request_id, 5);
            assert_eq!(buffer, reads);
            assert!(
                buffer[0].sequence.capacity() >= capacity_before.min(500),
                "reused buffer lost its capacity"
            );
        }
    }

    #[test]
    fn quality_length_mismatch_is_rejected_both_ways() {
        let bad = SequenceRecord::with_quality("r", b"ACGTACGT".to_vec(), b"III".to_vec());
        // Encoding refuses to put the malformed record on the wire …
        for result in [
            encode_classify(1, std::slice::from_ref(&bad)),
            encode_classify_packed(1, std::slice::from_ref(&bad)),
        ] {
            assert_eq!(
                result,
                Err(ProtocolError::Malformed("quality/sequence length mismatch"))
            );
        }
        // … including when it hides in a mate.
        let carrier = SequenceRecord::new("ok", b"ACGT".to_vec()).with_mate(bad);
        assert!(encode_classify(1, std::slice::from_ref(&carrier)).is_err());
        assert!(encode_classify_packed(1, std::slice::from_ref(&carrier)).is_err());
        // And decoding rejects a hand-crafted v1 frame carrying one.
        let mut payload = Vec::new();
        put_u64(&mut payload, 1); // request id
        put_u32(&mut payload, 1); // read count
        put_str16(&mut payload, "r").unwrap();
        put_bytes32(&mut payload, b"ACGTACGT").unwrap();
        put_bytes32(&mut payload, b"III").unwrap();
        payload.push(0); // no mate
        assert_eq!(
            Frame::decode(frame_type::CLASSIFY, &payload),
            Err(ProtocolError::Malformed("quality/sequence length mismatch"))
        );
    }

    #[test]
    fn packed_exception_lists_are_validated() {
        // 40 bases, two exceptions at 36/37 — sparse enough that the
        // encoder picks the packed representation.
        let reads = vec![SequenceRecord::new(
            "n",
            b"ACGTACGTACGTACGTACGTACGTACGTACGTACGTNNGT".to_vec(),
        )];
        let bytes = encode_classify_packed(3, &reads).unwrap();
        let payload = bytes[5..].to_vec();
        // Locate the exception count: header(2+1) + seq_len(4) + flags(1)
        // + packed(ceil(40/4)=10) bytes into the record, which starts after
        // request id (8) + count (4).
        let exc_count_at = 8 + 4 + 3 + 4 + 1 + 10;
        assert_eq!(
            u32::from_le_bytes(payload[exc_count_at..exc_count_at + 4].try_into().unwrap()),
            2
        );
        // Out-of-range position.
        let mut corrupt = payload.clone();
        corrupt[exc_count_at + 4..exc_count_at + 8].copy_from_slice(&999u32.to_le_bytes());
        assert_eq!(
            Frame::decode(frame_type::CLASSIFY_PACKED, &corrupt),
            Err(ProtocolError::Malformed("exception position"))
        );
        // Non-increasing positions.
        let mut corrupt = payload.clone();
        let second = exc_count_at + 4 + 5;
        corrupt[second..second + 4].copy_from_slice(&4u32.to_le_bytes());
        assert_eq!(
            Frame::decode(frame_type::CLASSIFY_PACKED, &corrupt),
            Err(ProtocolError::Malformed("exception position"))
        );
        // Undefined record flag bits.
        let flags_at = 8 + 4 + 3 + 4;
        let mut corrupt = payload;
        corrupt[flags_at] |= 0x80;
        assert_eq!(
            Frame::decode(frame_type::CLASSIFY_PACKED, &corrupt),
            Err(ProtocolError::Malformed("record flags"))
        );
    }

    #[test]
    fn encode_results_into_matches_frame_encode() {
        let classifications = vec![
            Classification {
                taxon: 101,
                rank: Some(Rank::Genus),
                best_target: Some(7),
                best_hits: 21,
            },
            Classification::unclassified(),
        ];
        let entries: Vec<ResultEntry> = classifications
            .iter()
            .map(ResultEntry::from_classification)
            .collect();
        let framed = Frame::Results {
            request_id: 31,
            entries: entries.clone(),
            generation: None,
        }
        .encode()
        .unwrap();
        let mut reused = vec![0xAB; 64]; // stale content must be overwritten
        encode_results_into(&mut reused, 31, &classifications, None).unwrap();
        assert_eq!(reused, framed);
        // The tagged (v5) form also agrees with the owned encoder.
        let framed_tagged = Frame::Results {
            request_id: 31,
            entries,
            generation: Some(4),
        }
        .encode()
        .unwrap();
        encode_results_into(&mut reused, 31, &classifications, Some(4)).unwrap();
        assert_eq!(reused, framed_tagged);
        // The trailing tag is exactly eight bytes — a pre-v5 decoder would
        // see them as trailing garbage, which is why the tag is gated on
        // the negotiated version, never sent unconditionally.
        assert_eq!(framed_tagged.len(), framed.len() + 8);
    }

    #[test]
    fn classification_entry_roundtrips() {
        let classified = Classification {
            taxon: 101,
            rank: Some(Rank::Genus),
            best_target: Some(7),
            best_hits: 21,
        };
        let entry = ResultEntry::from_classification(&classified);
        assert_eq!(entry.to_classification(), classified);
        let unclassified = Classification::unclassified();
        let entry = ResultEntry::from_classification(&unclassified);
        assert_eq!(entry.status, 0);
        assert_eq!(entry.to_classification(), unclassified);
    }

    #[test]
    fn zero_and_oversized_lengths_are_rejected() {
        let mut cursor = io::Cursor::new(0u32.to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(NetError::Protocol(ProtocolError::FrameTooLarge(0)))
        ));
        let mut cursor = io::Cursor::new((MAX_FRAME_LEN + 1).to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(NetError::Protocol(ProtocolError::FrameTooLarge(_)))
        ));
    }

    #[test]
    fn eof_at_boundary_is_none_mid_frame_is_disconnect() {
        let mut empty = io::Cursor::new(Vec::new());
        assert!(matches!(read_frame(&mut empty), Ok(None)));
        let frame = Frame::Goodbye.encode().unwrap();
        let mut cut = io::Cursor::new(frame[..4].to_vec());
        assert!(matches!(read_frame(&mut cut), Err(NetError::Disconnected)));
    }

    /// Regression: a peer dropping after 1–3 bytes of the length prefix is
    /// a torn connection, not a clean EOF (`read_exact` reports
    /// `UnexpectedEof` for both, so the prefix must be read byte-counted).
    #[test]
    fn partial_length_prefix_is_disconnect_not_clean_eof() {
        let frame = Frame::Goodbye.encode().unwrap();
        for cut in 1..4 {
            let mut cursor = io::Cursor::new(frame[..cut].to_vec());
            assert!(
                matches!(read_frame(&mut cursor), Err(NetError::Disconnected)),
                "{cut}-byte prefix must be a disconnect"
            );
        }
    }

    /// An interrupted-then-resumed prefix read still assembles the frame.
    #[test]
    fn fragmented_length_prefix_still_reads() {
        struct OneByteAtATime(io::Cursor<Vec<u8>>);
        impl Read for OneByteAtATime {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                let n = buf.len().min(1);
                self.0.read(&mut buf[..n])
            }
        }
        let frame = Frame::Goodbye.encode().unwrap();
        let mut reader = OneByteAtATime(io::Cursor::new(frame));
        assert_eq!(read_frame(&mut reader).unwrap(), Some(Frame::Goodbye));
        assert_eq!(read_frame(&mut reader).unwrap(), None);
    }

    #[test]
    fn truncated_payloads_are_rejected() {
        let bytes = Frame::Classify {
            request_id: 9,
            reads: vec![SequenceRecord::new("r", b"ACGT".to_vec())],
        }
        .encode()
        .unwrap();
        // Every strict prefix of the payload fails to decode.
        for cut in 0..bytes.len() - 5 {
            let result = Frame::decode(bytes[4], &bytes[5..5 + cut]);
            assert!(result.is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let bytes = Frame::Goodbye.encode().unwrap();
        let mut payload = bytes[5..].to_vec();
        payload.push(0xAB);
        assert_eq!(
            Frame::decode(bytes[4], &payload),
            Err(ProtocolError::Malformed("trailing bytes"))
        );
    }

    #[test]
    fn unknown_frame_type_is_rejected() {
        assert_eq!(
            Frame::decode(200, &[]),
            Err(ProtocolError::UnknownFrameType(200))
        );
    }

    #[test]
    fn nested_mate_fails_to_encode() {
        let inner = SequenceRecord::new("m2", b"AC".to_vec());
        let mut mate = SequenceRecord::new("m1", b"GT".to_vec());
        mate.mate = Some(Box::new(inner));
        let mut read = SequenceRecord::new("r", b"ACGT".to_vec());
        read.mate = Some(Box::new(mate));
        assert_eq!(
            Frame::Classify {
                request_id: 1,
                reads: vec![read]
            }
            .encode(),
            Err(ProtocolError::NestedMate)
        );
    }
}
