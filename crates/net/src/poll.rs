//! Minimal readiness-polling shim for the event-loop server.
//!
//! Offline stand-in for the `mio` crate (consistent with the
//! `crates/vendor/` approach): a [`Poller`] multiplexes socket readiness
//! through `epoll(7)` on Linux — `epoll_create1`/`epoll_ctl`/`epoll_wait`
//! via thin hand-written FFI, no `libc` dependency — with a `poll(2)`
//! fallback compiled on every Unix and selectable at runtime with
//! `MC_NET_FORCE_POLL=1` (the fallback rebuilds its pollfd array per wait,
//! O(fds), fine for the test matrix; epoll is the production path).
//!
//! Level-triggered semantics throughout: an fd keeps reporting readiness
//! until drained, so the server may stop reading (backpressure) and resume
//! later without missing data. A [`Waker`] — the write end of a
//! non-blocking pipe whose read end lives in the poll set — lets engine
//! worker threads and `ServerHandle::shutdown` interrupt a blocked wait.
//! [`TimerHeap`] provides the loop's deadline source: a binary heap with
//! lazy cancellation (stale entries are skipped when popped), which is all
//! the "timer wheel" the connection count here needs.

use std::collections::BinaryHeap;
use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Readiness interest for one registered fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Read + write interest.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable (includes peer hang-up and errors: a read will not block).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

mod sys {
    //! Hand-written syscall bindings (no `libc` crate offline). Constants
    //! are the asm-generic Linux values, correct on x86_64 and aarch64;
    //! the non-Linux branch uses the BSD/macOS values.
    #![allow(non_camel_case_types)]

    use std::ffi::{c_int, c_short, c_uint, c_ulong, c_void};

    pub type nfds_t = c_ulong;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct pollfd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;

    #[cfg(target_os = "linux")]
    pub mod epoll {
        use std::ffi::c_int;

        // x86_64 wants the event struct packed; other Linux targets use
        // natural alignment. Matching the kernel ABI exactly matters here.
        #[cfg(target_arch = "x86_64")]
        #[repr(C, packed)]
        #[derive(Clone, Copy)]
        pub struct epoll_event {
            pub events: u32,
            pub data: u64,
        }
        #[cfg(not(target_arch = "x86_64"))]
        #[repr(C)]
        #[derive(Clone, Copy)]
        pub struct epoll_event {
            pub events: u32,
            pub data: u64,
        }

        pub const EPOLL_CLOEXEC: c_int = 0o2000000;
        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;
        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLRDHUP: u32 = 0x2000;

        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut epoll_event,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
        }

        extern "C" {
            fn close(fd: c_int) -> c_int;
        }
        /// Close the epoll fd (kept raw: it is not a socket and never
        /// escapes the poller).
        pub fn close_fd(fd: c_int) {
            unsafe {
                close(fd);
            }
        }
    }

    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;
    #[cfg(target_os = "linux")]
    pub const O_NONBLOCK: c_int = 0o4000;
    #[cfg(not(target_os = "linux"))]
    pub const O_NONBLOCK: c_int = 0x0004;

    #[cfg(target_os = "linux")]
    pub const SOL_SOCKET: c_int = 1;
    #[cfg(target_os = "linux")]
    pub const SO_SNDBUF: c_int = 7;
    #[cfg(target_os = "linux")]
    pub const SO_RCVBUF: c_int = 8;
    #[cfg(not(target_os = "linux"))]
    pub const SOL_SOCKET: c_int = 0xffff;
    #[cfg(not(target_os = "linux"))]
    pub const SO_SNDBUF: c_int = 0x1001;
    #[cfg(not(target_os = "linux"))]
    pub const SO_RCVBUF: c_int = 0x1002;

    extern "C" {
        pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn setsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const c_void,
            optlen: c_uint,
        ) -> c_int;
    }
}

fn last_os_error() -> io::Error {
    io::Error::last_os_error()
}

fn set_nonblocking_fd(fd: RawFd) -> io::Result<()> {
    unsafe {
        let flags = sys::fcntl(fd, sys::F_GETFL, 0);
        if flags < 0 {
            return Err(last_os_error());
        }
        if sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) < 0 {
            return Err(last_os_error());
        }
    }
    Ok(())
}

/// Pin a socket's kernel buffer (`SO_SNDBUF`/`SO_RCVBUF`). Pinning disables
/// kernel autotuning for that socket, which makes backpressure deterministic
/// — the slow-reader chaos test relies on this to fill buffers quickly.
fn set_socket_buffer(fd: RawFd, opt: std::ffi::c_int, bytes: usize) -> io::Result<()> {
    let val: std::ffi::c_int = bytes.min(i32::MAX as usize) as std::ffi::c_int;
    let rc = unsafe {
        sys::setsockopt(
            fd,
            sys::SOL_SOCKET,
            opt,
            (&val as *const std::ffi::c_int).cast(),
            std::mem::size_of::<std::ffi::c_int>() as std::ffi::c_uint,
        )
    };
    if rc < 0 {
        return Err(last_os_error());
    }
    Ok(())
}

/// Pin a socket's kernel send buffer to roughly `bytes` (the kernel may
/// round; Linux doubles the value for bookkeeping).
pub fn set_send_buffer(socket: &impl AsRawFd, bytes: usize) -> io::Result<()> {
    set_socket_buffer(socket.as_raw_fd(), sys::SO_SNDBUF, bytes)
}

/// Pin a socket's kernel receive buffer to roughly `bytes`.
pub fn set_recv_buffer(socket: &impl AsRawFd, bytes: usize) -> io::Result<()> {
    set_socket_buffer(socket.as_raw_fd(), sys::SO_RCVBUF, bytes)
}

/// Wakes a [`Poller`] blocked in [`Poller::wait`] from any thread.
///
/// Cloneable and cheap: a wake writes one byte into a non-blocking pipe
/// whose read end sits in the poll set. A full pipe means a wake is already
/// pending, so `EAGAIN` (and `EPIPE` after the poller is gone) are ignored.
#[derive(Clone)]
pub struct Waker {
    write_end: Arc<OwnedFd>,
}

impl Waker {
    /// Interrupt the poller's wait (idempotent, never blocks).
    pub fn wake(&self) {
        let byte = 1u8;
        unsafe {
            // Errors are deliberately ignored: EAGAIN = a wake is already
            // queued; EPIPE/EBADF = the loop is gone and nobody is waiting.
            sys::write(self.write_end.as_raw_fd(), (&byte as *const u8).cast(), 1);
        }
    }
}

/// The token [`Poller::wait`] reports when the [`Waker`] fired. Reserved:
/// user registrations must not use it.
pub const WAKE_TOKEN: u64 = u64::MAX;

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll { epfd: std::ffi::c_int },
    Poll {
        // token + interest per fd, rebuilt into a pollfd array each wait.
        registered: Vec<(RawFd, u64, Interest)>,
    },
}

impl Drop for Backend {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Backend::Epoll { epfd } = self {
            sys::epoll::close_fd(*epfd);
        }
    }
}

/// A readiness multiplexer over nonblocking fds (see module docs).
pub struct Poller {
    backend: Backend,
    wake_read: OwnedFd,
    waker: Waker,
}

impl Poller {
    /// Create a poller with its wake pipe already registered under
    /// [`WAKE_TOKEN`]. Uses epoll on Linux unless `MC_NET_FORCE_POLL=1`.
    pub fn new() -> io::Result<Self> {
        let mut fds = [0 as std::ffi::c_int; 2];
        if unsafe { sys::pipe(fds.as_mut_ptr()) } < 0 {
            return Err(last_os_error());
        }
        let (wake_read, wake_write) =
            unsafe { (OwnedFd::from_raw_fd(fds[0]), OwnedFd::from_raw_fd(fds[1])) };
        set_nonblocking_fd(wake_read.as_raw_fd())?;
        set_nonblocking_fd(wake_write.as_raw_fd())?;

        let backend = Self::new_backend()?;
        let mut poller = Poller {
            backend,
            wake_read,
            waker: Waker {
                write_end: Arc::new(wake_write),
            },
        };
        let wake_fd = poller.wake_read.as_raw_fd();
        poller.register(wake_fd, WAKE_TOKEN, Interest::READ)?;
        Ok(poller)
    }

    #[cfg(target_os = "linux")]
    fn new_backend() -> io::Result<Backend> {
        if std::env::var_os("MC_NET_FORCE_POLL").is_some_and(|v| v == "1") {
            return Ok(Backend::Poll {
                registered: Vec::new(),
            });
        }
        let epfd = unsafe { sys::epoll::epoll_create1(sys::epoll::EPOLL_CLOEXEC) };
        if epfd < 0 {
            // No epoll (ancient kernel / exotic sandbox): fall back.
            return Ok(Backend::Poll {
                registered: Vec::new(),
            });
        }
        Ok(Backend::Epoll { epfd })
    }

    #[cfg(not(target_os = "linux"))]
    fn new_backend() -> io::Result<Backend> {
        Ok(Backend::Poll {
            registered: Vec::new(),
        })
    }

    /// A handle that can interrupt [`Poller::wait`] from any thread.
    pub fn waker(&self) -> Waker {
        self.waker.clone()
    }

    #[cfg(target_os = "linux")]
    fn epoll_mask(interest: Interest) -> u32 {
        use sys::epoll::*;
        let mut mask = EPOLLRDHUP;
        if interest.readable {
            mask |= EPOLLIN;
        }
        if interest.writable {
            mask |= EPOLLOUT;
        }
        mask
    }

    #[cfg(target_os = "linux")]
    fn epoll_ctl(
        epfd: std::ffi::c_int,
        op: std::ffi::c_int,
        fd: RawFd,
        token: u64,
        interest: Interest,
    ) -> io::Result<()> {
        let mut ev = sys::epoll::epoll_event {
            events: Self::epoll_mask(interest),
            data: token,
        };
        let rc = unsafe { sys::epoll::epoll_ctl(epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(last_os_error());
        }
        Ok(())
    }

    /// Add `fd` to the poll set. The fd must stay valid until
    /// [`Poller::deregister`]; `token` comes back in every event for it.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                Self::epoll_ctl(*epfd, sys::epoll::EPOLL_CTL_ADD, fd, token, interest)
            }
            Backend::Poll { registered } => {
                registered.push((fd, token, interest));
                Ok(())
            }
        }
    }

    /// Change the interest set of a registered fd.
    pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                Self::epoll_ctl(*epfd, sys::epoll::EPOLL_CTL_MOD, fd, token, interest)
            }
            Backend::Poll { registered } => {
                for entry in registered.iter_mut() {
                    if entry.0 == fd {
                        entry.1 = token;
                        entry.2 = interest;
                        return Ok(());
                    }
                }
                Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
            }
        }
    }

    /// Remove an fd from the poll set (call before closing the fd).
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                Self::epoll_ctl(*epfd, sys::epoll::EPOLL_CTL_DEL, fd, 0, Interest::READ)
            }
            Backend::Poll { registered } => {
                registered.retain(|entry| entry.0 != fd);
                Ok(())
            }
        }
    }

    /// Block until readiness, timeout, or a wake. Fills `events` (cleared
    /// first). A [`WAKE_TOKEN`] event means [`Waker::wake`] fired; the wake
    /// pipe is drained here, so one event may coalesce many wakes.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let timeout_ms: std::ffi::c_int = match timeout {
            None => -1,
            Some(d) => {
                // Round up so a 1ns-away deadline does not busy-spin.
                let ms = d.as_millis().min(i32::MAX as u128) as i64;
                let rounded = if d.subsec_nanos() % 1_000_000 != 0 {
                    ms + 1
                } else {
                    ms
                };
                rounded.min(i32::MAX as i64) as std::ffi::c_int
            }
        };
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                let mut buf = [sys::epoll::epoll_event { events: 0, data: 0 }; 128];
                let n = loop {
                    let rc = unsafe {
                        sys::epoll::epoll_wait(
                            *epfd,
                            buf.as_mut_ptr(),
                            buf.len() as i32,
                            timeout_ms,
                        )
                    };
                    if rc >= 0 {
                        break rc as usize;
                    }
                    let err = last_os_error();
                    if err.kind() != io::ErrorKind::Interrupted {
                        return Err(err);
                    }
                };
                for ev in &buf[..n] {
                    use sys::epoll::*;
                    let bits = ev.events;
                    let token = ev.data;
                    events.push(Event {
                        token,
                        readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                        writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                    });
                }
            }
            Backend::Poll { registered } => {
                let mut fds: Vec<sys::pollfd> = registered
                    .iter()
                    .map(|&(fd, _, interest)| sys::pollfd {
                        fd,
                        events: {
                            let mut e = 0;
                            if interest.readable {
                                e |= sys::POLLIN;
                            }
                            if interest.writable {
                                e |= sys::POLLOUT;
                            }
                            e
                        },
                        revents: 0,
                    })
                    .collect();
                let n = loop {
                    let rc = unsafe {
                        sys::poll(fds.as_mut_ptr(), fds.len() as sys::nfds_t, timeout_ms)
                    };
                    if rc >= 0 {
                        break rc as usize;
                    }
                    let err = last_os_error();
                    if err.kind() != io::ErrorKind::Interrupted {
                        return Err(err);
                    }
                };
                if n > 0 {
                    for (slot, &(_, token, _)) in fds.iter().zip(registered.iter()) {
                        let bits = slot.revents;
                        if bits == 0 {
                            continue;
                        }
                        events.push(Event {
                            token,
                            readable: bits & (sys::POLLIN | sys::POLLHUP | sys::POLLERR) != 0,
                            writable: bits & (sys::POLLOUT | sys::POLLHUP | sys::POLLERR) != 0,
                        });
                    }
                }
            }
        }
        // Drain the wake pipe so level-triggered polling does not re-fire
        // forever; the WAKE_TOKEN event itself is passed through.
        if events.iter().any(|e| e.token == WAKE_TOKEN) {
            let mut buf = [0u8; 64];
            loop {
                let n = unsafe {
                    sys::read(
                        self.wake_read.as_raw_fd(),
                        buf.as_mut_ptr().cast(),
                        buf.len(),
                    )
                };
                if n <= 0 {
                    break;
                }
                if (n as usize) < buf.len() {
                    break;
                }
            }
        }
        Ok(())
    }
}

/// Deadline source for the event loop: a min-heap of `(Instant, token)`
/// entries with **lazy cancellation** — the owner of a token re-checks its
/// real deadline when an entry pops and simply ignores stale ones, so
/// rescheduling never needs to find-and-remove.
#[derive(Default)]
pub struct TimerHeap {
    heap: BinaryHeap<std::cmp::Reverse<(Instant, u64)>>,
}

impl TimerHeap {
    /// New empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `token` to pop at `at`. Duplicate entries per token are
    /// fine (lazy cancellation absorbs them).
    pub fn schedule(&mut self, at: Instant, token: u64) {
        self.heap.push(std::cmp::Reverse((at, token)));
    }

    /// The earliest scheduled instant, if any.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.heap.peek().map(|e| e.0 .0)
    }

    /// Pop the next entry due at or before `now`.
    pub fn pop_due(&mut self, now: Instant) -> Option<(Instant, u64)> {
        if self.heap.peek().is_some_and(|e| e.0 .0 <= now) {
            self.heap.pop().map(|e| e.0)
        } else {
            None
        }
    }

    /// Entries currently in the heap (stale ones included).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let mut poller = Poller::new().unwrap();
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
            waker.wake(); // coalesces
        });
        let mut events = Vec::new();
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(start.elapsed() < Duration::from_secs(5));
        assert!(events.iter().any(|e| e.token == WAKE_TOKEN));
        handle.join().unwrap();
        // Drained: the next wait times out instead of re-firing.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != WAKE_TOKEN));
    }

    #[test]
    fn socket_readiness_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 7, Interest::READ)
            .unwrap();
        let mut events = Vec::new();
        // Nothing to read yet.
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 7));

        client.write_all(b"hi").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        // Level-triggered: readiness persists until drained.
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        let mut buf = [0u8; 8];
        let n = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hi");

        // Write interest on an idle socket fires immediately.
        poller
            .reregister(server.as_raw_fd(), 7, Interest::BOTH)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.writable));

        poller.deregister(server.as_raw_fd()).unwrap();
        client.write_all(b"again").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 7));
    }

    #[test]
    fn peer_hangup_reports_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 3, Interest::READ)
            .unwrap();
        drop(client);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.readable));
    }

    #[test]
    fn timer_heap_orders_and_lazily_cancels() {
        let mut heap = TimerHeap::new();
        let base = Instant::now();
        heap.schedule(base + Duration::from_millis(30), 2);
        heap.schedule(base + Duration::from_millis(10), 1);
        heap.schedule(base + Duration::from_millis(20), 1); // stale duplicate
        assert_eq!(heap.next_deadline(), Some(base + Duration::from_millis(10)));
        assert!(heap.pop_due(base).is_none());
        let now = base + Duration::from_millis(25);
        assert_eq!(heap.pop_due(now).map(|e| e.1), Some(1));
        assert_eq!(heap.pop_due(now).map(|e| e.1), Some(1));
        assert!(heap.pop_due(now).is_none());
        assert_eq!(heap.len(), 1);
        assert!(!heap.is_empty());
    }
}
