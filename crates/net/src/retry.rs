//! Backoff-retry layer over [`NetClient`]: reconnects, resends, and
//! overload (`Busy`) handling.
//!
//! [`RetryClient`] owns a target address plus a [`RetryPolicy`] and keeps a
//! [`NetClient`] connection behind the scenes. Every operation retries
//! [retryable](NetError::is_retryable) failures with capped exponential
//! backoff and deterministic jitter, reconnecting when the connection died
//! and honoring the server's `retry_after_ms` hint on [`NetError::Busy`].
//!
//! **Replay is safe by construction.** Classification is deterministic and
//! a request's results are only handed to the caller once the whole call
//! succeeds, so resending a not-yet-acknowledged request (on the same or a
//! fresh connection, under a fresh request id) cannot duplicate or reorder
//! results: execution is at-least-once, result delivery exactly-once, and
//! the output is bit-identical to a fault-free run (asserted against the
//! in-process engine by `tests/net_chaos.rs`).

use std::collections::VecDeque;
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::Duration;

use mc_seqio::SequenceRecord;
use metacache::{Candidate, Classification};

use crate::client::{resolve_addrs, ClientConfig, NetClient, NetSummary};
use crate::protocol::NetError;

/// Backoff schedule of a [`RetryClient`].
///
/// Retry `n` (0-based) sleeps `min(max_delay, base_delay · 2ⁿ)` scaled by a
/// jitter factor drawn uniformly from `[0.5, 1.0)` — jitter decorrelates a
/// fleet of clients that were all shed at the same instant. For
/// [`NetError::Busy`] the server's `retry_after_ms` hint acts as a floor on
/// the sleep. The jitter sequence is a seeded xorshift, so a given
/// (policy, fault schedule) replays identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Consecutive retryable failures tolerated before giving up (the
    /// total attempt count is `max_retries + 1`). Progress — any
    /// successfully answered request — resets the count.
    pub max_retries: u32,
    /// First retry's nominal delay.
    pub base_delay: Duration,
    /// Ceiling on the exponential schedule.
    pub max_delay: Duration,
    /// Seed of the deterministic jitter sequence.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 4,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            seed: 0x5DEE_CE66_D513_7F2E,
        }
    }
}

impl RetryPolicy {
    /// The sleep before 0-based retry `attempt`, threading the jitter rng
    /// state and applying `floor` (a server `retry_after_ms` hint).
    fn delay(&self, attempt: u32, rng: &mut u64, floor: Option<Duration>) -> Duration {
        let nominal = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX))
            .min(self.max_delay);
        let nanos = u64::try_from(nominal.as_nanos()).unwrap_or(u64::MAX);
        // Jitter factor in [0.5, 1.0): half fixed, half random.
        let half = nanos / 2;
        let jittered = Duration::from_nanos(half + xorshift(rng) % half.max(1));
        jittered.max(floor.unwrap_or(Duration::ZERO))
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = state.wrapping_add(1); // a zero seed must not stick at zero
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Lifetime counters of a [`RetryClient`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Connections established (1 on a fault-free run).
    pub connects: u64,
    /// Backoff sleeps taken (reconnects and resends combined).
    pub retries: u64,
    /// Requests (or connections) the server answered with `Busy`.
    pub busy_sheds: u64,
}

/// A fault-tolerant classification client: [`NetClient`] semantics, but
/// transient failures are absorbed by reconnect + replay instead of
/// surfacing to the caller.
///
/// The target address is resolved once at construction; the connection is
/// established lazily and re-established whenever it dies. Results are
/// bit-identical to a fault-free [`NetClient`] run (see the module docs for
/// why replay is safe).
pub struct RetryClient {
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    policy: RetryPolicy,
    rng: u64,
    conn: Option<NetClient>,
    stats: RetryStats,
}

impl RetryClient {
    /// Default [`ClientConfig`] and [`RetryPolicy`]. Resolves `addr` now;
    /// connects on first use.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        Self::connect_with(addr, ClientConfig::default(), RetryPolicy::default())
    }

    /// Explicit configuration and policy.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
        policy: RetryPolicy,
    ) -> Result<Self, NetError> {
        Ok(Self {
            addrs: resolve_addrs(addr)?,
            config,
            rng: policy.seed,
            policy,
            conn: None,
            stats: RetryStats::default(),
        })
    }

    /// Lifetime counters (connects, retries, sheds).
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// The active policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Take the live connection, establishing one if needed. The caller
    /// puts it back when done (or drops it on death) — taking it out keeps
    /// the borrow checker out of the retry loops below.
    fn take_conn(&mut self) -> Result<NetClient, NetError> {
        match self.conn.take() {
            Some(conn) if !conn.is_dead() => Ok(conn),
            _ => {
                let conn = NetClient::connect_with(&self.addrs[..], self.config.clone())?;
                self.stats.connects += 1;
                Ok(conn)
            }
        }
    }

    /// Sleep out retry `attempt` (honoring a `Busy` floor), or fail with
    /// `error` once the policy is exhausted.
    fn backoff(&mut self, attempt: &mut u32, error: NetError) -> Result<(), NetError> {
        if matches!(error, NetError::Busy { .. }) {
            self.stats.busy_sheds += 1;
        }
        if !error.is_retryable() || *attempt >= self.policy.max_retries {
            return Err(error);
        }
        let floor = match error {
            NetError::Busy { retry_after_ms } => {
                Some(Duration::from_millis(u64::from(retry_after_ms)))
            }
            _ => None,
        };
        self.stats.retries += 1;
        std::thread::sleep(self.policy.delay(*attempt, &mut self.rng, floor));
        *attempt += 1;
        Ok(())
    }

    /// [`NetClient::classify_batch`] with retries: one request/response
    /// exchange, resent (reconnecting if needed) until it succeeds or the
    /// policy is exhausted.
    pub fn classify_batch(
        &mut self,
        reads: &[SequenceRecord],
    ) -> Result<Vec<Classification>, NetError> {
        let mut attempt = 0u32;
        loop {
            let mut conn = match self.take_conn() {
                Ok(conn) => conn,
                Err(e) => {
                    self.backoff(&mut attempt, e)?;
                    continue;
                }
            };
            match conn.classify_batch(reads) {
                Ok(results) => {
                    self.conn = Some(conn);
                    return Ok(results);
                }
                Err(e) => {
                    if !conn.is_dead() {
                        // Request-level Busy (or a local encode failure):
                        // the connection itself is fine — keep it.
                        self.conn = Some(conn);
                    }
                    self.backoff(&mut attempt, e)?;
                }
            }
        }
    }

    /// [`NetClient::candidates_batch`] with retries — the router's
    /// per-shard scatter leg. Replay is safe for exactly the reason
    /// classification replay is: a candidate query is deterministic and
    /// read-only, and its lists are only handed to the caller once the
    /// whole exchange succeeds.
    pub fn candidates_batch(
        &mut self,
        reads: &[SequenceRecord],
    ) -> Result<Vec<Vec<Candidate>>, NetError> {
        let mut attempt = 0u32;
        loop {
            let mut conn = match self.take_conn() {
                Ok(conn) => conn,
                Err(e) => {
                    self.backoff(&mut attempt, e)?;
                    continue;
                }
            };
            match conn.candidates_batch(reads) {
                Ok(lists) => {
                    self.conn = Some(conn);
                    return Ok(lists);
                }
                Err(e) => {
                    if !conn.is_dead() {
                        self.conn = Some(conn);
                    }
                    self.backoff(&mut attempt, e)?;
                }
            }
        }
    }

    /// [`NetClient::candidates_batch_tagged`] with retries: the candidate
    /// lists plus the database generation they were computed under (`None`
    /// from a pre-v5 server). A scatter-gather router compares the tags of
    /// its shard legs and re-queries on disagreement, so the tag must ride
    /// with the lists through the retry layer.
    pub fn candidates_batch_tagged(
        &mut self,
        reads: &[SequenceRecord],
    ) -> Result<(Vec<Vec<Candidate>>, Option<u64>), NetError> {
        let mut attempt = 0u32;
        loop {
            let mut conn = match self.take_conn() {
                Ok(conn) => conn,
                Err(e) => {
                    self.backoff(&mut attempt, e)?;
                    continue;
                }
            };
            match conn.candidates_batch_tagged(reads) {
                Ok(tagged) => {
                    self.conn = Some(conn);
                    return Ok(tagged);
                }
                Err(e) => {
                    if !conn.is_dead() {
                        self.conn = Some(conn);
                    }
                    self.backoff(&mut attempt, e)?;
                }
            }
        }
    }

    /// [`NetClient::classify_iter`] with retries: stream reads through the
    /// credit window; chunks whose requests are shed or lose their
    /// connection are replayed (fresh request ids, same payload) until
    /// every chunk is answered. Results come back in input order and
    /// bit-identical to a fault-free run.
    ///
    /// `NetSummary::requests` counts requests actually sent, so it exceeds
    /// the chunk count exactly by the number of replays.
    pub fn classify_iter(
        &mut self,
        reads: impl IntoIterator<Item = SequenceRecord>,
    ) -> Result<(Vec<Classification>, NetSummary), NetError> {
        let mut source = reads.into_iter();
        let mut source_done = false;
        let mut summary = NetSummary::default();
        // Chunks are tracked by index from the moment they are cut off the
        // source until their results land in `done[idx]`; a chunk awaiting
        // (re)send sits in `pending`, a sent-but-unanswered one in
        // `window` (send order = response order on one connection).
        let mut next_chunk = 0usize;
        let mut done: Vec<Option<Vec<Classification>>> = Vec::new();
        let mut pending: VecDeque<(usize, Vec<SequenceRecord>)> = VecDeque::new();
        let mut window: VecDeque<(usize, Vec<SequenceRecord>, u64)> = VecDeque::new();
        let mut attempt = 0u32;
        loop {
            let mut conn = match self.take_conn() {
                Ok(conn) => conn,
                Err(e) => {
                    self.backoff(&mut attempt, e)?;
                    continue;
                }
            };
            debug_assert!(
                window.is_empty(),
                "in-flight requests cannot outlive their connection"
            );
            let chunk_size = conn.batch_records() as usize;
            let credits = conn.credits() as usize;
            // One connection's lifetime: keep the window full, drain
            // responses, replay on failure.
            let failure = 'conn: loop {
                while window.len() < credits {
                    let next = pending.pop_front().or_else(|| {
                        if source_done {
                            return None;
                        }
                        let chunk: Vec<SequenceRecord> = source.by_ref().take(chunk_size).collect();
                        if chunk.is_empty() {
                            source_done = true;
                            return None;
                        }
                        let idx = next_chunk;
                        next_chunk += 1;
                        done.push(None);
                        Some((idx, chunk))
                    });
                    let Some((idx, chunk)) = next else { break };
                    match conn.send_request(&chunk) {
                        Ok(id) => {
                            summary.requests += 1;
                            window.push_back((idx, chunk, id));
                            summary.peak_in_flight =
                                summary.peak_in_flight.max(window.len() as u64);
                        }
                        Err(e) => {
                            pending.push_front((idx, chunk));
                            break 'conn Some(e);
                        }
                    }
                }
                let Some((idx, chunk, id)) = window.pop_front() else {
                    break 'conn None; // everything sent and answered
                };
                match conn.recv_results(id) {
                    Ok(results) => {
                        done[idx] = Some(results);
                        attempt = 0; // progress resets the failure budget
                    }
                    Err(e @ NetError::Busy { .. }) if !conn.is_dead() => {
                        // Request-level shed: only this chunk needs a
                        // resend; the rest of the window is still owed
                        // in-order responses on this same connection.
                        pending.push_front((idx, chunk));
                        // On exhaustion the error propagates and `conn`
                        // drops with its window unanswered.
                        self.backoff(&mut attempt, e)?;
                    }
                    Err(e) => {
                        pending.push_front((idx, chunk));
                        break 'conn Some(e);
                    }
                }
            };
            match failure {
                None => {
                    self.conn = Some(conn); // park the healthy connection
                    break;
                }
                Some(e) => {
                    // The connection is gone (or out of sync): every
                    // unanswered request must be replayed. Spill the window
                    // back into `pending`, oldest first.
                    while let Some((idx, chunk, _)) = window.pop_back() {
                        pending.push_front((idx, chunk));
                    }
                    drop(conn); // even if alive it is out of sync now
                    self.backoff(&mut attempt, e)?;
                }
            }
        }
        let mut out = Vec::new();
        for results in done {
            out.extend(results.expect("every chunk is answered before the loop exits"));
        }
        summary.reads = out.len() as u64;
        Ok((out, summary))
    }
}
