//! Scatter-gather routing: a [`metacache::Backend`] that fans every batch
//! out to N shard servers over the wire and merges their candidate lists.
//!
//! A [`RouterBackend`] fronts shard servers that each hold one shard of a
//! [`metacache::ShardedDatabase`] split (typically `mc-serve serve --shard
//! K --shard-count N` processes). Classification of one batch runs in three
//! steps, mirroring the in-process [`metacache::ShardedClassifier`]:
//!
//! 1. **Scatter**: the batch goes to every shard as one
//!    [`Frame::Candidates`](crate::Frame::Candidates) request, through a
//!    per-worker [`RetryClient`] — deadlines, reconnect/replay and `Busy`
//!    backoff compose per shard leg.
//! 2. **Merge**: each read's per-shard top-hit lists are merged into one
//!    [`CandidateList`]. Shards partition the *targets*, so their candidate
//!    lists are disjoint by target and the merge is lossless: the result is
//!    bit-identical to querying the unsharded table (the argument lives in
//!    `metacache::shard`'s module docs and is enforced by
//!    `tests/sharding.rs`).
//! 3. **Classify**: [`classify_candidates`] runs once over the merged list
//!    against the router's metadata-only database (taxonomy + lineages; no
//!    hash table) — the same final step the unsharded path runs.
//!
//! Because [`RouterBackend`] is just a [`Backend`], a
//! [`ServingEngine`](metacache::serving::ServingEngine) +
//! [`NetServer`](crate::NetServer) over it is a drop-in classification
//! server: clients speak the ordinary protocol and cannot tell a routed
//! topology from a single process. A shard leg whose retry policy is
//! exhausted panics the worker; the engine replaces the worker and re-raises
//! in the owning session only, which the server answers with a typed
//! `Internal` error frame — healthy sessions and healthy shards are
//! unaffected (`tests/net_chaos.rs` covers the routed topology).

use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use mc_seqio::SequenceRecord;
use metacache::classify::classify_candidates;
use metacache::{Backend, BackendWorker, CandidateList, Classification, Database};

use crate::client::{resolve_addrs, ClientConfig};
use crate::protocol::NetError;
use crate::retry::{RetryClient, RetryPolicy};

/// Connection settings of a [`RouterBackend`]: how each worker talks to
/// each shard server.
#[derive(Debug, Clone, Default)]
pub struct RouterConfig {
    /// Per-shard-connection client preferences. The announced protocol
    /// version must be 0 (current) or ≥ 4 — candidates require v4.
    pub client: ClientConfig,
    /// Per-shard-leg retry policy (reconnect, replay, `Busy` backoff).
    pub policy: RetryPolicy,
}

/// A [`Backend`] that classifies by scattering candidate queries to N shard
/// servers and merging their per-read top-hit lists (see the module docs).
///
/// Engine worker threads each mint their own [`BackendWorker`], so every
/// worker owns one [`RetryClient`] per shard: N shards × W workers
/// connections, with no cross-worker locking on the hot path.
pub struct RouterBackend {
    meta: Arc<Database>,
    shards: Vec<Vec<SocketAddr>>,
    config: RouterConfig,
}

impl RouterBackend {
    /// Create a router over `meta` (the full database's metadata — config,
    /// targets, taxonomy, lineages; its hash table is never queried) and
    /// one address per shard server. Addresses are resolved once, here;
    /// connections are established lazily by each worker's first batch.
    ///
    /// `meta` must describe the same reference set the shard servers were
    /// split from — shard servers answer with *global* target ids, which
    /// are only meaningful against the shared target table.
    pub fn new(
        meta: Arc<Database>,
        shard_addrs: &[impl ToSocketAddrs],
        config: RouterConfig,
    ) -> Result<Self, NetError> {
        let shards = shard_addrs
            .iter()
            .map(resolve_addrs)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            meta,
            shards,
            config,
        })
    }

    /// Number of shard servers this router scatters to.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

impl Backend for RouterBackend {
    fn database(&self) -> &Database {
        &self.meta
    }

    fn name(&self) -> &'static str {
        "router"
    }

    fn worker(&self) -> Box<dyn BackendWorker + '_> {
        let legs = self
            .shards
            .iter()
            .map(|addrs| {
                RetryClient::connect_with(
                    &addrs[..],
                    self.config.client.clone(),
                    self.config.policy.clone(),
                )
                .expect("addresses were resolved at router construction")
            })
            .collect();
        Box::new(RouterWorker {
            meta: &self.meta,
            legs,
            merged: CandidateList::new(self.meta.config.top_candidates),
        })
    }
}

/// Scatter rounds tolerated while shard legs report different database
/// generations (a reload sweep is still propagating across the shard
/// servers); past this bound the worker panics, exactly like an exhausted
/// retry policy.
const MAX_GENERATION_REQUERIES: usize = 8;

/// Pause between generation re-queries, giving a propagating reload sweep
/// time to reach every shard server.
const GENERATION_REQUERY_PAUSE: Duration = Duration::from_millis(25);

/// One engine worker's routing state: a retrying connection per shard plus
/// the merge scratch.
struct RouterWorker<'b> {
    meta: &'b Database,
    legs: Vec<RetryClient>,
    merged: CandidateList,
}

impl BackendWorker for RouterWorker<'_> {
    fn classify_batch_into(&mut self, records: &[SequenceRecord], out: &mut Vec<Classification>) {
        // Scatter: one candidates exchange per shard. A leg that stays down
        // past its retry policy panics the worker — the engine's contract
        // for a broken execution substrate: the owning session re-raises,
        // the engine mints a replacement worker (with fresh connections),
        // and every other session keeps streaming.
        //
        // Shards that speak v5 tag their lists with a database generation.
        // A batch merged from two different generations would be a torn
        // response no single database ever produced, so on disagreement
        // (a reload sweep caught mid-propagation) the whole scatter is
        // re-queried until the shards converge. Untagged (pre-v5) legs
        // agree with everything, preserving the old behaviour.
        let mut round = 0usize;
        let per_shard: Vec<Vec<Vec<metacache::Candidate>>> = loop {
            let mut generation: Option<u64> = None;
            let mut agreed = true;
            let lists_per_shard: Vec<Vec<Vec<metacache::Candidate>>> = self
                .legs
                .iter_mut()
                .enumerate()
                .map(|(shard, leg)| match leg.candidates_batch_tagged(records) {
                    Ok((lists, tag)) => {
                        assert_eq!(
                            lists.len(),
                            records.len(),
                            "shard {shard} answered {} candidate lists for {} reads",
                            lists.len(),
                            records.len(),
                        );
                        if let Some(tag) = tag {
                            match generation {
                                None => generation = Some(tag),
                                Some(first) if first != tag => agreed = false,
                                Some(_) => {}
                            }
                        }
                        lists
                    }
                    Err(e) => panic!("shard leg {shard} failed beyond its retry policy: {e}"),
                })
                .collect();
            if agreed {
                break lists_per_shard;
            }
            round += 1;
            assert!(
                round <= MAX_GENERATION_REQUERIES,
                "shard legs still disagree on their database generation \
                 after {MAX_GENERATION_REQUERIES} re-queries"
            );
            std::thread::sleep(GENERATION_REQUERY_PAUSE);
        };
        // Gather: merge each read's disjoint per-shard lists and run the
        // final classification step once, exactly like the in-process
        // sharded path.
        for read in 0..records.len() {
            self.merged.reset(self.meta.config.top_candidates);
            for lists in &per_shard {
                for &candidate in &lists[read] {
                    self.merged.insert(candidate);
                }
            }
            out.push(classify_candidates(
                self.meta,
                &self.meta.config,
                &self.merged,
            ));
        }
    }
}
