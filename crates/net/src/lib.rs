//! # mc-net — the network serving front-end of the MetaCache reproduction
//!
//! Maps TCP connections onto [`metacache::serving::ServingEngine`] sessions:
//! the engine's `Session` API is request-shaped (`classify_batch`,
//! `classify_stream`), so the network layer is a thin shim — framing,
//! handshake and error reporting, with every classification guarantee
//! inherited from the engine:
//!
//! * **Bit-identity.** A read classified over the wire gets exactly the
//!   result `Classifier::classify_batch` produces in process, in the same
//!   order (`tests/net.rs` proves round-trip equality).
//! * **Bounded memory.** The engine's per-session `max_in_flight` credit
//!   bound becomes the connection's credit window, announced in the
//!   handshake; a slow client stalls only itself (TCP backpressure), a fast
//!   client cannot make the server buffer unboundedly.
//! * **Isolation.** One connection = one session: a disconnect, a malformed
//!   frame or a backend panic tears down that session alone.
//!
//! * **Fault tolerance.** Deadlines bound every server-side wait
//!   (handshake, frame read, idle, write), overload is answered with typed
//!   `Busy` frames instead of unbounded queueing, and [`RetryClient`]
//!   absorbs transient failures with reconnect + replay — results stay
//!   bit-identical even under injected faults (`tests/net_chaos.rs`).
//!
//! The crate splits into six layers:
//!
//! * [`protocol`] — the length-prefixed binary wire format (pure
//!   encode/decode, property-tested), specified in `docs/SERVING.md`;
//! * [`poll`] — the readiness shim: epoll (thin FFI, `poll(2)` fallback),
//!   a pipe [`Waker`](poll::Waker) and a lazy-cancel timer heap;
//! * [`server`] — [`NetServer`]: a single-threaded readiness event loop
//!   over nonblocking sockets — per-connection state machines reassemble
//!   frames incrementally, pipeline consecutive requests through the
//!   engine, and flush bounded outbound buffers on write-readiness —
//!   with graceful drain composing with
//!   [`ServingEngine::shutdown`](metacache::serving::ServingEngine::shutdown);
//! * [`client`] — [`NetClient`]: blocking connect / `classify_batch` /
//!   pipelined `classify_iter`;
//! * [`retry`] — [`RetryClient`]: capped-exponential-backoff reconnect and
//!   safe replay on top of [`NetClient`];
//! * [`router`] — [`RouterBackend`]: scatter-gather classification over N
//!   shard servers (candidate queries per shard, lossless merge, one final
//!   classification step), served back out through the same protocol;
//! * [`chaos`] — [`ChaosProxy`]: a deterministic fault-injection proxy
//!   (delays, slow-loris dribble, truncation, stalls, resets, half-closes)
//!   that turns failure-mode testing into seeded regression tests.
//!
//! The `mc-serve` binary wraps all of it: `mc-serve serve` exposes a
//! database (or one shard of it, `--shard K --shard-count N`) on a socket,
//! `mc-serve route` fronts N shard servers with a scatter-gather router,
//! `mc-serve classify` is a command-line client, `mc-serve smoke` runs a
//! self-contained loopback round-trip (used by CI, `--chaos` adds a
//! fault-injected pass), and `mc-serve chaos` proxies an address with
//! scripted faults for manual torture.

pub mod chaos;
pub mod client;
pub mod poll;
pub mod protocol;
pub mod retry;
pub mod router;
pub mod server;

pub use chaos::{ChaosProxy, ConnPlan, Fault, PASSTHROUGH};
pub use client::{ClientConfig, NetClient, NetSummary};
pub use protocol::{ErrorCode, Frame, NetError, ProtocolError, ResultEntry};
pub use retry::{RetryClient, RetryPolicy, RetryStats};
pub use router::{RouterBackend, RouterConfig};
pub use server::{NetServer, ReloadHook, ServerConfig, ServerHandle, ServerStats};
