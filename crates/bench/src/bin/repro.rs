//! `repro` — regenerate the tables and figures of the MetaCache-GPU paper.
//!
//! ```text
//! Usage: repro [--scale tiny|default] [--json] <experiment>...
//!
//! Experiments:
//!   table1 table2      reference sets and read datasets (Tables 1 & 2)
//!   table3             build performance (Table 3)
//!   table4             query performance (Table 4)
//!   table5 fig4        time-to-query and OTF vs W+L phases (Table 5, Figure 4)
//!   table6 abundance   classification accuracy and abundance estimation (Table 6, §6.5)
//!   fig5               query pipeline breakdown (Figure 5)
//!   tablemem ablation  hash-table memory comparison and parameter ablations (§6)
//!   streaming          streaming vs materialised query pipeline (§5 pipelining)
//!   serving            serving engine vs per-request pipeline spawn (resident pool)
//!   serving_net        mc-net loopback TCP front-end vs in-process sessions
//!   serving_chaos      serving under injected faults (chaos sweep + overload)
//!   serving_sharded    sharded scatter-gather serving vs unsharded + routed loopback
//!   serving_reload     live database reloads under traffic (epoch swaps, zero downtime)
//!   all                everything above
//! ```

use std::collections::BTreeSet;

use mc_bench::experiments::{
    accuracy, breakdown, build_perf, datasets, query_perf, serving, serving_chaos, serving_net,
    serving_reload, serving_sharded, streaming, tablemem, ttq,
};
use mc_bench::ExperimentScale;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale tiny|default] [--json] \
         <table1|table2|table3|table4|table5|table6|fig4|fig5|abundance|tablemem|ablation|streaming|serving|serving_net|serving_chaos|serving_sharded|serving_reload|all>..."
    );
    std::process::exit(2);
}

fn main() {
    let mut scale = ExperimentScale::default_scale();
    let mut json = false;
    let mut requested: BTreeSet<String> = BTreeSet::new();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(name) = args.next() else { usage() };
                scale = ExperimentScale::by_name(&name).unwrap_or_else(|| usage());
            }
            "--json" => json = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => {
                requested.insert(other.to_string());
            }
        }
    }
    if requested.is_empty() {
        usage();
    }
    if requested.contains("all") {
        for e in [
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "fig4",
            "table6",
            "abundance",
            "fig5",
            "tablemem",
            "ablation",
            "streaming",
            "serving",
            "serving_net",
            "serving_chaos",
            "serving_sharded",
            "serving_reload",
        ] {
            requested.insert(e.to_string());
        }
        requested.remove("all");
    }

    eprintln!(
        "# MetaCache-GPU reproduction, scale = {} ({} reads per dataset)",
        scale.label, scale.reads_per_dataset
    );

    let wants = |names: &[&str]| names.iter().any(|n| requested.contains(*n));

    if wants(&["table1", "table2"]) {
        let result = datasets::run(&scale);
        if json {
            println!("{}", serde_json::to_string_pretty(&result).unwrap());
        } else {
            println!("{}", datasets::render(&result));
        }
    }
    if wants(&["table3"]) {
        let result = build_perf::run(&scale);
        if json {
            println!("{}", serde_json::to_string_pretty(&result).unwrap());
        } else {
            println!("{}", build_perf::render(&result));
        }
    }
    if wants(&["table4"]) {
        let result = query_perf::run(&scale);
        if json {
            println!("{}", serde_json::to_string_pretty(&result).unwrap());
        } else {
            println!("{}", query_perf::render(&result));
        }
    }
    if wants(&["table5", "fig4"]) {
        let result = ttq::run(&scale);
        if json {
            println!("{}", serde_json::to_string_pretty(&result).unwrap());
        } else {
            println!("{}", ttq::render(&result));
        }
    }
    if wants(&["table6", "abundance"]) {
        let result = accuracy::run(&scale);
        if json {
            println!("{}", serde_json::to_string_pretty(&result).unwrap());
        } else {
            println!("{}", accuracy::render(&result));
        }
    }
    if wants(&["fig5"]) {
        let result = breakdown::run(&scale);
        if json {
            println!("{}", serde_json::to_string_pretty(&result).unwrap());
        } else {
            println!("{}", breakdown::render(&result));
        }
    }
    if wants(&["tablemem", "ablation"]) {
        let result = tablemem::run(&scale);
        if json {
            println!("{}", serde_json::to_string_pretty(&result).unwrap());
        } else {
            println!("{}", tablemem::render(&result));
        }
    }
    if wants(&["streaming"]) {
        let result = streaming::run(&scale);
        if json {
            println!("{}", serde_json::to_string_pretty(&result).unwrap());
        } else {
            println!("{}", streaming::render(&result));
        }
    }
    if wants(&["serving"]) {
        let result = serving::run(&scale);
        if json {
            println!("{}", serde_json::to_string_pretty(&result).unwrap());
        } else {
            println!("{}", serving::render(&result));
        }
    }
    if wants(&["serving_net"]) {
        let result = serving_net::run(&scale);
        if json {
            println!("{}", serde_json::to_string_pretty(&result).unwrap());
        } else {
            println!("{}", serving_net::render(&result));
        }
    }
    if wants(&["serving_chaos"]) {
        let result = serving_chaos::run(&scale);
        if json {
            println!("{}", serde_json::to_string_pretty(&result).unwrap());
        } else {
            println!("{}", serving_chaos::render(&result));
        }
    }
    if wants(&["serving_sharded"]) {
        let result = serving_sharded::run(&scale);
        if json {
            println!("{}", serde_json::to_string_pretty(&result).unwrap());
        } else {
            println!("{}", serving_sharded::render(&result));
        }
    }
    if wants(&["serving_reload"]) {
        let result = serving_reload::run(&scale);
        if json {
            println!("{}", serde_json::to_string_pretty(&result).unwrap());
        } else {
            println!("{}", serving_reload::render(&result));
        }
    }
}
