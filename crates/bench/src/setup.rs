//! Shared experiment setup: reference collections, read workloads and
//! database construction helpers used by several experiments.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mc_datagen::community::ReferenceCollection;
use mc_datagen::profiles::DatasetProfile;
use mc_datagen::reads::{ReadSimulator, SimulatedReadSet};
use mc_gpu_sim::{MultiGpuSystem, SimDuration};
use mc_kraken2::{Kraken2Builder, Kraken2Config, Kraken2Database};
use mc_seqio::SequenceRecord;
use mc_taxonomy::TaxonId;
use metacache::build::{estimate_locations, CpuBuilder, GpuBuilder};
use metacache::{Database, MetaCacheConfig};

use crate::scale::ExperimentScale;

/// The two reference databases of Table 1 at the configured scale.
pub struct ReferenceSetup {
    /// The RefSeq-like collection ("RefSeq 202" analogue).
    pub refseq: ReferenceCollection,
    /// RefSeq-like plus the AFS-like large genomes ("AFS 31 + RefSeq 202").
    pub afs_refseq: ReferenceCollection,
}

impl ReferenceSetup {
    /// Generate both collections for a scale.
    pub fn generate(scale: &ExperimentScale) -> Self {
        let refseq = ReferenceCollection::refseq_like(scale.refseq);
        let afs_refseq = ReferenceCollection::refseq_like(scale.refseq).with_afs_like(scale.afs);
        Self { refseq, afs_refseq }
    }
}

/// The three read datasets of Table 2 at the configured scale, simulated from
/// a reference collection with known ground truth.
pub struct Workloads {
    /// HiSeq-like single-end FASTA reads.
    pub hiseq: SimulatedReadSet,
    /// MiSeq-like single-end FASTA reads.
    pub miseq: SimulatedReadSet,
    /// KAL_D-like paired-end FASTQ reads with known component abundances.
    pub kal_d: SimulatedReadSet,
    /// The true species abundances used for the KAL_D-like sample.
    pub kal_d_truth: Vec<(TaxonId, f64)>,
}

impl Workloads {
    /// Simulate all three read sets. HiSeq/MiSeq reads are drawn from the
    /// `community` collection (mock community with per-read truth); the
    /// KAL_D-like reads are drawn from `food_components` species of the AFS
    /// collection with fixed abundance ratios (beef/pork/horse/mutton-style).
    pub fn generate(
        scale: &ExperimentScale,
        community: &ReferenceCollection,
        food: &ReferenceCollection,
    ) -> Self {
        let hiseq = ReadSimulator::new(DatasetProfile::hiseq(), scale.reads_per_dataset)
            .with_seed(101)
            .simulate(community);
        let miseq = ReadSimulator::new(DatasetProfile::miseq(), scale.reads_per_dataset)
            .with_seed(102)
            .simulate(community);
        // Food components: the AFS-like species (taxa >= 600_000) with the
        // KAL_D sausage ratios from the AFS paper (beef 50%, pork 25%,
        // horse 15%, mutton 10%), truncated to the species that exist.
        let mut food_species: Vec<TaxonId> = food
            .targets
            .iter()
            .map(|t| t.taxon)
            .filter(|t| *t >= 600_000)
            .collect();
        food_species.sort_unstable();
        food_species.dedup();
        let ratios = [0.50, 0.25, 0.15, 0.10];
        let mut kal_d_truth: Vec<(TaxonId, f64)> = food_species
            .iter()
            .zip(ratios.iter())
            .map(|(t, r)| (*t, *r))
            .collect();
        // Renormalise if fewer than 4 food species exist at this scale.
        let total: f64 = kal_d_truth.iter().map(|(_, r)| r).sum();
        for (_, r) in &mut kal_d_truth {
            *r /= total;
        }
        let kal_d = ReadSimulator::new(DatasetProfile::kal_d(), scale.reads_per_dataset)
            .with_seed(103)
            .with_abundance(kal_d_truth.clone())
            .simulate(food);
        Self {
            hiseq,
            miseq,
            kal_d,
            kal_d_truth,
        }
    }

    /// The three datasets with their names, in paper order.
    pub fn all(&self) -> [(&'static str, &SimulatedReadSet); 3] {
        [
            ("HiSeq", &self.hiseq),
            ("MiSeq", &self.miseq),
            ("KAL_D", &self.kal_d),
        ]
    }
}

/// Reference records paired with their taxa, as consumed by the builders.
pub fn records_with_taxa(collection: &ReferenceCollection) -> Vec<(SequenceRecord, TaxonId)> {
    collection
        .targets
        .iter()
        .map(|t| (t.to_record(), t.taxon))
        .collect()
}

/// A taxon lookup closure for builders that take records only.
pub fn taxon_lookup(collection: &ReferenceCollection) -> HashMap<String, TaxonId> {
    collection
        .targets
        .iter()
        .map(|t| {
            let id = t
                .header
                .split_whitespace()
                .next()
                .unwrap_or(&t.header)
                .to_string();
            (id, t.taxon)
        })
        .collect()
}

/// Result of building a database with one method: the database handle plus
/// the timing/size measurements reported in Table 3.
///
/// The MetaCache database is held behind an [`Arc`]: experiments hand it to
/// classifiers, streaming pipelines and serving engines, all of which co-own
/// the shared database exactly as the production serving path does.
pub struct BuiltDatabase {
    /// The constructed MetaCache database (None for the Kraken2 baseline).
    pub metacache: Option<Arc<Database>>,
    /// The constructed Kraken2-style database (None for MetaCache builds).
    pub kraken2: Option<Kraken2Database>,
    /// Wall-clock time of the build on this machine.
    pub wall_time: Duration,
    /// Simulated device time (zero for CPU builds).
    pub sim_time: SimDuration,
    /// Total bytes of the hash tables ("DB size").
    pub table_bytes: usize,
    /// Approximate host RAM used ("RAM").
    pub host_bytes: usize,
}

/// Build a single-partition CPU MetaCache database.
pub fn build_metacache_cpu(
    config: MetaCacheConfig,
    collection: &ReferenceCollection,
) -> BuiltDatabase {
    let start = Instant::now();
    let mut builder = CpuBuilder::new(config, collection.taxonomy.clone());
    for target in &collection.targets {
        builder
            .add_target(target.to_record(), target.taxon)
            .expect("valid target");
    }
    let db = builder.finish();
    let wall_time = start.elapsed();
    BuiltDatabase {
        table_bytes: db.table_bytes(),
        host_bytes: db.table_bytes() + db.host_metadata_bytes(),
        metacache: Some(Arc::new(db)),
        kraken2: None,
        wall_time,
        sim_time: SimDuration::ZERO,
    }
}

/// Build a multi-partition GPU MetaCache database on `devices` simulated GPUs.
pub fn build_metacache_gpu(
    config: MetaCacheConfig,
    collection: &ReferenceCollection,
    system: &MultiGpuSystem,
) -> BuiltDatabase {
    system.reset_clocks();
    let start = Instant::now();
    let records: Vec<SequenceRecord> = collection.to_records();
    let expected = estimate_locations(&config, &records) / system.device_count().max(1) + 4096;
    let mut builder = GpuBuilder::new(config, collection.taxonomy.clone(), system, expected)
        .expect("device memory suffices at experiment scale");
    for target in &collection.targets {
        builder
            .add_target(target.to_record(), target.taxon)
            .expect("valid target");
    }
    let sim_time = builder.stats().sim_build_time;
    let db = builder.finish();
    let wall_time = start.elapsed();
    BuiltDatabase {
        table_bytes: db.table_bytes(),
        host_bytes: db.host_metadata_bytes(),
        metacache: Some(Arc::new(db)),
        kraken2: None,
        wall_time,
        sim_time,
    }
}

/// Build a Kraken2-style database.
pub fn build_kraken2(collection: &ReferenceCollection) -> BuiltDatabase {
    let start = Instant::now();
    let mut builder = Kraken2Builder::new(Kraken2Config::default(), collection.taxonomy.clone())
        .expect("valid config");
    for target in &collection.targets {
        builder
            .add_target(&target.to_record(), target.taxon)
            .expect("valid target");
    }
    let db = builder.finish();
    let wall_time = start.elapsed();
    BuiltDatabase {
        table_bytes: db.bytes(),
        host_bytes: db.bytes(),
        metacache: None,
        kraken2: Some(db),
        wall_time,
        sim_time: SimDuration::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_generates_consistent_collections_and_workloads() {
        let scale = ExperimentScale::tiny();
        let refs = ReferenceSetup::generate(&scale);
        assert!(refs.afs_refseq.target_count() > refs.refseq.target_count());
        assert!(refs.afs_refseq.total_bases() > refs.refseq.total_bases());
        let workloads = Workloads::generate(&scale, &refs.refseq, &refs.afs_refseq);
        assert_eq!(workloads.hiseq.len(), scale.reads_per_dataset);
        assert_eq!(workloads.miseq.len(), scale.reads_per_dataset);
        assert_eq!(workloads.kal_d.len(), scale.reads_per_dataset);
        assert!(!workloads.kal_d_truth.is_empty());
        let total: f64 = workloads.kal_d_truth.iter().map(|(_, r)| r).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(workloads.kal_d.reads.iter().all(|r| r.is_paired()));
    }

    #[test]
    fn all_three_builders_produce_usable_databases() {
        let scale = ExperimentScale::tiny();
        let refs = ReferenceSetup::generate(&scale);
        let cpu = build_metacache_cpu(MetaCacheConfig::for_tests(), &refs.refseq);
        assert!(cpu.metacache.as_ref().unwrap().total_locations() > 0);
        assert!(cpu.table_bytes > 0);

        let system = MultiGpuSystem::dgx1(scale.small_gpu_count);
        let gpu = build_metacache_gpu(MetaCacheConfig::for_tests(), &refs.refseq, &system);
        let gpu_db = gpu.metacache.as_ref().unwrap();
        assert_eq!(gpu_db.partition_count(), scale.small_gpu_count);
        assert!(gpu.sim_time > SimDuration::ZERO);

        let kraken = build_kraken2(&refs.refseq);
        assert!(kraken.kraken2.as_ref().unwrap().minimizer_count() > 1000);
    }
}
